"""Unit tests for the OLAP-extensions baseline generator."""

import pytest

from repro.core import run_percentage_query
from repro.errors import PercentageQueryError
from repro.olap import (generate_olap_percentage_query,
                        run_olap_percentage_query)

QUERY = ("SELECT state, city, Vpct(salesamt BY city) FROM sales "
         "GROUP BY state, city")


class TestGeneration:
    def test_single_statement_with_windows(self, sales_db):
        sql = generate_olap_percentage_query(QUERY)
        # Fine total, coarse total, and the coarse total again inside
        # the division-by-zero guard.
        assert sql.count("OVER (PARTITION BY") == 3
        assert "PARTITION BY state, city" in sql
        assert sql.startswith("SELECT DISTINCT")

    def test_global_totals_use_empty_over(self, sales_db):
        sql = generate_olap_percentage_query(
            "SELECT state, Vpct(salesamt) FROM sales GROUP BY state")
        assert "OVER ()" in sql

    def test_division_guarded(self):
        sql = generate_olap_percentage_query(QUERY)
        assert "CASE WHEN" in sql and "<> 0" in sql

    def test_horizontal_rejected(self):
        with pytest.raises(PercentageQueryError):
            generate_olap_percentage_query(
                "SELECT store, Hpct(m BY d) FROM t GROUP BY store")

    def test_plain_query_rejected(self):
        with pytest.raises(PercentageQueryError):
            generate_olap_percentage_query(
                "SELECT a, sum(m) FROM t GROUP BY a")


class TestEquivalence:
    def test_same_answer_set_as_vpct(self, sales_db):
        """The paper's ground rule: 'each query with the same
        parameters produces the same answer set'."""
        vpct = run_percentage_query(sales_db, QUERY)
        olap = run_olap_percentage_query(sales_db, QUERY)
        assert vpct.to_rows() == olap.to_rows()

    def test_global_total_equivalence(self, sales_db):
        query = ("SELECT state, Vpct(salesamt) FROM sales "
                 "GROUP BY state")
        vpct = run_percentage_query(sales_db, query)
        olap = run_olap_percentage_query(sales_db, query)
        assert vpct.to_rows() == olap.to_rows()

    def test_with_plain_aggregate_term(self, sales_db):
        query = ("SELECT state, city, Vpct(salesamt BY city), "
                 "sum(salesamt) FROM sales GROUP BY state, city")
        vpct = run_percentage_query(sales_db, query)
        olap = run_olap_percentage_query(sales_db, query)
        assert vpct.to_rows() == olap.to_rows()


class TestCostStructure:
    def test_olap_charges_window_materialization(self, sales_db):
        before = sales_db.stats.snapshot()
        run_olap_percentage_query(sales_db, QUERY)
        olap_cost = sales_db.stats.diff_since(before)

        before = sales_db.stats.snapshot()
        run_percentage_query(sales_db, QUERY)
        vpct_cost = sales_db.stats.diff_since(before)

        # The windowed form spools the detail table per window; the
        # generated strategy reads F once and works on aggregates.
        assert olap_cost.rows_written > vpct_cost.rows_written
