"""The crash-consistency sweep: every fault, every statement boundary.

For each fuzz case the sweep first runs the query cleanly under a
counting :class:`~repro.engine.faults.FaultInjector` to learn the
reference rows and how many times each injection site is hit.  It then
re-runs the query once per ``(site, hit index, fault kind)``
combination and asserts the resilient runtime's contract after every
single injection:

* the run either returns the reference rows (the retry loop absorbed a
  transient fault, or strategy fallback re-planned around a resource
  fault) or raises a *typed* :class:`~repro.errors.ReproError` --
  nothing else may escape;
* a one-shot transient fault at a statement boundary **must** be
  absorbed (that is exactly what the retry loop is for);
* a permanent simulated crash **must** surface as a clean error;
* in every outcome the catalog fingerprint is unchanged -- same names
  bound to the same immutable objects, so base tables are untouched
  and zero temp tables leak.

Any broken invariant becomes a :class:`SweepFinding`; a sweep with no
findings is the acceptance criterion for the savepoint/retry/fallback
machinery.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Optional

from repro.api.database import Database
from repro.core.execute import RetryPolicy, run_resilient
from repro.engine import faults
from repro.engine.faults import FaultInjector, FaultSpec
from repro.errors import ReproError
from repro.fuzz.generator import FuzzCase
from repro.fuzz.runner import _STORAGE_POOL_PAGES, _load_db
from repro.storage import engine as storage_engine

#: ``(kind, times)`` grid: a one-shot transient (the retry loop must
#: absorb it), a one-shot resource fault (fallback may absorb it), and
#: a permanent crash (must surface as a clean error).
FAULT_KINDS = (("transient", 1), ("resource", 1), ("crash", None))

#: Operator sites swept at hit index 0 when the reference run touched
#: them (statement boundaries are swept exhaustively).
OPERATOR_SITES = ("join-build", "group-by", "pivot", "encoding-cache")

#: Retries should not slow the sweep down.
_NO_BACKOFF = RetryPolicy(backoff_seconds=0.0)


@dataclass
class SweepFinding:
    """One broken invariant observed under one injection."""

    case: FuzzCase
    site: str
    index: int
    kind: str
    problem: str
    detail: str = ""

    def describe(self) -> str:
        text = (f"seed={self.case.seed} case={self.case.index} "
                f"({self.case.family}) [{self.site}#{self.index} "
                f"{self.kind}]: {self.problem}")
        if self.detail:
            text += f" -- {self.detail}"
        return text


@dataclass
class SweepStats:
    """Aggregate outcome of a sweep."""

    cases: int = 0
    injections: int = 0
    #: Runs that returned the reference rows despite the fault.
    recovered: int = 0
    #: Runs that surfaced a typed ReproError with a clean catalog.
    clean_errors: int = 0
    findings: list[SweepFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        return (f"swept {self.cases} case(s), {self.injections} "
                f"injection(s): {self.recovered} recovered, "
                f"{self.clean_errors} clean error(s), "
                f"{len(self.findings)} finding(s)")


def sweep_case(case: FuzzCase, stats: SweepStats,
               operator_sites: bool = True) -> None:
    """Sweep one case, appending findings to ``stats``."""
    db = _load_db(case)
    # The savepoint pins the baseline objects so the identity-based
    # fingerprint cannot suffer id() recycling.
    baseline = db.catalog.savepoint()
    fingerprint = db.catalog.fingerprint()
    base_names = set(db.table_names())
    sql = case.query_sql()

    probe = FaultInjector()
    reference: Optional[list] = None
    try:
        with faults.active(probe):
            reference = run_resilient(
                db, sql, retry=_NO_BACKOFF).result.to_rows()
    except ReproError:
        pass  # degenerate case: errors are an acceptable outcome
    stats.cases += 1

    sites = [("statement", i)
             for i in range(probe.hits.get("statement", 0))]
    if operator_sites:
        sites += [(site, 0) for site in OPERATOR_SITES
                  if probe.hits.get(site)]

    for site, index in sites:
        for kind, times in FAULT_KINDS:
            stats.injections += 1
            injector = FaultInjector([FaultSpec(site, error=kind,
                                                at=index, times=times)])
            rows: Optional[list] = None
            error: Optional[BaseException] = None
            try:
                with faults.active(injector):
                    rows = run_resilient(
                        db, sql, retry=_NO_BACKOFF).result.to_rows()
            except ReproError as exc:
                error = exc
            except Exception as exc:  # noqa: BLE001 - the invariant
                error = exc
                stats.findings.append(SweepFinding(
                    case, site, index, kind,
                    "untyped error escaped the runtime",
                    f"{type(exc).__name__}: {exc}"))

            if error is None:
                if reference is not None and rows != reference:
                    stats.findings.append(SweepFinding(
                        case, site, index, kind,
                        "recovered run returned different rows",
                        f"{rows!r} != {reference!r}"))
                else:
                    stats.recovered += 1
                if kind == "crash":
                    # A permanent crash fault fires on every hit; the
                    # run returning rows means the site was silently
                    # skipped on the rerun.
                    stats.findings.append(SweepFinding(
                        case, site, index, kind,
                        "permanent crash fault did not surface"))
            elif isinstance(error, ReproError):
                stats.clean_errors += 1
                if kind == "transient" and site == "statement" \
                        and reference is not None:
                    stats.findings.append(SweepFinding(
                        case, site, index, kind,
                        "retry loop failed to absorb a one-shot "
                        "transient fault",
                        f"{type(error).__name__}: {error}"))

            leaked = [n for n in db.table_names()
                      if n not in base_names]
            if leaked:
                stats.findings.append(SweepFinding(
                    case, site, index, kind,
                    "temp tables leaked", ", ".join(sorted(leaked))))
            if db.catalog.fingerprint() != fingerprint:
                stats.findings.append(SweepFinding(
                    case, site, index, kind,
                    "catalog changed across the plan boundary"))
                # Contain the damage so later injections of this case
                # still sweep against the intended baseline.
                db.catalog.rollback(baseline)


def sweep_cases(cases, stats: Optional[SweepStats] = None,
                operator_sites: bool = True) -> SweepStats:
    """Sweep an iterable of cases; returns the (given) stats."""
    stats = stats or SweepStats()
    for case in cases:
        sweep_case(case, stats, operator_sites=operator_sites)
    return stats


# ----------------------------------------------------------------------
# Durable-storage sweep (disk backend kill points)
# ----------------------------------------------------------------------

#: The WAL/buffer-pool kill points, in commit-protocol order: a torn
#: page image, a crash just before the commit record is durable, and a
#: crash after durability but before the in-memory publish.
STORAGE_SITES = ("storage-page-write", "storage-wal-fsync",
                 "storage-commit")

#: ``(kind, times)`` grid for storage sites.  Deliberately one-shot
#: only: the resilient runtime's rollback re-commits through the very
#: same sites, so a *permanent* fault there would fault the rollback
#: too and no in-process invariant could hold -- real kills are
#: modeled instead by abandoning the store and reopening it (see
#: :func:`_run_storage_injection`).
STORAGE_FAULT_KINDS = (("transient", 1), ("crash", 1))

#: At most this many hit indexes are swept per storage site (first,
#: middle, last) -- each injection pays a full store build + reopen.
_STORAGE_INDEX_LIMIT = 3


def _sample_indexes(hits: int) -> list[int]:
    if hits <= 0:
        return []
    picks = {0, hits // 2, hits - 1}
    return sorted(picks)[:_STORAGE_INDEX_LIMIT]


def _disk_db(case: FuzzCase, path: str) -> Database:
    return _load_db(case, storage="disk", storage_path=path,
                    pool_pages=_STORAGE_POOL_PAGES)


def sweep_case_storage(case: FuzzCase, stats: SweepStats) -> None:
    """Sweep one case's query across the storage kill points.

    Per injection the contract is checked twice:

    * **in process** -- the run returns the reference rows or raises a
      typed error, temp tables don't leak, and the catalog fingerprint
      is unchanged (the rollback's ``restore`` record heals the
      WAL/memory divergence a mid-commit fault leaves behind);
    * **across a kill** -- the store is then abandoned *without* a
      checkpoint (exactly what a dead process leaves) and reopened:
      recovery must reproduce the pre-query committed tables
      bit-identically, or fail with a typed error, and the store
      directory must hold nothing but its three files.
    """
    sql = case.query_sql()
    # Probe on a throwaway store: count storage-site hits during the
    # query alone (loading happens before the injector activates, so
    # load-time commits are outside the swept range).
    probe = FaultInjector()
    reference: Optional[list] = None
    tmp = tempfile.mkdtemp(prefix="repro-sweep-store-")
    try:
        db = _disk_db(case, tmp)
        try:
            with faults.active(probe):
                reference = run_resilient(
                    db, sql, retry=_NO_BACKOFF).result.to_rows()
        except ReproError:
            pass  # degenerate case: errors are an acceptable outcome
        finally:
            db.close()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    stats.cases += 1

    for site in STORAGE_SITES:
        for index in _sample_indexes(probe.hits.get(site, 0)):
            for kind, times in STORAGE_FAULT_KINDS:
                stats.injections += 1
                _run_storage_injection(case, sql, reference, site,
                                       index, kind, times, stats)


def _run_storage_injection(case: FuzzCase, sql: str,
                           reference: Optional[list], site: str,
                           index: int, kind: str, times: int,
                           stats: SweepStats) -> None:
    tmp = tempfile.mkdtemp(prefix="repro-sweep-store-")
    try:
        db = _disk_db(case, tmp)
        committed = {name: db.table(name).to_rows()
                     for name in db.table_names()}
        fingerprint = db.catalog.fingerprint()
        injector = FaultInjector([FaultSpec(site, error=kind,
                                            at=index, times=times)])
        rows: Optional[list] = None
        error: Optional[BaseException] = None
        try:
            with faults.active(injector):
                rows = run_resilient(
                    db, sql, retry=_NO_BACKOFF).result.to_rows()
        except ReproError as exc:
            error = exc
        except Exception as exc:  # noqa: BLE001 - the invariant
            error = exc
            stats.findings.append(SweepFinding(
                case, site, index, kind,
                "untyped error escaped the runtime",
                f"{type(exc).__name__}: {exc}"))

        if error is None:
            if reference is not None and rows != reference:
                stats.findings.append(SweepFinding(
                    case, site, index, kind,
                    "recovered run returned different rows",
                    f"{rows!r} != {reference!r}"))
            else:
                stats.recovered += 1
        elif isinstance(error, ReproError):
            stats.clean_errors += 1

        leaked = [n for n in db.table_names() if n not in committed]
        if leaked:
            stats.findings.append(SweepFinding(
                case, site, index, kind,
                "temp tables leaked", ", ".join(sorted(leaked))))
        if db.catalog.fingerprint() != fingerprint:
            stats.findings.append(SweepFinding(
                case, site, index, kind,
                "catalog changed across the plan boundary"))

        # Kill the process's view of the store (no checkpoint) and
        # recover: the committed pre-query state must come back
        # bit-identically.
        db.storage_engine.abandon()
        _check_reopen(case, tmp, committed, site, index, kind, stats)
        stray = storage_engine.stray_files(tmp)
        if stray:
            stats.findings.append(SweepFinding(
                case, site, index, kind, "stray store files leaked",
                ", ".join(stray)))
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def _check_reopen(case: FuzzCase, path: str, committed: dict,
                  site: str, index: int, kind: str,
                  stats: SweepStats) -> None:
    try:
        db = Database(storage="disk", storage_path=path,
                      pool_pages=_STORAGE_POOL_PAGES)
    except ReproError:
        # A typed refusal to open is a clean outcome (recovery
        # detected damage it cannot repair) -- but only if it is
        # typed; anything else escaped through the except below.
        stats.clean_errors += 1
        return
    except Exception as exc:  # noqa: BLE001 - the invariant
        stats.findings.append(SweepFinding(
            case, site, index, kind,
            "untyped error escaped recovery",
            f"{type(exc).__name__}: {exc}"))
        return
    try:
        names = set(db.table_names())
        expected = set(committed)
        if names != expected:
            stats.findings.append(SweepFinding(
                case, site, index, kind,
                "recovered catalog lost or invented tables",
                f"recovered {sorted(names)} != committed "
                f"{sorted(expected)}"))
            return
        for name in sorted(expected):
            if db.table(name).to_rows() != committed[name]:
                stats.findings.append(SweepFinding(
                    case, site, index, kind,
                    "recovered table differs from committed state",
                    name))
    finally:
        db.close()
