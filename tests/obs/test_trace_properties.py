"""Property-based invariants of the tracing layer.

On arbitrary generated workloads:

* every span tree a traced database produces is well formed (all
  spans closed, child intervals contained in their parents');
* every statement span passes the charge audit -- the ``charge``
  events beneath it sum exactly to the statement's recorded counter
  deltas, tying the trace to the stats ledger;
* plan traces account for the whole plan: plan-step spans carry every
  executed statement, and the statement spans' scanned/written totals
  sum to the query's ledger diff.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.core import run_percentage_query
from repro.core.execute import run_explain_analyze
from repro.obs.clock import ManualClock
from repro.obs.tracer import (audit_statement_span,
                              validate_span_tree)

ROWS = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3),
              st.integers(1, 50)),
    min_size=1, max_size=25)


def load(rows) -> Database:
    db = Database(tracing=True, clock=ManualClock())
    db.execute("CREATE TABLE f (g INT, d INT, m REAL)")
    values = ", ".join(f"({g}, {d}, {m})" for g, d, m in rows)
    db.execute(f"INSERT INTO f VALUES {values}")
    return db


def assert_all_trees_valid(db: Database) -> None:
    roots = db.tracer.roots()
    assert roots, "a traced workload must produce spans"
    for root in roots:
        validate_span_tree(root)
        for statement in root.find(kind="statement"):
            audit_statement_span(statement)


@given(ROWS)
@settings(max_examples=40, deadline=None)
def test_ad_hoc_statements_trace_well_formed(rows):
    db = load(rows)
    db.execute("SELECT g, sum(m) FROM f GROUP BY g")
    db.execute("SELECT a.g, b.d FROM f a, f b WHERE a.g = b.g")
    db.execute("UPDATE f SET m = m + 1 WHERE d = 0")
    db.execute("DELETE FROM f WHERE g = 3")
    assert_all_trees_valid(db)


@given(ROWS)
@settings(max_examples=25, deadline=None)
def test_percentage_plans_trace_well_formed(rows):
    db = load(rows)
    run_percentage_query(db, "SELECT g, Vpct(m BY d) FROM f "
                             "GROUP BY g, d")
    run_percentage_query(db, "SELECT g, Hpct(m BY d) FROM f "
                             "GROUP BY g")
    assert_all_trees_valid(db)


@given(ROWS)
@settings(max_examples=25, deadline=None)
def test_plan_trace_accounts_for_every_statement(rows):
    db = load(rows)
    before = db.stats.snapshot()
    report = run_explain_analyze(
        db, "SELECT g, Vpct(m BY d) FROM f GROUP BY g, d")
    diff = db.stats.diff_since(before)
    validate_span_tree(report.trace)
    steps = report.trace.find(name="plan-step")
    statements = report.trace.find(kind="statement")
    # one statement span per executed plan step, none elsewhere
    assert len(steps) == report.statements_run
    assert len(statements) == report.statements_run
    # the statement spans' ledgers sum to the plan's ledger diff
    for counter in ("rows_scanned", "rows_written", "rows_joined",
                    "rows_updated"):
        total = sum(int(span.attrs.get(counter, 0))
                    for span in statements)
        assert total == getattr(diff, counter)
    # and each statement's result size was recorded
    for span in statements:
        assert "result_rows" in span.attrs


@given(ROWS)
@settings(max_examples=20, deadline=None)
def test_tracing_does_not_change_answers(rows):
    """Tracing is observability only: identical results and identical
    logical-I/O ledgers with it on or off."""
    traced = load(rows)
    plain = Database()
    plain.execute("CREATE TABLE f (g INT, d INT, m REAL)")
    values = ", ".join(f"({g}, {d}, {m})" for g, d, m in rows)
    plain.execute(f"INSERT INTO f VALUES {values}")

    sql = "SELECT g, d, Vpct(m BY d) FROM f GROUP BY g, d"
    traced_before = traced.stats.snapshot()
    plain_before = plain.stats.snapshot()
    traced_rows = run_percentage_query(traced, sql).to_rows()
    plain_rows = run_percentage_query(plain, sql).to_rows()
    assert traced_rows == plain_rows
    assert traced.stats.diff_since(traced_before) == \
        plain.stats.diff_since(plain_before)
