"""Partitioning: vertical (column) splitting and horizontal (row)
hash partitioning.

**Vertical.**  Horizontal aggregations can exceed the DBMS's maximum
column count when the BY columns have many distinct combinations or
several horizontal terms share one query.  "The only way there is to
solve this limitation is by vertically partitioning the columns so that
the maximum number of columns is not exceeded.  Each partition table
has D1, ..., Dj as its primary key" (Section 3.2; also DMKD Section
3.6).  :func:`split_result_columns` computes the partition layout; the
horizontal generator emits one CREATE + INSERT per partition and a
final assembling SELECT that joins the partitions back on the keys.

**Horizontal.**  The concurrent query service's intra-query
parallelism hash-partitions rows on the grouping key so each worker
aggregates complete groups and the merge is a pure scatter (no partial
re-aggregation, hence bit-identical results -- see
:func:`repro.engine.groupby.factorize_partitioned`).
:func:`hash_partition` assigns rows, :func:`choose_parallel_degree`
applies the admission rule, and :func:`map_partitions` fans work out
over the process-wide operator pool.  The operator pool is distinct
from the service scheduler's query pool: queries submit partition
tasks here, so a pool never waits on tasks queued behind itself.
"""

from __future__ import annotations

import atexit
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

import numpy as np

from repro.errors import PercentageQueryError
from repro.obs import tracer as tracer_mod

ColumnT = TypeVar("ColumnT")
ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


def split_result_columns(n_keys: int, columns: Sequence[ColumnT],
                         max_columns: int) -> list[list[ColumnT]]:
    """Partition the non-key result columns so every stored table fits
    within ``max_columns`` (keys included in each partition).

    Returns at least one partition; raises when even a single non-key
    column cannot fit next to the keys.
    """
    capacity = max_columns - n_keys
    if capacity < 1:
        raise PercentageQueryError(
            f"the {n_keys} grouping columns alone reach the DBMS "
            f"column limit ({max_columns}); no room for results")
    if len(columns) <= capacity:
        return [list(columns)]
    partitions: list[list[ColumnT]] = []
    for start in range(0, len(columns), capacity):
        partitions.append(list(columns[start:start + capacity]))
    return partitions


# ----------------------------------------------------------------------
# Horizontal (row) hash partitioning for parallel operators
# ----------------------------------------------------------------------

#: Worker threads of the shared operator pool carry this name prefix;
#: :func:`map_partitions` uses it to detect (and serialize) nested
#: fan-out instead of deadlocking on its own pool.
_OPERATOR_THREAD_PREFIX = "repro-operator"

#: Upper bound on operator-pool threads regardless of core count
#: (partition tasks are numpy-heavy; more threads than cores only adds
#: contention).
_POOL_MAX_WORKERS = 8

_pool: ThreadPoolExecutor | None = None
_pool_pid: int | None = None
_pool_lock = threading.Lock()


def operator_pool_size() -> int:
    """The worker count the shared operator pool runs (or would run)
    with: core count capped at :data:`_POOL_MAX_WORKERS`, floor 2 so
    partition tasks overlap even on single-core hosts."""
    return max(2, min(_POOL_MAX_WORKERS, os.cpu_count() or 1))


def operator_pool() -> ThreadPoolExecutor:
    """The process-wide pool partition tasks run on (lazily created).

    One pool is shared by every Database/session in the process: the
    parallelism budget is a host property, not a per-connection one.
    Keyed by pid: a forked child (the multiprocess backend's workers
    fork) must not submit to an executor whose threads only exist in
    the parent, so it lazily builds its own.
    """
    global _pool, _pool_pid
    with _pool_lock:
        if _pool is None or _pool_pid != os.getpid():
            _pool = ThreadPoolExecutor(
                max_workers=operator_pool_size(),
                thread_name_prefix=_OPERATOR_THREAD_PREFIX)
            _pool_pid = os.getpid()
        return _pool


def shutdown_operator_pool() -> None:
    """Tear down the shared pool (tests, atexit; a fresh one is created
    on next use)."""
    global _pool, _pool_pid
    with _pool_lock:
        pool, _pool = _pool, None
        _pool_pid = None
    if pool is not None:
        pool.shutdown(wait=True)


def _drop_inherited_pool() -> None:
    # Threads do not survive fork: the child sees the parent's executor
    # object but none of its workers.  Forget the handle (without
    # shutdown -- the queues belong to the parent) and re-create lazily.
    global _pool, _pool_pid
    _pool = None
    _pool_pid = None


os.register_at_fork(after_in_child=_drop_inherited_pool)
atexit.register(shutdown_operator_pool)


def choose_parallel_degree(n_rows: int, requested: int,
                           row_threshold: int) -> int:
    """The admission rule for intra-query parallelism.

    ``requested`` is the configured worker budget; inputs smaller than
    ``row_threshold`` stay serial (fan-out overhead would dominate),
    and the degree never exceeds the row count.
    """
    if requested <= 1 or n_rows <= 0 or n_rows < row_threshold:
        return 1
    return max(1, min(int(requested), n_rows))


def hash_partition(codes: np.ndarray, degree: int) -> list[np.ndarray]:
    """Row positions per partition, partitioning on ``codes % degree``.

    ``codes`` are non-negative int64 group codes (the mixed-radix
    combination of the key columns), so equal keys always land in the
    same partition -- each partition holds *complete* groups.  Within a
    partition, positions stay in ascending row order, which is what
    makes partition-local float accumulation replay the serial addend
    order exactly.
    """
    owners = codes % np.int64(degree)
    return [np.nonzero(owners == p)[0] for p in range(degree)]


def map_partitions(fn: Callable[[ItemT], ResultT],
                   items: Sequence[ItemT]) -> list[ResultT]:
    """Run ``fn`` over ``items`` on the shared operator pool, results
    in input order.

    Falls back to inline execution for trivial fan-out (one item) and
    when already running *on* an operator thread -- a nested fan-out
    queued behind its own parent would deadlock a saturated pool.
    Exceptions propagate from the first failing item.
    """
    if len(items) <= 1 or threading.current_thread().name.startswith(
            _OPERATOR_THREAD_PREFIX):
        return [fn(item) for item in items]
    pool = operator_pool()
    tracer = tracer_mod.active_tracer()
    if tracer is not None and tracer.enabled:
        # Cross-thread span handover: the pool workers' thread-local
        # stacks are empty, so each partition task re-activates this
        # tracer and parents its span explicitly under the operator
        # span that is current *here*, on the submitting thread.
        parent = tracer.current()

        def traced(index: int, item: ItemT) -> ResultT:
            with tracer_mod.activate(tracer), \
                    tracer.span_under(parent, "partition",
                                      kind="operator", partition=index):
                return fn(item)

        futures = [pool.submit(traced, i, item)
                   for i, item in enumerate(items)]
    else:
        futures = [pool.submit(fn, item) for item in items]
    return [future.result() for future in futures]
