"""Concurrency stress: 8 readers x 2 writers against one service.

The shadow model exploits write serialization: every write script
commits atomically and records the catalog version it published, so a
read pinned at snapshot version ``v`` must observe exactly the rows of
every insert script whose post-commit version is <= ``v``.  Scale the
op count with ``REPRO_STRESS_OPS`` (default 500).
"""

from __future__ import annotations

import bisect
import os
import threading
import time

import pytest

from repro.errors import AdmissionRejected

N_READERS = 8
N_WRITERS = 2
BASE_ROWS = 4
ROWS_PER_SCRIPT = 2

TOTAL_OPS = max(int(os.environ.get("REPRO_STRESS_OPS", "500")),
                N_READERS + N_WRITERS)
READER_OPS = max((TOTAL_OPS * 4 // 5) // N_READERS, 1)
WRITER_OPS = max((TOTAL_OPS - READER_OPS * N_READERS) // N_WRITERS, 1)


def _execute_with_retry(session, sql):
    while True:
        try:
            return session.execute(sql)
        except AdmissionRejected:
            time.sleep(0.002)


def test_stress_snapshot_consistency(service, db):
    # version -> rows committed, recorded by writers as they go.
    insert_versions: list[int] = []
    versions_lock = threading.Lock()
    reads: list[tuple[int, int]] = []  # (snapshot_version, count seen)
    errors: list[BaseException] = []
    tracked_readers: list = []
    original_reader = service.snapshots.reader

    def tracking_reader(*args, **kwargs):
        overlay = original_reader(*args, **kwargs)
        tracked_readers.append(overlay)
        return overlay

    service.snapshots.reader = tracking_reader
    try:
        def writer(tid: int) -> None:
            try:
                with service.create_session() as session:
                    for i in range(WRITER_OPS):
                        if i % 5 == 4:
                            # Scratch DDL churns the catalog version
                            # without touching f's count; the script
                            # also cleans up after itself.
                            name = f"scratch_{tid}_{i}"
                            _execute_with_retry(
                                session,
                                f"CREATE TABLE {name} (x INT); "
                                f"INSERT INTO {name} VALUES (1); "
                                f"DROP TABLE {name}")
                            continue
                        key = tid * 100_000 + i
                        report = _execute_with_retry(
                            session,
                            f"INSERT INTO f VALUES ({key}, 's', 1.0); "
                            f"INSERT INTO f VALUES ({key}, 't', 2.0)")
                        with versions_lock:
                            bisect.insort(insert_versions,
                                          report.snapshot_version)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        def reader(tid: int) -> None:
            try:
                with service.create_session() as session:
                    for i in range(READER_OPS):
                        if i % 7 == 6:
                            report = _execute_with_retry(
                                session,
                                "SELECT d2, Vpct(a) FROM f GROUP BY d2")
                            assert report.result.n_rows >= 2
                            continue
                        report = _execute_with_retry(
                            session, "SELECT count(*) FROM f")
                        reads.append((report.snapshot_version,
                                      report.rows()[0][0]))
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in range(N_WRITERS)]
        threads += [threading.Thread(target=reader, args=(t,))
                    for t in range(N_READERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
            assert not thread.is_alive(), "stress thread hung"
    finally:
        service.snapshots.reader = original_reader

    assert errors == []
    service.quiesce()

    # Shadow-model check: each read saw exactly the scripts committed
    # at or before its snapshot version -- no torn or lost writes.
    assert reads, "stress run produced no recorded reads"
    for version, count in reads:
        committed = bisect.bisect_right(insert_versions, version)
        assert count == BASE_ROWS + ROWS_PER_SCRIPT * committed, (
            f"snapshot v{version} saw {count} rows, expected "
            f"{BASE_ROWS + ROWS_PER_SCRIPT * committed}")

    # Final state: every insert script applied exactly once.
    expected_final = BASE_ROWS + ROWS_PER_SCRIPT * len(insert_versions)
    assert db.query("SELECT count(*) FROM f") == [(expected_final,)]

    # Fingerprint integrity: stable across repeated capture, and the
    # catalog holds only user tables -- no leaked temps anywhere.
    assert service.fingerprint() == service.fingerprint()
    assert db.catalog.fingerprint() == db.catalog.fingerprint()
    assert [n for n in db.table_names() if n.startswith("_")] == []
    for overlay in tracked_readers:
        leaked = [n for n in overlay.table_names()
                  if n.startswith("_")]
        assert leaked == [], f"overlay leaked temps: {leaked}"
    assert [n for n in db.table_names()
            if n.startswith("scratch_")] == []


def test_stress_parallel_readers_match_serial(service, db):
    """Parallel-degree readers agree with the serial base answer."""
    from repro.service import SessionDefaults

    sql = ("SELECT d1, d2, sum(a), count(*) FROM f "
           "GROUP BY d1, d2 ORDER BY d1, d2")
    expected = db.query(sql)
    defaults = SessionDefaults(parallel_workers=4,
                               parallel_row_threshold=1)
    results: list = []
    errors: list[BaseException] = []

    def reader() -> None:
        try:
            with service.create_session(defaults) as session:
                for _ in range(10):
                    report = _execute_with_retry(session, sql)
                    results.append(report.rows())
        except BaseException as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive()

    assert errors == []
    assert len(results) == 40
    assert all(rows == expected for rows in results)
