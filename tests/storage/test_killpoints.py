"""The WAL kill-point matrix.

For every storage fault site and every sampled hit index of a DML/DDL
workload, inject a crash, simulate a kill (``abandon()`` releases the
file handles without checkpointing) and reopen the store.  The
recovery contract is *recovery-or-clean-error with zero committed-data
loss*:

* a crash **before** the commit record is durable
  (``storage-page-write`` tears a shadow page, ``storage-wal-fsync``
  dies just before the append): the faulted statement is lost cleanly
  and reopen shows exactly the pre-statement state;
* a crash **after** durability (``storage-commit``): the statement is
  either fully recovered from the WAL or rolled back by a subsequent
  durable restore record -- never a hybrid;
* in every case the prior committed tables survive bit-identically and
  the store directory holds no stray files.
"""

import os
import shutil
import tempfile

import pytest

from repro import Database
from repro.engine import faults
from repro.engine.faults import FaultInjector, FaultSpec
from repro.errors import ReproError
from repro.storage.engine import stray_files
from tests.conftest import PAPER_SALES_ROWS

STORAGE_SITES = ("storage-page-write", "storage-wal-fsync",
                 "storage-commit")

#: Statements whose commit paths the matrix kills.  Each runs against
#: a store holding the paper's sales table.
WORKLOADS = (
    "UPDATE sales SET salesamt = 99.0 WHERE rid = 1",
    "INSERT INTO sales VALUES (11, 'AZ', 'Phoenix', 8.0)",
    "DELETE FROM sales WHERE state = 'CA'",
    "CREATE VIEW tx_sales AS SELECT * FROM sales WHERE state = 'TX'",
    "DROP TABLE sales",
)


def _open(path):
    return Database(storage="disk", storage_path=path,
                    pool_pages=4, page_size=256)


def _setup(path):
    db = _open(path)
    db.load_table(
        "sales",
        [("rid", "int"), ("state", "varchar"), ("city", "varchar"),
         ("salesamt", "real")],
        PAPER_SALES_ROWS, primary_key=["rid"])
    return db


def _snapshot(db):
    return {
        "tables": {name: sorted(db.query(f"SELECT * FROM {name}"))
                   for name in db.table_names()},
        "views": sorted(db.catalog.view_names()),
    }


def _probe(statement, site):
    """Hit count of ``site`` while running ``statement`` fault-free."""
    tmp = tempfile.mkdtemp(prefix="repro-killpoint-probe-")
    try:
        db = _setup(tmp)
        injector = FaultInjector()
        with faults.active(injector):
            db.execute(statement)
        before_close = dict(injector.hits)
        db.close()
        return before_close.get(site, 0)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def _sampled(hits):
    return sorted({0, hits // 2, hits - 1})


@pytest.mark.parametrize("site", STORAGE_SITES)
@pytest.mark.parametrize("statement", WORKLOADS,
                         ids=[s.split()[0].lower() + "-" + s.split()[1]
                              for s in WORKLOADS])
def test_kill_point_matrix(site, statement):
    hits = _probe(statement, site)
    if hits == 0:
        # The statement never reaches this site (e.g. CREATE VIEW
        # writes no pages); nothing to kill.
        assert site == "storage-page-write"
        return
    for index in _sampled(hits):
        tmp = tempfile.mkdtemp(prefix="repro-killpoint-")
        try:
            db = _setup(tmp)
            before = _snapshot(db)
            injector = FaultInjector(
                [FaultSpec(site, error="crash", at=index, times=1)])
            with faults.active(injector):
                with pytest.raises(ReproError):
                    db.execute(statement)
            assert injector.faults_raised >= 1
            # Simulated kill: no checkpoint, no clean shutdown.
            db.storage_engine.abandon()

            with _open(tmp) as recovered:
                state = _snapshot(recovered)
                if site == "storage-commit":
                    after = _after_state(statement)
                    assert state in (before, after), (
                        f"{site}#{index}: recovered state is neither "
                        f"the pre- nor the post-statement catalog")
                else:
                    assert state == before, (
                        f"{site}#{index}: a pre-durability crash must "
                        f"lose the statement cleanly")
            assert stray_files(tmp) == []
        finally:
            shutil.rmtree(tmp, ignore_errors=True)


def _after_state(statement):
    """The post-statement snapshot, computed on a clean store."""
    tmp = tempfile.mkdtemp(prefix="repro-killpoint-after-")
    try:
        db = _setup(tmp)
        db.execute(statement)
        after = _snapshot(db)
        db.close()
        return after
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def test_matrix_covers_every_site():
    """Sanity: each kill site is actually reachable from at least one
    workload (a silent zero-hit matrix would prove nothing)."""
    for site in STORAGE_SITES:
        assert any(_probe(statement, site) > 0
                   for statement in WORKLOADS), (
            f"no workload ever reaches {site}")


def test_kill_during_load_leaves_fresh_store_openable(tmp_path):
    """A crash while the very first table is being persisted must
    leave a store that reopens empty (the torn shadow pages are
    unreferenced garbage)."""
    path = str(tmp_path)
    db = _open(path)
    injector = FaultInjector(
        [FaultSpec("storage-page-write", error="crash", at=1,
                   times=1)])
    with faults.active(injector):
        with pytest.raises(ReproError):
            db.load_table(
                "sales",
                [("rid", "int"), ("state", "varchar"),
                 ("city", "varchar"), ("salesamt", "real")],
                PAPER_SALES_ROWS, primary_key=["rid"])
    db.storage_engine.abandon()
    with _open(path) as recovered:
        assert recovered.table_names() == []
    assert stray_files(path) == []
