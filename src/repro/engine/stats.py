"""Logical cost accounting for executed statements.

The paper explains its timings in terms of logical work: how many scans
of ``F`` a strategy needs, how large the intermediates are, how much an
UPDATE writes versus an INSERT, and how many CASE terms are evaluated
per row.  :class:`StatsCollector` counts exactly those quantities so
benchmarks can report them next to wall-clock time.

Counters (all cumulative until :meth:`reset`):

* ``rows_scanned``   -- rows read by table scans.
* ``rows_written``   -- rows materialized into tables (INSERT/CREATE).
* ``rows_updated``   -- rows rewritten in place by UPDATE.
* ``rows_joined``    -- rows produced by join operators.
* ``case_evaluations`` -- WHEN-branch evaluations performed by CASE
  expressions (the paper's ``N`` comparisons-per-row cost).
* ``statements``     -- SQL statements executed.
* ``index_lookups``  -- probes served by a hash index.
* ``encode_cache_hits`` / ``encode_cache_misses`` /
  ``encode_cache_evictions`` -- dictionary-encoding cache traffic.
  These are deliberately **not** part of :meth:`StatementStats.
  logical_io`: the cache saves wall-clock work, not logical I/O, so
  the paper's cost shapes are bit-identical with the cache on or off.
* ``storage_page_fetches`` / ``storage_pool_hits`` /
  ``storage_page_reads`` -- buffer-pool traffic charged by the disk
  backend's column reads (``hits + reads == fetches`` always).  Also
  excluded from :meth:`StatementStats.logical_io` so the paper's cost
  shapes are identical on the memory and disk backends.

Storage now lives in a :class:`~repro.obs.metrics.MetricsRegistry`:
each counter is the registry metric named by :data:`METRIC_NAMES`
(``rows_scanned`` -> ``engine_rows_scanned_total`` and so on), so one
Prometheus scrape of ``db.metrics`` exposes the same numbers this
class reports.  The public face is unchanged -- plain attribute reads
(``stats.rows_scanned``), :meth:`add`, :meth:`snapshot`,
:meth:`diff_since`, :meth:`record_statement`, :meth:`reset` -- and the
consistency contract survives the move: every multi-counter update or
read happens under the registry's single lock, so a snapshot is still
a consistent cut and concurrent scheduler workers still never drop
each other's charges.

Each :class:`~repro.api.database.Database` owns its own registry by
default, which is also the fix for the stats-reset bug: counters are
keyed by registry instance, not module state, so a reopened database
can no longer observe a previous instance's totals.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields
from typing import Optional

from repro.obs.metrics import MetricsRegistry

#: The integer counters StatsCollector maintains (everything
#: :meth:`StatsCollector.add` accepts).
COUNTER_NAMES = (
    "rows_scanned", "rows_written", "rows_updated", "rows_joined",
    "case_evaluations", "index_lookups", "encode_cache_hits",
    "encode_cache_misses", "encode_cache_evictions",
    "storage_page_fetches", "storage_pool_hits", "storage_page_reads",
    "statements",
)

#: Registry metric backing each counter.
METRIC_NAMES = {name: f"engine_{name}_total" for name in COUNTER_NAMES}

_HELP = {
    "rows_scanned": "rows read by table scans",
    "rows_written": "rows materialized into tables (INSERT/CREATE)",
    "rows_updated": "rows rewritten in place by UPDATE",
    "rows_joined": "rows produced by join operators",
    "case_evaluations": "WHEN-branch evaluations in CASE expressions",
    "index_lookups": "probes served by a hash index",
    "encode_cache_hits": "dictionary-encoding cache hits",
    "encode_cache_misses": "dictionary-encoding cache misses",
    "encode_cache_evictions": "dictionary-encoding cache evictions",
    "storage_page_fetches": "pages requested from the buffer pool",
    "storage_pool_hits": "page fetches served from the buffer pool",
    "storage_page_reads": "page fetches that read from disk",
    "statements": "SQL statements executed",
}

#: StatementStats fields that are counters (everything but sql and
#: elapsed_seconds) -- the diffable set.
_SNAPSHOT_NAMES = tuple(name for name in COUNTER_NAMES
                        if name != "statements")


@dataclass
class StatementStats:
    """Per-statement snapshot of the counters."""

    sql: str = ""
    rows_scanned: int = 0
    rows_written: int = 0
    rows_updated: int = 0
    rows_joined: int = 0
    case_evaluations: int = 0
    index_lookups: int = 0
    encode_cache_hits: int = 0
    encode_cache_misses: int = 0
    encode_cache_evictions: int = 0
    storage_page_fetches: int = 0
    storage_pool_hits: int = 0
    storage_page_reads: int = 0
    elapsed_seconds: float = 0.0

    def logical_io(self) -> int:
        """A single blended number: reads + writes (updates write twice,
        mirroring the read-modify-write the paper observed dominating)."""
        return (self.rows_scanned + self.rows_written
                + 2 * self.rows_updated)

    def counters(self) -> dict:
        """The counter fields as a plain dict (trace attributes)."""
        return {name: getattr(self, name) for name in _SNAPSHOT_NAMES}


class StatsCollector:
    """Accumulates engine counters; owned by the Database.

    Mutate only through :meth:`add` / :meth:`record_statement` /
    :meth:`reset` -- direct ``collector.counter += n`` is not safe
    under the worker pool (lost updates) and, now that counters live
    in the metrics registry, plain attribute *writes* are rejected
    outright.  Plain attribute reads remain supported for
    compatibility; use :meth:`snapshot` when a consistent
    multi-counter cut matters.
    """

    def __init__(self, keep_history: bool = False,
                 registry: Optional[MetricsRegistry] = None):
        self.keep_history = keep_history
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.history: list[StatementStats] = []
        self._history_lock = threading.Lock()
        for name in COUNTER_NAMES:
            self.registry.counter(METRIC_NAMES[name],
                                  help=_HELP[name])

    # ------------------------------------------------------------------
    def __getattr__(self, name: str) -> int:
        # Only reached when normal lookup fails, i.e. for the counter
        # names that used to be dataclass fields.
        if name in COUNTER_NAMES:
            return self.registry.value(METRIC_NAMES[name])
        raise AttributeError(name)

    def __setattr__(self, name: str, value: object) -> None:
        if name in COUNTER_NAMES:
            raise AttributeError(
                f"stats counter {name!r} is registry-backed; "
                f"mutate through add()/reset()")
        super().__setattr__(name, value)

    # ------------------------------------------------------------------
    def add(self, **counts: int) -> None:
        """Atomically add ``counts`` to the named counters.

        All increments land under one registry-lock acquisition, so
        concurrent statements never drop each other's charges and a
        :meth:`snapshot` taken by another thread sees either all of a
        call's increments or none of them.
        """
        for name in counts:
            if name not in COUNTER_NAMES:
                raise AttributeError(f"unknown stats counter {name!r}")
        self.registry.increment(
            {METRIC_NAMES[name]: int(n) for name, n in counts.items()})

    def reset(self) -> None:
        self.registry.zero(METRIC_NAMES.values())
        with self._history_lock:
            self.history.clear()

    def snapshot(self) -> StatementStats:
        """Current totals as a StatementStats value (consistent cut)."""
        values = self.registry.read(
            [METRIC_NAMES[name] for name in _SNAPSHOT_NAMES])
        return StatementStats(**{
            name: values[METRIC_NAMES[name]]
            for name in _SNAPSHOT_NAMES})

    def diff_since(self, before: StatementStats) -> StatementStats:
        """Counters accumulated since ``before`` was snapshotted."""
        now = self.snapshot()
        return StatementStats(**{
            name: getattr(now, name) - getattr(before, name)
            for name in _SNAPSHOT_NAMES})

    # ------------------------------------------------------------------
    def record_statement(self, stats: StatementStats) -> None:
        self.registry.counter(METRIC_NAMES["statements"]).inc()
        if self.keep_history:
            with self._history_lock:
                self.history.append(stats)


# Keep the dataclass-fields import honest: StatementStats is still a
# dataclass and some callers introspect it.
assert {f.name for f in fields(StatementStats)} >= set(_SNAPSHOT_NAMES)
