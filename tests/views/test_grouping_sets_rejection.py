"""Grouping-sets queries and materialized views: the lattice is
computed per query by the shared-scan operator, never incrementally
maintained, so CREATE MATERIALIZED VIEW must reject the shapes with a
typed error -- and an unrelated matview must not hijack a CUBE query
over the same base table."""

import pytest

from repro.errors import MaterializedViewError


@pytest.mark.parametrize("sql", (
    "SELECT d1, count(*) FROM f GROUP BY CUBE(d1, d2)",
    "SELECT d1, sum(a) FROM f GROUP BY ROLLUP(d1)",
    "SELECT d1, sum(a) FROM f GROUP BY GROUPING SETS ((d1), ())",
))
def test_grouping_sets_views_rejected(db, sql):
    with pytest.raises(MaterializedViewError,
                       match="cannot be incrementally maintained"):
        db.execute(f"CREATE MATERIALIZED VIEW v AS {sql}")
    assert not db.catalog.has_matview("v")


@pytest.mark.parametrize("sql", (
    "SELECT d1, grouping(d1) FROM f GROUP BY d1",
    "SELECT d1, pct(a) FROM f GROUP BY d1",
))
def test_grouping_funcs_in_views_rejected(db, sql):
    with pytest.raises(MaterializedViewError,
                       match="grouping\\(\\)/pct\\(\\)"):
        db.execute(f"CREATE MATERIALIZED VIEW v AS {sql}")
    assert not db.catalog.has_matview("v")


def test_cube_query_bypasses_unrelated_matview(db):
    """A plain-group-by matview over the same base table must not
    answer a CUBE query (the matching is exact, not subsumption)."""
    db.execute("CREATE MATERIALIZED VIEW v AS "
               "SELECT d1, sum(a), count(*) FROM f GROUP BY d1")
    rows = db.query("SELECT d1, sum(a), count(*) FROM f "
                    "GROUP BY ROLLUP(d1)")
    plain = db.query("SELECT d1, sum(a), count(*) FROM f GROUP BY d1")
    assert rows[:len(plain)] == plain
    assert len(rows) == len(plain) + 1          # + grand total
    grand = rows[-1]
    assert grand[0] is None and grand[2] == 5
    lines = [r[0] for r in db.query(
        "EXPLAIN SELECT d1, sum(a), count(*) FROM f "
        "GROUP BY ROLLUP(d1)")]
    assert not any("view: v" in line for line in lines)
