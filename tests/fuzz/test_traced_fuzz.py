"""The ``--trace`` fuzz mode: engine variants run traced, every trace
is validated, and a broken trace is not silently ignored."""

import pytest

from repro.api.database import Database
from repro.fuzz.generator import CaseGenerator
from repro.fuzz.runner import (TraceValidationError, _check_trace,
                               run_case)
from repro.obs import tracer as tracer_mod


def _cases(count, seed=0):
    return list(CaseGenerator(seed=seed).cases(count))


class TestTracedRun:
    def test_small_traced_budget_is_consistent(self):
        for case in _cases(8):
            result = run_case(case, trace=True)
            assert not result.divergent, result.divergence_report()

    def test_traced_and_plain_agree(self):
        """Tracing is observability only: the traced run reaches the
        same verdict and the same per-variant outcomes."""
        for case in _cases(4, seed=3):
            plain = run_case(case)
            traced = run_case(case, trace=True)
            assert plain.divergent == traced.divergent
            assert [v.outcome for v in plain.variants] == \
                [v.outcome for v in traced.variants]


class TestCheckTrace:
    def _traced_db(self) -> Database:
        db = Database(tracing=True)
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        db.execute("SELECT a FROM t")
        return db

    def test_clean_trace_passes(self):
        _check_trace(self._traced_db())

    def test_untraced_db_is_a_noop(self):
        db = Database()
        db.execute("SELECT 1")
        _check_trace(db)

    def test_missing_spans_flagged(self):
        db = self._traced_db()
        db.tracer.reset()
        with pytest.raises(TraceValidationError, match="no spans"):
            _check_trace(db)

    def test_statement_count_drift_flagged(self):
        db = self._traced_db()
        # run one statement behind the tracer's back: ledger moves,
        # no statement span appears
        with tracer_mod.activate(None):
            db.tracer.disable()
            try:
                db.execute("SELECT count(*) FROM t")
            finally:
                db.tracer.enable()
        with pytest.raises(TraceValidationError, match="drift"):
            _check_trace(db)

    def test_unclosed_span_flagged(self):
        db = self._traced_db()
        root = db.tracer.roots()[0]
        root.end = None
        with pytest.raises(TraceValidationError):
            _check_trace(db)

    def test_charge_audit_failure_flagged(self):
        db = self._traced_db()
        statement = db.tracer.roots()[-1]
        assert statement.kind == "statement"
        statement.attrs["rows_scanned"] = \
            int(statement.attrs.get("rows_scanned", 0)) + 1
        with pytest.raises(TraceValidationError):
            _check_trace(db)
