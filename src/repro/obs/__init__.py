"""Observability: structured tracing, a metrics registry, and the
clocks that make both deterministically testable.

Three pieces, zero dependencies beyond the standard library:

* :mod:`repro.obs.clock` -- injectable time sources.  Production code
  uses :class:`~repro.obs.clock.MonotonicClock`; tests inject a
  :class:`~repro.obs.clock.ManualClock` whose every reading advances
  by a fixed step, so span durations (and therefore rendered trees and
  EXPLAIN ANALYZE output) are bit-identical run over run.
* :mod:`repro.obs.tracer` -- nested spans (statement -> plan-step ->
  operator) with thread-local stacks, explicit cross-thread parenting
  for partition workers, JSON-lines export, a rendered tree, and the
  well-formedness / row-accounting validators the fuzz harness and the
  property tests share.
* :mod:`repro.obs.metrics` -- counters, gauges, and fixed-bucket
  histograms under one registry lock, with a Prometheus text exporter
  (and a parser for round-trip tests).  ``engine/stats.py`` keeps its
  public face but stores its counters here.
"""

from repro.obs.clock import Clock, ManualClock, MonotonicClock
from repro.obs.metrics import (DEFAULT_BUCKETS, MetricsRegistry,
                               global_registry, parse_prometheus)
from repro.obs.tracer import (MalformedSpanError, Span, Tracer,
                              activate, active_tracer,
                              audit_statement_span, render_tree,
                              validate_span_tree)

__all__ = [
    "Clock", "ManualClock", "MonotonicClock",
    "DEFAULT_BUCKETS", "MetricsRegistry", "global_registry",
    "parse_prometheus",
    "MalformedSpanError", "Span", "Tracer", "activate",
    "active_tracer", "audit_statement_span", "render_tree",
    "validate_span_tree",
]
