"""Property-based tests for the shared-scan grouping-sets operator.

The central claim (docs/cube.md): one ``GROUP BY GROUPING SETS``
evaluation is **bit-identical** -- values, SQL types, and row order --
to running one plain ``GROUP BY`` per set and concatenating the
results in request order.  Hypothesis drives random schemas, NULL
densities, and set lattices through that equivalence, plus the
GROUPING() bitmask invariants, the fold-vs-recompute split, and the
degenerate corners (empty tables, all-NULL key columns).
"""

import math
import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database

DIMS = ("d1", "d2", "d3")

#: dim values: small pools plus NULL so groups collide and NULL groups
#: appear often.
D1 = st.one_of(st.none(), st.integers(min_value=0, max_value=2))
D2 = st.one_of(st.none(), st.sampled_from(("x", "y")))
D3 = st.one_of(st.none(), st.integers(min_value=0, max_value=1))
M1 = st.one_of(st.none(), st.integers(min_value=-50, max_value=50))
M2 = st.one_of(st.none(),
               st.floats(min_value=-8, max_value=8, width=32,
                         allow_nan=False))

ROWS = st.lists(st.tuples(D1, D2, D3, M1, M2), min_size=0, max_size=30)

#: random lattices: 1-5 distinct subsets of the dims (the parser
#: rejects duplicate sets, so draw them unique).
GROUPING_SETS = st.lists(
    st.sets(st.sampled_from(DIMS)).map(
        lambda s: tuple(d for d in DIMS if d in s)),
    min_size=1, max_size=5, unique=True)

AGGS = ("count(*)", "count(m1)", "sum(m1)", "min(m1)", "max(m1)",
        "sum(m2)", "avg(m2)")


def _sql_value(value):
    if value is None:
        return "NULL"
    if isinstance(value, str):
        return f"'{value}'"
    return repr(value)


def load(rows):
    db = Database()
    db.execute("CREATE TABLE t (d1 INT, d2 VARCHAR, d3 INT, "
               "m1 INT, m2 REAL)")
    if rows:
        values = ", ".join(
            "(" + ", ".join(_sql_value(v) for v in row) + ")"
            for row in rows)
        db.execute(f"INSERT INTO t VALUES {values}")
    return db


def bits(value):
    """Bit-level identity key: 8 != 8.0, -0.0 != 0.0, NaN == NaN."""
    if isinstance(value, float):
        return ("f", struct.pack("<d", value))
    return (type(value).__name__, value)


def bit_rows(rows):
    return [tuple(bits(v) for v in row) for row in rows]


def union_dims(sets):
    """First-appearance dim order across the raw sets -- the engine's
    union order and therefore its output column order."""
    seen = []
    for group in sets:
        for dim in group:
            if dim not in seen:
                seen.append(dim)
    return seen


def sets_sql(sets):
    return "GROUPING SETS (" + ", ".join(
        "(" + ", ".join(group) + ")" for group in sets) + ")"


def grouping_mask(args, present):
    mask = 0
    for j, arg in enumerate(args):
        if arg not in present:
            mask |= 1 << (len(args) - 1 - j)
    return mask


def n_query_reference(db, dims, sets, aggs, grouping_args=()):
    """The N-separate-queries answer, shaped like the union output.

    Per set, GROUP BY lists the set's dims in union order (matching
    the shared-scan operator's canonical per-set dim order), absent
    dims become None placeholders, and grouping() becomes its
    constant bitmask.  Pieces concatenate in request order.
    """
    rows = []
    for group in sets:
        present = [d for d in dims if d in group]
        select = present + list(aggs)
        sql = f"SELECT {', '.join(select)} FROM t"
        if present:
            sql += f" GROUP BY {', '.join(present)}"
        for piece in db.query(sql):
            keys = dict(zip(present, piece))
            row = [keys.get(d) for d in dims]
            row += list(piece[len(present):])
            if grouping_args:
                row.append(grouping_mask(grouping_args, present))
            rows.append(tuple(row))
    return rows


@given(ROWS, GROUPING_SETS)
@settings(max_examples=60, deadline=None)
def test_shared_scan_bit_identical_to_n_queries(rows, sets):
    db = load(rows)
    dims = union_dims(sets)
    gargs = tuple(dims) if dims else ()
    items = dims + list(AGGS)
    if gargs:
        items.append(f"grouping({', '.join(gargs)})")
    actual = db.query(
        f"SELECT {', '.join(items)} FROM t GROUP BY {sets_sql(sets)}")
    expected = n_query_reference(db, dims, sets, AGGS, gargs)
    assert bit_rows(actual) == bit_rows(expected)


@given(ROWS)
@settings(max_examples=60, deadline=None)
def test_cube_bit_identical_to_n_queries(rows):
    db = load(rows)
    actual = db.query(
        "SELECT d1, d2, count(*), sum(m1), avg(m2), grouping(d1, d2) "
        "FROM t GROUP BY CUBE(d1, d2)")
    # CUBE expansion order: leftmost varies slowest, r = k..0.
    sets = (("d1", "d2"), ("d1",), ("d2",), ())
    expected = n_query_reference(db, ["d1", "d2"], sets, AGGS[:1] +
                                 ("sum(m1)", "avg(m2)"), ("d1", "d2"))
    assert bit_rows(actual) == bit_rows(expected)


@given(ROWS)
@settings(max_examples=60, deadline=None)
def test_rollup_fold_chain_matches_direct(rows):
    """ROLLUP over every dim with exclusively fold-eligible aggregates
    (count/count(*)/INTEGER sum/min/max): every coarse level folds
    from the finer partials, and must still be bit-identical to
    recomputing each level from the base rows."""
    db = load(rows)
    aggs = ("count(*)", "count(m1)", "sum(m1)", "min(m1)", "max(m1)")
    actual = db.query(
        f"SELECT d1, d2, d3, {', '.join(aggs)} FROM t "
        f"GROUP BY ROLLUP(d1, d2, d3)")
    sets = (("d1", "d2", "d3"), ("d1", "d2"), ("d1",), ())
    expected = n_query_reference(db, ["d1", "d2", "d3"], sets, aggs)
    assert bit_rows(actual) == bit_rows(expected)


@given(ROWS)
@settings(max_examples=40, deadline=None)
def test_grouping_bits_track_placeholder_nulls(rows):
    """With no NULLs in the key data, a dim column is NULL exactly
    when its grouping() bit says the set omitted it."""
    solid = [(d1 or 0, d2 or "x", d3, m1, m2)
             for d1, d2, d3, m1, m2 in rows]
    db = load(solid)
    result = db.query(
        "SELECT d1, d2, count(*), grouping(d1, d2) FROM t "
        "GROUP BY CUBE(d1, d2)")
    for d1, d2, _, mask in result:
        assert 0 <= mask <= 3
        assert bool(mask & 2) == (d1 is None)
        assert bool(mask & 1) == (d2 is None)
    if solid:
        # one grand-total row, and each lattice level is non-empty
        assert [r for r in result if r[3] == 3] == [
            (None, None, len(solid), 3)]
        assert {mask for _, _, _, mask in result} == {0, 1, 2, 3}


@given(ROWS)
@settings(max_examples=40, deadline=None)
def test_all_null_keys_collapse_to_one_group_per_set(rows):
    """Every key NULL: each set has exactly one (all-NULL) group, and
    only grouping() separates the lattice levels."""
    nulled = [(None, None, None, m1, m2)
              for _, _, _, m1, m2 in rows]
    db = load(nulled)
    actual = db.query(
        "SELECT d1, d2, count(*), sum(m1), grouping(d1, d2) FROM t "
        "GROUP BY CUBE(d1, d2)")
    sets = (("d1", "d2"), ("d1",), ("d2",), ())
    expected = n_query_reference(db, ["d1", "d2"], sets,
                                 ("count(*)", "sum(m1)"),
                                 ("d1", "d2"))
    assert bit_rows(actual) == bit_rows(expected)
    if nulled:
        assert len(actual) == 4
        assert all(d1 is None and d2 is None
                   for d1, d2, _, _, _ in actual)


def test_empty_table_keeps_only_the_global_set():
    """Empty input: non-empty sets produce no rows; the empty set
    still produces its single global row with count 0 / NULL sum."""
    db = load([])
    rows = db.query(
        "SELECT d1, count(*), sum(m1), grouping(d1) FROM t "
        "GROUP BY GROUPING SETS ((d1), ())")
    assert rows == [(None, 0, None, 1)]


@given(st.lists(st.tuples(D1, D2, st.integers(min_value=1,
                                              max_value=20)),
                min_size=1, max_size=25))
@settings(max_examples=60, deadline=None)
def test_pct_hierarchy_sums_to_one_per_parent(rows):
    """pct(m) divides each group's sum by its parent lattice level's:
    the grand total's pct is 1.0 and each parent's children sum to 1
    (measures are strictly positive, so no NULL/zero denominators)."""
    db = load([(d1, d2, None, m, None) for d1, d2, m in rows])
    result = db.query(
        "SELECT d1, d2, sum(m1), pct(m1), grouping(d1, d2) FROM t "
        "GROUP BY ROLLUP(d1, d2)")
    by_mask = {}
    for row in result:
        by_mask.setdefault(row[4], []).append(row)
    # grand total vs itself
    [(_, _, total, pct, _)] = by_mask[3]
    assert pct == 1.0
    assert total == sum(m for _, _, m in rows)
    # each (d1) level row against the grand total
    assert math.isclose(sum(r[3] for r in by_mask[1]), 1.0)
    for d1, _, subtotal, pct, _ in by_mask[1]:
        assert math.isclose(pct, subtotal / total)
    # (d1, d2) children sum to 1 within each d1 parent
    children = {}
    for d1, d2, subtotal, pct, _ in by_mask[0]:
        children.setdefault(d1, 0.0)
        children[d1] += pct
    for d1, share in children.items():
        assert math.isclose(share, 1.0)
    assert set(children) == {r[0] for r in by_mask[1]}
