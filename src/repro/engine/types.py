"""SQL types and NULL-aware value semantics.

The engine supports four scalar SQL types:

* ``INTEGER`` -- 64-bit signed integers, stored as ``numpy.int64``.
* ``REAL``    -- double-precision floats, stored as ``numpy.float64``.
* ``VARCHAR`` -- strings, stored as ``numpy`` object arrays.
* ``BOOLEAN`` -- results of predicates; storable for completeness.

NULL is represented *outside* the value array by a boolean validity
mask (see :mod:`repro.engine.column`), so the value dtype never needs a
sentinel.  This module centralizes type names, coercion rules and the
arithmetic result-type lattice used by expression evaluation.
"""

from __future__ import annotations

import enum
from typing import Any

import numpy as np

from repro.errors import TypeMismatchError


class SQLType(enum.Enum):
    """A scalar SQL type supported by the engine."""

    INTEGER = "INTEGER"
    REAL = "REAL"
    VARCHAR = "VARCHAR"
    BOOLEAN = "BOOLEAN"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def numpy_dtype(self) -> np.dtype:
        """The numpy dtype used to store values of this type."""
        return _NUMPY_DTYPES[self]

    @property
    def is_numeric(self) -> bool:
        return self in (SQLType.INTEGER, SQLType.REAL)


_NUMPY_DTYPES = {
    SQLType.INTEGER: np.dtype(np.int64),
    SQLType.REAL: np.dtype(np.float64),
    SQLType.VARCHAR: np.dtype(object),
    SQLType.BOOLEAN: np.dtype(np.bool_),
}

#: Default value stored in the value array at NULL positions.  Never
#: observable through the API; it only keeps arrays dense and typed.
NULL_FILLERS = {
    SQLType.INTEGER: 0,
    SQLType.REAL: 0.0,
    SQLType.VARCHAR: "",
    SQLType.BOOLEAN: False,
}

_TYPE_NAMES = {
    "INT": SQLType.INTEGER,
    "INTEGER": SQLType.INTEGER,
    "BIGINT": SQLType.INTEGER,
    "SMALLINT": SQLType.INTEGER,
    "REAL": SQLType.REAL,
    "FLOAT": SQLType.REAL,
    "DOUBLE": SQLType.REAL,
    "DECIMAL": SQLType.REAL,
    "NUMERIC": SQLType.REAL,
    "VARCHAR": SQLType.VARCHAR,
    "CHAR": SQLType.VARCHAR,
    "TEXT": SQLType.VARCHAR,
    "STRING": SQLType.VARCHAR,
    "BOOLEAN": SQLType.BOOLEAN,
    "BOOL": SQLType.BOOLEAN,
}


def type_from_name(name: str) -> SQLType:
    """Resolve a SQL type name (``int``, ``varchar`` ...) to a :class:`SQLType`.

    Raises :class:`TypeMismatchError` for unknown names.
    """
    try:
        return _TYPE_NAMES[name.upper()]
    except KeyError:
        raise TypeMismatchError(f"unknown SQL type name: {name!r}") from None


def infer_type(value: Any) -> SQLType:
    """Infer the SQL type of a single Python value.

    ``bool`` is checked before ``int`` because it is a subclass of
    ``int`` in Python.  ``None`` has no type of its own; callers must
    handle it before asking.
    """
    if value is None:
        raise TypeMismatchError("cannot infer a SQL type from NULL")
    if isinstance(value, (bool, np.bool_)):
        return SQLType.BOOLEAN
    if isinstance(value, (int, np.integer)):
        return SQLType.INTEGER
    if isinstance(value, (float, np.floating)):
        return SQLType.REAL
    if isinstance(value, str):
        return SQLType.VARCHAR
    raise TypeMismatchError(f"unsupported Python value for SQL: {value!r}")


def common_type(left: SQLType, right: SQLType) -> SQLType:
    """The result type of combining two types in an expression.

    Numeric types promote ``INTEGER -> REAL``.  Identical types are
    returned unchanged.  Anything else is a type mismatch.
    """
    if left == right:
        return left
    if left.is_numeric and right.is_numeric:
        return SQLType.REAL
    raise TypeMismatchError(f"incompatible types: {left} and {right}")


def arithmetic_result_type(op: str, left: SQLType, right: SQLType) -> SQLType:
    """Result type of ``left op right`` for ``+ - * /``.

    Division always yields REAL (SQL engines differ here; REAL keeps
    percentage arithmetic exact enough and matches the paper's use of
    real-valued percentages).
    """
    if not (left.is_numeric and right.is_numeric):
        raise TypeMismatchError(
            f"arithmetic '{op}' requires numeric operands, got {left} and {right}")
    if op == "/":
        return SQLType.REAL
    return common_type(left, right)


def coerce_scalar(value: Any, target: SQLType) -> Any:
    """Coerce one non-NULL Python value to ``target``, or raise."""
    if value is None:
        return None
    if target == SQLType.INTEGER:
        if isinstance(value, (bool, np.bool_)):
            return int(value)
        if isinstance(value, (int, np.integer)):
            return int(value)
        if isinstance(value, (float, np.floating)) and float(value).is_integer():
            return int(value)
        raise TypeMismatchError(f"cannot coerce {value!r} to INTEGER")
    if target == SQLType.REAL:
        if isinstance(value, (bool, np.bool_, int, np.integer, float, np.floating)):
            return float(value)
        raise TypeMismatchError(f"cannot coerce {value!r} to REAL")
    if target == SQLType.VARCHAR:
        if isinstance(value, str):
            return value
        raise TypeMismatchError(f"cannot coerce {value!r} to VARCHAR")
    if target == SQLType.BOOLEAN:
        if isinstance(value, (bool, np.bool_)):
            return bool(value)
        raise TypeMismatchError(f"cannot coerce {value!r} to BOOLEAN")
    raise TypeMismatchError(f"unknown target type: {target}")
