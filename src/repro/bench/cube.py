"""Grouping-sets benchmark: one shared-scan CUBE/ROLLUP/GROUPING SETS
query versus the N separate GROUP BY queries it replaces.

Written to ``BENCH_cube.json`` by ``python -m repro.bench --suite
cube``.  Each workload runs twice over the same ``sales`` fact table:

* **shared-scan** -- the grouping-sets query itself: one factorize
  over the union dimensions, per-set groupings derived from the union
  codes, exact aggregates folded along lattice edges;
* **n-query** -- the rewrite a user without grouping sets would run:
  one plain GROUP BY statement per grouping set, absent dims projected
  as NULL literals and ``grouping()`` as its constant bitmask, results
  concatenated in request order.

The two answers must be bit-identical (same values, same row order);
the suite records the comparison next to the timings so the speedup
claim is never measured against a wrong answer.  Acceptance: at four
or more grouping sets the shared scan must be at least 2x faster than
the n-query rewrite.
"""

from __future__ import annotations

import time

from repro.api.database import Database
from repro.engine.groupingsets import expand_group_by
from repro.sql import ast
from repro.sql.formatter import format_expr
from repro.sql.parser import parse_statement

#: The measured aggregates: ``count``/``min``/``max`` fold along
#: lattice edges, the REAL ``sum`` recomputes per set -- both paths of
#: the shared-scan operator are on the clock.
AGGS = "sum(salesamt), min(salesamt), max(salesamt), count(*)"

#: One workload per grouping-sets construct, smallest lattice last so
#: the report shows how the speedup grows with the set count.
WORKLOADS: tuple[tuple[str, str], ...] = (
    ("cube 3 dims (8 sets)", "CUBE(dweek, monthno, dept)"),
    ("rollup 3 dims (4 sets)", "ROLLUP(dweek, monthno, dept)"),
    ("grouping sets x4",
     "GROUPING SETS ((dweek, dept), (dweek), (monthno), ())"),
    ("rollup 2 dims (3 sets)", "ROLLUP(dweek, monthno)"),
)


def _shared_sql(clause: str, dims: tuple[str, ...]) -> str:
    cols = ", ".join(dims)
    mask = f"grouping({cols})"
    return (f"SELECT {cols}, {AGGS}, {mask} FROM sales "
            f"GROUP BY {clause}")


def _expanded_sets(clause: str,
                   dims: tuple[str, ...]) -> list[tuple[str, ...]]:
    """The clause's grouping sets in the engine's request order, each
    a tuple of dim names (derived from the real planner expansion, not
    re-implemented here)."""
    statement = parse_statement(
        f"SELECT count(*) FROM sales GROUP BY {clause}")
    assert isinstance(statement, ast.Select)
    raw = expand_group_by(statement.group_by, lambda e: e)
    return [tuple(format_expr(e) for e in one_set) for one_set in raw]


def _per_set_sql(dims: tuple[str, ...],
                 one_set: tuple[str, ...]) -> str:
    """The plain GROUP BY a user would write for one grouping set."""
    present = set(one_set)
    cols = ", ".join(d if d in present else "NULL" for d in dims)
    mask = 0
    for j, dim in enumerate(dims):
        if dim not in present:
            mask |= 1 << (len(dims) - 1 - j)
    sql = f"SELECT {cols}, {AGGS}, {mask} FROM sales"
    if one_set:
        sql += f" GROUP BY {', '.join(one_set)}"
    return sql


def _dims_of(clause: str) -> tuple[str, ...]:
    """Union dims in first-appearance order, from the expansion."""
    dims: list[str] = []
    for one_set in _expanded_sets(clause, ()):
        for dim in one_set:
            if dim not in dims:
                dims.append(dim)
    return tuple(dims)


def _timed(db: Database, run, repeats: int) -> tuple[list[float], int]:
    runs = []
    logical_io = 0
    for _ in range(repeats):
        before = db.stats.snapshot()
        started = time.perf_counter()
        run()
        runs.append(time.perf_counter() - started)
        logical_io = db.stats.diff_since(before).logical_io()
    return runs, logical_io


def run_cube_benchmark(sales_n: int = 300_000,
                       repeats: int = 3) -> dict:
    """The full grouping-sets suite; returns the JSON-ready report."""
    from repro.datagen import load_sales

    db = Database()
    load_sales(db, sales_n)

    entries = []
    for label, clause in WORKLOADS:
        dims = _dims_of(clause)
        sets = _expanded_sets(clause, dims)
        shared_sql = _shared_sql(clause, dims)
        set_sqls = [_per_set_sql(dims, s) for s in sets]

        shared_rows = db.query(shared_sql)
        n_query_rows: list[tuple] = []
        for sql in set_sqls:
            n_query_rows.extend(db.query(sql))

        shared_runs, shared_io = _timed(
            db, lambda: db.query(shared_sql), repeats)

        def n_query_pass():
            for sql in set_sqls:
                db.query(sql)

        n_query_runs, n_query_io = _timed(db, n_query_pass, repeats)

        shared_best = min(shared_runs)
        n_query_best = min(n_query_runs)
        entries.append({
            "label": label,
            "clause": clause,
            "sets": len(sets),
            "result_rows": len(shared_rows),
            "shared_scan_seconds": round(shared_best, 6),
            "shared_scan_runs": [round(r, 6) for r in shared_runs],
            "n_query_seconds": round(n_query_best, 6),
            "n_query_runs": [round(r, 6) for r in n_query_runs],
            "speedup_shared_over_n_query": round(
                n_query_best / shared_best, 4),
            "logical_io_shared": shared_io,
            "logical_io_n_query": n_query_io,
            "bit_identical": shared_rows == n_query_rows,
        })

    at_4plus = [e for e in entries if e["sets"] >= 4]
    min_speedup = min(e["speedup_shared_over_n_query"]
                      for e in at_4plus)
    return {
        "workload": f"sales n={sales_n}; aggregates {AGGS} + "
                    f"grouping() mask",
        "repeats": repeats,
        "note": "acceptance: shared-scan at least 2x faster than the "
                "per-set GROUP BY rewrite on every workload with >= 4 "
                "grouping sets, with bit-identical answers (values, "
                "types, row order)",
        "queries": entries,
        "summary": {
            "min_speedup_at_4plus_sets": min_speedup,
            "speedup_at_least_2x_at_4plus_sets": min_speedup >= 2.0,
            "best_speedup": max(e["speedup_shared_over_n_query"]
                                for e in entries),
            "all_bit_identical": all(e["bit_identical"]
                                     for e in entries),
        },
    }
