"""Service-test hygiene: the temp-table leak guard from the
integration suite, plus a ready-made service over a small fact table.

``install_database_tracker`` patches ``Database.__init__``, which the
snapshot overlays deliberately skip -- so the guard here sweeps the
*base* databases; tests that care about overlay temps track readers
explicitly (see the stress suite)."""

from __future__ import annotations

import pytest

from repro.api.database import Database
from repro.service import QueryService
from tests.conftest import assert_no_temp_leaks, install_database_tracker


@pytest.fixture(autouse=True)
def no_temp_leaks(request, monkeypatch):
    if request.node.get_closest_marker("allow_temp_leaks"):
        yield
        return
    created = install_database_tracker(monkeypatch)
    yield
    assert_no_temp_leaks(created)


@pytest.fixture
def db() -> Database:
    database = Database()
    database.execute_script("""
        CREATE TABLE f (d1 INT, d2 VARCHAR, a REAL);
        INSERT INTO f VALUES (1, 'x', 10.0), (1, 'y', 30.0),
                             (2, 'x', 60.0), (2, 'y', 0.25)
    """)
    return database


@pytest.fixture
def service(db):
    with QueryService(db, workers=4) as svc:
        yield svc
