"""Concurrency benchmark: the query service under multi-client load.

Three experiments over the paper's ``sales`` fact table, written to
``BENCH_concurrency.json`` by ``python -m repro.bench --suite
concurrency``:

* **read throughput** -- a fixed batch of read-only queries (plain
  GROUP BY aggregations plus Vpct/Hpct percentage queries) pushed
  through the service at 1/2/4/8 pool workers; reports queries/sec and
  the speedup over the single-worker run.
* **intra-query parallelism** -- one large aggregation at
  ``parallel_workers`` 1/2/4/8 (partition-parallel group-by), serial
  result asserted bit-identical.
* **mixed latency** -- readers and writers interleaved through one
  4-worker service; per-class queue-wait and execution latency.

Honesty note: speedups are bounded by ``os.cpu_count()`` and by the
GIL (the engine's numpy kernels release it only inside vectorized
calls).  The report records ``cpu_count`` so a 1-core container's
~1.0x read-scaling is read as the environment's ceiling, not as a
regression; the correctness claims (bit-identical parallel results,
zero failed queries) hold at any core count.
"""

from __future__ import annotations

import os
import statistics
import time

from repro.api.database import Database
from repro.service import QueryService


def _read_workload(n_queries: int) -> list[str]:
    """A deterministic round-robin mix of read queries."""
    mix = [
        "SELECT dept, sum(salesamt) FROM sales GROUP BY dept",
        "SELECT dweek, monthno, avg(salesamt) FROM sales "
        "GROUP BY dweek, monthno",
        "SELECT dweek, Vpct(salesamt) FROM sales GROUP BY dweek",
        "SELECT monthno, Hpct(salesamt BY dweek) FROM sales "
        "GROUP BY monthno",
        "SELECT store, count(*), max(salesamt) FROM sales "
        "GROUP BY store",
    ]
    return [mix[i % len(mix)] for i in range(n_queries)]


def _percentile(values: list[float], fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1,
                max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _run_read_sweep(db: Database, worker_counts: tuple[int, ...],
                    n_queries: int) -> list[dict]:
    queries = _read_workload(n_queries)
    entries = []
    for workers in worker_counts:
        with QueryService(db, workers=workers,
                          max_queue_depth=n_queries,
                          session_inflight_cap=n_queries) as service:
            with service.create_session() as session:
                started = time.perf_counter()
                futures = [session.submit(sql) for sql in queries]
                reports = [f.result() for f in futures]
                elapsed = time.perf_counter() - started
        waits = [r.queue_wait_seconds for r in reports]
        entries.append({
            "workers": workers,
            "queries": len(reports),
            "elapsed_seconds": round(elapsed, 6),
            "queries_per_second": round(len(reports) / elapsed, 4),
            "mean_queue_wait_seconds": round(statistics.mean(waits), 6),
            "p95_queue_wait_seconds": round(_percentile(waits, 0.95), 6),
        })
    base = entries[0]["elapsed_seconds"]
    for entry in entries:
        entry["speedup_vs_1_worker"] = round(
            base / entry["elapsed_seconds"], 4)
    return entries


def _run_intra_query_sweep(db: Database,
                           worker_counts: tuple[int, ...],
                           repeats: int) -> list[dict]:
    sql = ("SELECT dweek, monthno, dept, sum(salesamt), "
           "avg(salesamt), count(*) FROM sales "
           "GROUP BY dweek, monthno, dept")
    db.set_parallel_workers(1)
    baseline_rows = db.query(sql)
    entries = []
    for workers in worker_counts:
        db.set_parallel_workers(workers, row_threshold=1)
        runs = []
        for _ in range(repeats):
            started = time.perf_counter()
            rows = db.query(sql)
            runs.append(time.perf_counter() - started)
        entries.append({
            "parallel_workers": workers,
            "best_seconds": round(min(runs), 6),
            "runs": [round(r, 6) for r in runs],
            "bit_identical_to_serial": rows == baseline_rows,
        })
    db.set_parallel_workers(1)
    base = entries[0]["best_seconds"]
    for entry in entries:
        entry["speedup_vs_serial"] = round(
            base / entry["best_seconds"], 4)
    return entries


def _run_mixed_latency(db: Database, n_ops: int) -> dict:
    """Interleaved readers and writers through one 4-worker service.

    Every fourth operation is a single-row INSERT into a scratch table
    (exercising the writer lock and copy-on-write publication); the
    rest are aggregation reads over ``sales``.
    """
    db.drop_table("bench_scratch", if_exists=True)
    db.execute("CREATE TABLE bench_scratch (k INT, v REAL)")
    read_sql = ("SELECT dept, sum(salesamt) FROM sales GROUP BY dept")
    try:
        with QueryService(db, workers=4, max_queue_depth=n_ops,
                          session_inflight_cap=n_ops) as service:
            with service.create_session() as readers, \
                    service.create_session() as writers:
                futures = []
                for i in range(n_ops):
                    if i % 4 == 3:
                        futures.append(("write", writers.submit(
                            f"INSERT INTO bench_scratch VALUES "
                            f"({i}, {i * 0.5})")))
                    else:
                        futures.append(("read",
                                        readers.submit(read_sql)))
                reports = [(kind, f.result()) for kind, f in futures]
        by_kind: dict[str, dict[str, list[float]]] = {
            "read": {"wait": [], "run": []},
            "write": {"wait": [], "run": []}}
        for kind, report in reports:
            by_kind[kind]["wait"].append(report.queue_wait_seconds)
            by_kind[kind]["run"].append(report.elapsed_seconds)
        out = {"operations": n_ops, "workers": 4}
        for kind, samples in by_kind.items():
            out[kind] = {
                "count": len(samples["run"]),
                "mean_execute_seconds": round(
                    statistics.mean(samples["run"]), 6),
                "p95_execute_seconds": round(
                    _percentile(samples["run"], 0.95), 6),
                "mean_queue_wait_seconds": round(
                    statistics.mean(samples["wait"]), 6),
                "p95_queue_wait_seconds": round(
                    _percentile(samples["wait"], 0.95), 6),
            }
        out["scratch_rows"] = int(
            db.query("SELECT count(*) FROM bench_scratch")[0][0])
        out["all_writes_applied"] = (
            out["scratch_rows"] == out["write"]["count"])
        return out
    finally:
        db.drop_table("bench_scratch", if_exists=True)


def run_concurrency_benchmark(sales_n: int = 120_000,
                              read_queries: int = 20,
                              mixed_ops: int = 40,
                              repeats: int = 3,
                              worker_counts: tuple[int, ...] = (1, 2, 4, 8)
                              ) -> dict:
    """The full concurrency suite; returns the JSON-ready report."""
    from repro.datagen import load_sales

    db = Database()
    load_sales(db, sales_n)
    report = {
        "workload": f"sales n={sales_n}; service reads (plain + "
                    f"Vpct/Hpct), partition-parallel group-by, "
                    f"mixed read/write",
        "cpu_count": os.cpu_count(),
        "note": "speedups are bounded by cpu_count and the GIL; on a "
                "single-core host expect ~1.0x scaling -- the suite "
                "then certifies overhead and correctness, not "
                "parallel speedup",
        "read_throughput": _run_read_sweep(db, worker_counts,
                                           read_queries),
        "intra_query_parallelism": _run_intra_query_sweep(
            db, worker_counts, repeats),
        "mixed_latency": _run_mixed_latency(db, mixed_ops),
    }
    reads = report["read_throughput"]
    report["summary"] = {
        "best_read_throughput_qps": max(
            e["queries_per_second"] for e in reads),
        "read_speedup_at_4_workers": next(
            (e["speedup_vs_1_worker"] for e in reads
             if e["workers"] == 4), None),
        "intra_query_speedup_at_4_workers": next(
            (e["speedup_vs_serial"]
             for e in report["intra_query_parallelism"]
             if e["parallel_workers"] == 4), None),
        "all_parallel_results_bit_identical": all(
            e["bit_identical_to_serial"]
            for e in report["intra_query_parallelism"]),
        "all_writes_applied": report["mixed_latency"][
            "all_writes_applied"],
    }
    return report
