"""Replay of the checked-in fuzz corpus.

Every divergence the fuzzer ever found lands here, minimized, as a
JSON file under ``tests/fuzz/corpus/``.  Files carry an ``expect``
field: ``"consistent"`` pins a fixed bug (all strategies and the
sqlite oracle must agree forever), ``"divergent"`` parks a known-open
one so the suite documents it without failing.
"""

import pytest

from repro.fuzz import load_corpus, run_case
from repro.fuzz.corpus import DEFAULT_CORPUS

CORPUS = list(load_corpus(DEFAULT_CORPUS))


def test_corpus_is_not_empty():
    assert CORPUS, f"no corpus files under {DEFAULT_CORPUS}"


@pytest.mark.parametrize(
    "path,case,expect", CORPUS,
    ids=[path.stem for path, _, _ in CORPUS])
def test_corpus_case(path, case, expect):
    result = run_case(case)
    if expect == "consistent":
        assert not result.divergent, result.divergence_report()
    elif expect == "divergent":
        assert result.divergent, (
            f"{path.name} replays clean: the bug it parks appears "
            "fixed -- flip its expect field to 'consistent'")
    else:
        pytest.fail(f"{path.name}: unknown expect value {expect!r}")


def test_corpus_cases_are_minimal_enough():
    """Check-in hygiene: minimized repros stay small and readable."""
    for path, case, _ in CORPUS:
        assert len(case.rows) <= 10, f"{path.name}: too many rows"
        assert len(case.columns) <= 6, f"{path.name}: too many columns"
