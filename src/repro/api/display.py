"""Plain-text rendering of result tables (used by the CLI, the
examples, and anyone who wants a quick look at a Table)."""

from __future__ import annotations

from typing import Any, Optional

from repro.engine.table import Table


def render_value(value: Any, float_digits: int = 4) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        text = f"{value:.{float_digits}f}"
        return text.rstrip("0").rstrip(".") if "." in text else text
    return str(value)


def format_table(table: Table, max_rows: Optional[int] = 50,
                 float_digits: int = 4) -> str:
    """An aligned text rendering of a result table.

    Shows at most ``max_rows`` rows (None for all) and appends a
    truncation note when rows were cut.
    """
    names = table.column_names()
    rows = []
    truncated = 0
    for i, row in enumerate(table.rows()):
        if max_rows is not None and i >= max_rows:
            truncated = table.n_rows - max_rows
            break
        rows.append([render_value(v, float_digits) for v in row])

    widths = [len(n) for n in names]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    out = [line(names), "-+-".join("-" * w for w in widths)]
    out.extend(line(row) for row in rows)
    if truncated:
        out.append(f"... ({truncated} more rows)")
    out.append(f"({table.n_rows} row{'s' if table.n_rows != 1 else ''})")
    return "\n".join(out)
