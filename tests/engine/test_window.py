"""Unit tests for window-function evaluation."""

import numpy as np

from repro.engine.column import ColumnData
from repro.engine.stats import StatsCollector
from repro.engine.types import SQLType
from repro.engine.window import evaluate_window


def int_col(values):
    return ColumnData.from_values(SQLType.INTEGER, values)


class TestEvaluateWindow:
    def test_sum_over_partition(self):
        partition = [int_col([1, 1, 2, 2, 2])]
        arg = int_col([10, 20, 1, 2, 3])
        result = evaluate_window("sum", arg, partition, 5)
        assert result.to_pylist() == [30, 30, 6, 6, 6]

    def test_global_partition(self):
        result = evaluate_window("sum", int_col([1, 2, 3]), [], 3)
        assert result.to_pylist() == [6, 6, 6]

    def test_count_star(self):
        result = evaluate_window("count", None, [int_col([1, 1, 2])], 3)
        assert result.to_pylist() == [2, 2, 1]

    def test_avg(self):
        result = evaluate_window("avg", int_col([2, 4, 9]),
                                 [int_col([1, 1, 2])], 3)
        assert result.to_pylist() == [3.0, 3.0, 9.0]

    def test_nulls_skipped_in_sum(self):
        result = evaluate_window("sum", int_col([None, 5, None]),
                                 [int_col([1, 1, 2])], 3)
        assert result.to_pylist() == [5, 5, None]

    def test_charges_materialization_cost(self):
        stats = StatsCollector()
        evaluate_window("sum", int_col([1, 2]), [int_col([1, 2])], 2,
                        stats)
        # The window operator spools its input: one read + one write
        # pass (this is what makes the OLAP baseline expensive).
        assert stats.rows_scanned == 2
        assert stats.rows_written == 2
