"""Unit tests for the catalog: table/index registry and DBMS limits."""

import pytest

from repro.engine.catalog import Catalog
from repro.engine.schema import TableSchema
from repro.engine.table import Table
from repro.engine.types import SQLType
from repro.errors import CatalogError


def make_table(name="t", columns=(("a", SQLType.INTEGER),)):
    schema = TableSchema.build(name, list(columns))
    return Table(schema)


class TestTables:
    def test_create_and_lookup_case_insensitive(self):
        catalog = Catalog()
        catalog.create_table(make_table("Orders"))
        assert catalog.has_table("ORDERS")
        assert catalog.table("orders").name == "Orders"

    def test_duplicate_raises(self):
        catalog = Catalog()
        catalog.create_table(make_table())
        with pytest.raises(CatalogError):
            catalog.create_table(make_table())

    def test_replace_flag(self):
        catalog = Catalog()
        catalog.create_table(make_table())
        catalog.create_table(make_table(), replace=True)

    def test_drop(self):
        catalog = Catalog()
        catalog.create_table(make_table())
        catalog.drop_table("t")
        assert not catalog.has_table("t")

    def test_drop_missing_raises_unless_if_exists(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.drop_table("nope")
        catalog.drop_table("nope", if_exists=True)

    def test_unknown_lookup_raises(self):
        with pytest.raises(CatalogError):
            Catalog().table("missing")


class TestLimits:
    def test_max_columns_enforced(self):
        catalog = Catalog(max_columns=2)
        wide = make_table("w", [("a", SQLType.INTEGER),
                                ("b", SQLType.INTEGER),
                                ("c", SQLType.INTEGER)])
        with pytest.raises(CatalogError):
            catalog.create_table(wide)

    def test_max_name_length_enforced(self):
        catalog = Catalog(max_name_length=5)
        with pytest.raises(CatalogError):
            catalog.create_table(make_table("toolongname"))
        with pytest.raises(CatalogError):
            catalog.create_table(
                make_table("t", [("averylongcolumn", SQLType.INTEGER)]))


class TestIndexes:
    def test_create_find_drop(self):
        catalog = Catalog()
        catalog.create_table(Table.from_rows(
            TableSchema.build("t", [("a", SQLType.INTEGER),
                                    ("b", SQLType.INTEGER)]),
            [(1, 2), (3, 4)]))
        catalog.create_index("ix", "t", ["a"])
        assert catalog.find_index("t", ["A"]) is not None
        assert catalog.find_index("t", ["a", "b"]) is None
        assert catalog.index_names() == ["ix"]
        catalog.drop_index("ix")
        assert catalog.find_index("t", ["a"]) is None

    def test_index_on_missing_column_raises(self):
        catalog = Catalog()
        catalog.create_table(make_table())
        with pytest.raises(CatalogError):
            catalog.create_index("ix", "t", ["zzz"])

    def test_duplicate_index_raises(self):
        catalog = Catalog()
        catalog.create_table(make_table())
        catalog.create_index("ix", "t", ["a"])
        with pytest.raises(CatalogError):
            catalog.create_index("ix", "t", ["a"])

    def test_drop_table_drops_its_indexes(self):
        catalog = Catalog()
        catalog.create_table(make_table())
        catalog.create_index("ix", "t", ["a"])
        catalog.drop_table("t")
        assert catalog.index_names() == []

    def test_replace_table_rebuilds_indexes(self):
        schema = TableSchema.build("t", [("a", SQLType.INTEGER)])
        catalog = Catalog()
        catalog.create_table(Table.from_rows(schema, [(1,)]))
        index = catalog.create_index("ix", "t", ["a"])
        assert index.built_rows == 1
        catalog.replace_table(Table.from_rows(schema, [(1,), (2,)]))
        rebuilt = catalog.find_index("t", ["a"])
        assert rebuilt.built_rows == 2
        # copy-on-write: the published index is a fresh object; the
        # old one stays frozen for any snapshot that captured it
        assert rebuilt is not index
        assert index.built_rows == 1
