"""Views-test hygiene: the temp-table leak guard from the integration
suite, plus a small fact table every test builds its views over."""

from __future__ import annotations

import pytest

from repro.api.database import Database
from tests.conftest import assert_no_temp_leaks, install_database_tracker


@pytest.fixture(autouse=True)
def no_temp_leaks(request, monkeypatch):
    if request.node.get_closest_marker("allow_temp_leaks"):
        yield
        return
    created = install_database_tracker(monkeypatch)
    yield
    assert_no_temp_leaks(created)


@pytest.fixture
def db() -> Database:
    database = Database()
    database.execute_script("""
        CREATE TABLE f (d1 INT, d2 VARCHAR, a REAL);
        INSERT INTO f VALUES (1, 'x', 10.0), (1, 'y', 30.0),
                             (2, 'x', 60.0), (2, 'y', 0.25),
                             (3, 'x', NULL)
    """)
    return database
