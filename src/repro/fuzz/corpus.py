"""Persistence for minimized fuzz cases.

Every divergence the fuzzer ever found (and every interesting shape
worth pinning) lives as one JSON file in ``tests/fuzz/corpus/``.  The
corpus is checked in: ``tests/fuzz/test_corpus.py`` replays it on
every test run, so a once-fixed divergence can never quietly return.

File format (one case per file)::

    {
      "description": "why this case exists",
      "expect": "consistent",
      "case": { ...FuzzCase.to_dict()... }
    }

``expect`` is always ``"consistent"`` today -- a checked-in repro is a
*fixed* bug.  The field exists so a known-open divergence could be
parked as ``"divergent"`` without failing CI.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator

from repro.fuzz.generator import FuzzCase

#: repo-relative default corpus directory.
DEFAULT_CORPUS = Path(__file__).resolve().parents[3] \
    / "tests" / "fuzz" / "corpus"


def save_repro(case: FuzzCase, directory: Path | str,
               description: str = "",
               expect: str = "consistent") -> Path:
    """Write one case; the name encodes (seed, index) for provenance."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / (f"{case.family}-seed{case.seed}"
                        f"-case{case.index}.json")
    payload = {"description": description, "expect": expect,
               "case": case.to_dict()}
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_corpus(directory: Path | str = DEFAULT_CORPUS
                ) -> Iterator[tuple[Path, FuzzCase, str]]:
    """Yield ``(path, case, expect)`` for every corpus file."""
    directory = Path(directory)
    if not directory.is_dir():
        return
    for path in sorted(directory.glob("*.json")):
        payload = json.loads(path.read_text())
        yield path, FuzzCase.from_dict(payload["case"]), \
            payload.get("expect", "consistent")
