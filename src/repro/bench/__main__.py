"""``python -m repro.bench``: the encoding-cache benchmark CLI."""

from repro.bench.harness import main

if __name__ == "__main__":
    raise SystemExit(main())
