"""Unit tests for the metrics registry and the Prometheus exporter."""

import pytest

from repro.obs.metrics import (DEFAULT_BUCKETS, MetricsRegistry,
                               global_registry, parse_prometheus)


class TestCountersAndGauges:
    def test_counter_get_or_create_and_inc(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(2)
        assert registry.value("hits") == 3

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("hits").inc(-1)

    def test_labels_are_identity(self):
        registry = MetricsRegistry()
        registry.counter("reqs", session="a").inc(5)
        registry.counter("reqs", session="b").inc(7)
        assert registry.value("reqs", session="a") == 5
        assert registry.value("reqs", session="b") == 7

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("inflight")
        gauge.inc()
        gauge.inc()
        gauge.dec()
        assert gauge.value == 1
        gauge.set(9.5)
        assert gauge.value == 9.5

    def test_atomic_increment_and_consistent_read(self):
        registry = MetricsRegistry()
        registry.increment({"a": 2, "b": 3})
        assert registry.read(["a", "b"]) == {"a": 2, "b": 3}

    def test_zero_resets_named_counters(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(4)
        registry.counter("b").inc(2)
        registry.zero(["a"])
        assert registry.value("a") == 0
        assert registry.value("b") == 2


class TestHistograms:
    def test_observations_land_in_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.7, 5.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["buckets"][0.1] == 1
        assert snap["buckets"][1.0] == 3  # cumulative
        assert snap["inf"] == 4
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(6.25)

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_empty_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=())


class TestPrometheusExposition:
    def test_render_and_parse_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("engine_rows_total", help="rows").inc(12)
        registry.gauge("inflight", session="s1").set(2)
        registry.histogram("wait_seconds",
                           buckets=(0.1, 1.0)).observe(0.5)
        text = registry.render_prometheus()
        assert "# TYPE engine_rows_total counter" in text
        assert "# HELP engine_rows_total rows" in text
        parsed = parse_prometheus(text)
        assert parsed == registry.samples()

    def test_label_escaping_survives(self):
        registry = MetricsRegistry()
        registry.counter("c", label='we"ird\nvalue').inc()
        parsed = parse_prometheus(registry.render_prometheus())
        assert list(parsed.values()) == [1]

    def test_global_registry_is_a_singleton(self):
        assert global_registry() is global_registry()
