"""The cancel-point chaos sweep: fire cancellation at every safepoint.

For each fuzz case the sweep first runs the query cleanly under a
counting :class:`~repro.engine.cancel.CancelToken` to learn the
reference rows and how many times each safepoint is crossed.  It then
re-runs the query once per ``(safepoint, sampled hit index)`` with a
token armed to cancel exactly there, and asserts the cancellation
contract after every single shot:

* the run raises a clean, typed
  :class:`~repro.errors.QueryCancelledError` (a cancellation that
  silently vanishes, surfaces as some other error, or escapes untyped
  is a finding);
* the unwind releases everything -- catalog fingerprint unchanged,
  zero temp tables leaked, zero live shared-memory segments (process
  backend), zero live page stores or stray files (disk storage);
* a clean re-run afterwards returns rows bit-identical to the
  undisturbed reference: cancellation left no residue that changes
  answers.

Variants mirror the fault sweep: the serial/thread/process parallel
backends crossed with the memory/disk table substrates, so cancel can
land mid-morsel-plan with shared memory exported and mid-page-fetch
with the buffer pool warm.

Any broken invariant becomes a :class:`CancelFinding`; a sweep with no
findings is the acceptance criterion for the safepoint machinery.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.execute import RetryPolicy, run_resilient
from repro.engine import cancel as cancel_mod
from repro.engine import shm
from repro.engine.cancel import SAFEPOINTS, CancelToken
from repro.errors import QueryCancelledError, ReproError
from repro.fuzz.generator import FuzzCase
from repro.fuzz.runner import _BACKEND_KW, _STORAGE_POOL_PAGES, _load_db
from repro.storage import engine as storage_engine

#: Parallel backends the sweep crosses with each storage substrate.
BACKENDS = ("serial", "thread", "process")

#: Table substrates.
STORAGES = ("memory", "disk")

#: Retries should not slow the sweep down (cancellation is never
#: retried -- the policy only matters for the probe/re-run legs).
_NO_BACKOFF = RetryPolicy(backoff_seconds=0.0)

#: At most this many hit indexes are swept per safepoint (first,
#: middle, last) -- hot safepoints like ``morsel`` are crossed many
#: times per query and sweeping each crossing buys nothing.
_INDEX_LIMIT = 3


@dataclass
class CancelFinding:
    """One broken invariant observed under one cancellation shot."""

    case: FuzzCase
    variant: str
    site: str
    index: int
    problem: str
    detail: str = ""

    def describe(self) -> str:
        text = (f"seed={self.case.seed} case={self.case.index} "
                f"({self.case.family}) [{self.variant} "
                f"{self.site}#{self.index}]: {self.problem}")
        if self.detail:
            text += f" -- {self.detail}"
        return text


@dataclass
class CancelSweepStats:
    """Aggregate outcome of a cancel sweep."""

    cases: int = 0
    #: (case, variant) combinations probed.
    variants: int = 0
    injections: int = 0
    #: Shots that raised a clean typed QueryCancelledError.
    cancelled: int = 0
    #: Shots whose armed crossing was never reached (safepoint counts
    #: on the disk backend drift with cache state across shots); the
    #: run is still held to the reference-identical contract.
    skipped: int = 0
    findings: list[CancelFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        return (f"swept {self.cases} case(s) x {self.variants} "
                f"variant run(s), {self.injections} cancellation "
                f"shot(s): {self.cancelled} clean cancel(s), "
                f"{self.skipped} unreached, "
                f"{len(self.findings)} finding(s)")


def _reached(token: CancelToken, site: str, index: int) -> bool:
    """Whether the shot actually crossed the armed safepoint index."""
    return token.hits.get(site, 0) > index


def _sample_indexes(hits: int) -> list[int]:
    if hits <= 0:
        return []
    picks = {0, hits // 2, hits - 1}
    return sorted(picks)[:_INDEX_LIMIT]


def sweep_case_cancel(case: FuzzCase, stats: CancelSweepStats,
                      backends=BACKENDS, storages=STORAGES) -> None:
    """Sweep one case across every backend x storage variant."""
    stats.cases += 1
    for storage in storages:
        for backend in backends:
            _sweep_variant(case, stats, backend, storage)


def _sweep_variant(case: FuzzCase, stats: CancelSweepStats,
                   backend: str, storage: str) -> None:
    variant = f"{storage}/{backend}"
    kwargs: dict[str, Any] = dict(_BACKEND_KW[backend])
    tmp: Optional[str] = None
    if storage == "disk":
        tmp = tempfile.mkdtemp(prefix="repro-cancel-store-")
        kwargs.update(storage="disk", storage_path=tmp,
                      pool_pages=_STORAGE_POOL_PAGES)
    try:
        db = _load_db(case, **kwargs)
        try:
            _sweep_db(case, stats, db, variant,
                      process=(backend == "process"))
        finally:
            db.close()
        if tmp is not None:
            stray = storage_engine.stray_files(tmp)
            if stray:
                stats.findings.append(CancelFinding(
                    case, variant, "-", 0, "stray store files leaked",
                    ", ".join(stray)))
    finally:
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)


def _sweep_db(case: FuzzCase, stats: CancelSweepStats, db,
              variant: str, process: bool) -> None:
    stats.variants += 1
    sql = case.query_sql()
    # The savepoint pins the baseline objects so the identity-based
    # fingerprint cannot suffer id() recycling.
    baseline = db.catalog.savepoint()
    fingerprint = db.catalog.fingerprint()
    base_names = set(db.table_names())

    # Warmup leg: the very first run on a database pays cold-cache
    # safepoint crossings (page fetches that later hit the buffer
    # pool, encodings not yet cached) that no later run repeats.  The
    # probe must count what the *shots* will cross, so it runs warm.
    try:
        run_resilient(db, sql, retry=_NO_BACKOFF)
    except ReproError:
        pass

    # Probe leg: a token with nothing armed counts safepoint crossings
    # while the query runs to completion.  Sampling armed indexes from
    # these counts also keeps degenerate cases (whose reference run
    # raises) honest: every counted crossing happens *before* the
    # case's own error point, so an armed cancel always fires first.
    probe = CancelToken()
    reference: Optional[list] = None
    try:
        with cancel_mod.activate(probe):
            reference = run_resilient(
                db, sql, retry=_NO_BACKOFF).result.to_rows()
    except ReproError:
        pass  # degenerate case: errors are an acceptable outcome

    shots = [(site, index) for site in SAFEPOINTS
             for index in _sample_indexes(probe.hits.get(site, 0))]
    for site, index in shots:
        stats.injections += 1
        _run_shot(case, stats, db, variant, sql, site, index,
                  reference, fingerprint, baseline, base_names,
                  process)


def _run_shot(case: FuzzCase, stats: CancelSweepStats, db,
              variant: str, sql: str, site: str, index: int,
              reference: Optional[list], fingerprint, baseline,
              base_names: set, process: bool) -> None:
    token = CancelToken()
    token.cancel_at = (site, index)
    error: Optional[BaseException] = None
    rows: Optional[list] = None
    try:
        with cancel_mod.activate(token):
            rows = run_resilient(
                db, sql, retry=_NO_BACKOFF).result.to_rows()
    except QueryCancelledError as exc:
        error = exc
        if exc.reason != "client":
            stats.findings.append(CancelFinding(
                case, variant, site, index,
                "cancellation surfaced with the wrong reason",
                f"expected 'client', got {exc.reason!r}"))
        else:
            stats.cancelled += 1
    except ReproError as exc:
        error = exc
        # The arm point may legitimately be unreached: safepoint
        # counts on the disk backend drift a little across shots
        # (rollbacks evict cached pages, changing how many fetches a
        # run needs).  An unreached shot of a degenerate case is just
        # the case's own error; anything else is a finding.
        if _reached(token, site, index):
            stats.findings.append(CancelFinding(
                case, variant, site, index,
                "cancellation surfaced as a different typed error",
                f"{type(exc).__name__}: {exc}"))
        elif reference is None:
            stats.skipped += 1
        else:
            stats.findings.append(CancelFinding(
                case, variant, site, index,
                "shot failed where the reference run succeeded",
                f"{type(exc).__name__}: {exc}"))
    except Exception as exc:  # noqa: BLE001 - the invariant
        error = exc
        stats.findings.append(CancelFinding(
            case, variant, site, index,
            "untyped error escaped the runtime",
            f"{type(exc).__name__}: {exc}"))
    if error is None:
        if _reached(token, site, index):
            stats.findings.append(CancelFinding(
                case, variant, site, index,
                "armed cancellation did not fire",
                f"query completed with {len(rows or [])} row(s)"))
        else:
            # Count drift left the arm point unreached and the query
            # completed; it must then match the reference exactly.
            stats.skipped += 1
            if reference is not None and rows != reference:
                stats.findings.append(CancelFinding(
                    case, variant, site, index,
                    "unreached shot returned different rows",
                    f"{rows!r} != {reference!r}"))

    # Unwind hygiene: nothing may survive the cancellation.
    leaked = [n for n in db.table_names() if n not in base_names]
    if leaked:
        stats.findings.append(CancelFinding(
            case, variant, site, index, "temp tables leaked",
            ", ".join(sorted(leaked))))
    if db.catalog.fingerprint() != fingerprint:
        stats.findings.append(CancelFinding(
            case, variant, site, index,
            "catalog changed across the cancelled plan"))
        # Contain the damage so later shots of this case still sweep
        # against the intended baseline.
        db.catalog.rollback(baseline)
    if process:
        segments = shm.live_segment_names()
        if segments:
            shm.force_unlink_all()
            stats.findings.append(CancelFinding(
                case, variant, site, index,
                "shared-memory segments leaked",
                ", ".join(segments)))

    # Re-run leg: the engine must be fully usable after a cancel, and
    # the answer must match the undisturbed reference bit-for-bit.
    try:
        rerun = run_resilient(
            db, sql, retry=_NO_BACKOFF).result.to_rows()
    except ReproError as exc:
        if reference is not None:
            stats.findings.append(CancelFinding(
                case, variant, site, index,
                "clean re-run after cancellation failed",
                f"{type(exc).__name__}: {exc}"))
        return
    except Exception as exc:  # noqa: BLE001 - the invariant
        stats.findings.append(CancelFinding(
            case, variant, site, index,
            "untyped error escaped the re-run",
            f"{type(exc).__name__}: {exc}"))
        return
    if reference is not None and rerun != reference:
        stats.findings.append(CancelFinding(
            case, variant, site, index,
            "re-run after cancellation returned different rows",
            f"{rerun!r} != {reference!r}"))


def sweep_cases_cancel(cases, stats: Optional[CancelSweepStats] = None,
                       backends=BACKENDS,
                       storages=STORAGES) -> CancelSweepStats:
    """Sweep an iterable of cases; returns the (given) stats."""
    stats = stats or CancelSweepStats()
    for case in cases:
        sweep_case_cancel(case, stats, backends=backends,
                          storages=storages)
    return stats
