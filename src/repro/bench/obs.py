"""Observability overhead benchmark (``repro.bench --suite obs``).

Two questions, two measurements:

* **Tracing on**: how much slower is the same workload on a database
  with ``tracing=True``?  Macro runs of the paper's Vpct/Hpct plans
  plus ad-hoc SQL, interleaved off/on so drift hits both sides
  equally.
* **Tracing off** (the default): what does the *disabled*
  instrumentation cost?  Every hook is one attribute read plus one
  branch; we measure that per-call cost directly (microbenchmark),
  count how many hook calls one workload run actually makes (the span
  and event count of a traced run is exactly that number), and bound
  the disabled overhead as ``per_call_seconds * calls / run_seconds``.
  The acceptance bar is that this estimate stays under 5%.
"""

from __future__ import annotations

import time

from repro.api.database import Database
from repro.core.execute import run_percentage_query
from repro.core.horizontal import HorizontalStrategy
from repro.core.vertical import VerticalStrategy
from repro.obs.tracer import Tracer

#: Ad-hoc statements mixed into the workload (exercise scan, join,
#: group-by, update -- every instrumented operator family).
ADHOC_SQL = (
    "SELECT store, sum(salesamt) FROM sales GROUP BY store",
    "SELECT a.store, count(*) FROM sales a, sales b "
    "WHERE a.transactionid = b.transactionid GROUP BY a.store",
    "UPDATE sales SET salesamt = salesamt WHERE store = 1",
)

VPCT_SQL = ("SELECT state, Vpct(salesamt) FROM sales "
            "GROUP BY state, city")
HPCT_SQL = ("SELECT store, Hpct(salesamt BY dweek) FROM sales "
            "GROUP BY store")


def _load(tracing: bool, sales_n: int) -> Database:
    from repro.datagen import load_sales

    db = Database(tracing=tracing)
    load_sales(db, sales_n)
    return db


def _run_workload(db: Database) -> None:
    run_percentage_query(db, VPCT_SQL, VerticalStrategy())
    run_percentage_query(db, HPCT_SQL, HorizontalStrategy(source="F"))
    for sql in ADHOC_SQL:
        db.execute(sql)


def _time_workload(db: Database) -> float:
    started = time.perf_counter()
    _run_workload(db)
    return time.perf_counter() - started


def _count_trace_ops(db: Database) -> int:
    """Spans + events one workload run creates on a traced database --
    exactly the number of instrumentation calls the disabled path
    branches through."""
    db.tracer.reset()
    _run_workload(db)
    count = sum(len(list(root.walk())) for root in db.tracer.roots())
    db.tracer.reset()
    return count


def _micro_disabled_call_cost(calls: int = 200_000) -> dict:
    """Per-call seconds of the disabled fast paths."""
    tracer = Tracer(enabled=False)

    started = time.perf_counter()
    for _ in range(calls):
        with tracer.span("x"):
            pass
    span_cost = (time.perf_counter() - started) / calls

    started = time.perf_counter()
    for _ in range(calls):
        tracer.event("x")
    event_cost = (time.perf_counter() - started) / calls

    return {"span_seconds_per_call": span_cost,
            "event_seconds_per_call": event_cost}


def run_obs_benchmark(sales_n: int = 60_000,
                      repeats: int = 5) -> dict:
    """Interleaved off/on macro runs plus the disabled-path bound."""
    off_db = _load(tracing=False, sales_n=sales_n)
    on_db = _load(tracing=True, sales_n=sales_n)

    off_runs: list[float] = []
    on_runs: list[float] = []
    # Warm both sides once (encoding caches, allocator) before timing.
    _time_workload(off_db)
    on_db.tracer.reset()
    _time_workload(on_db)
    for _ in range(repeats):
        off_runs.append(_time_workload(off_db))
        on_db.tracer.reset()
        on_runs.append(_time_workload(on_db))
    on_db.tracer.reset()

    off_seconds = min(off_runs)
    on_seconds = min(on_runs)
    trace_ops = _count_trace_ops(on_db)
    micro = _micro_disabled_call_cost()
    per_call = max(micro["span_seconds_per_call"],
                   micro["event_seconds_per_call"])
    off_overhead = (trace_ops * per_call) / off_seconds \
        if off_seconds else 0.0

    return {
        "workload": "Vpct + Hpct plans + ad-hoc scan/join/update",
        "sales_n": sales_n,
        "repeats": repeats,
        "off_runs_seconds": [round(s, 6) for s in off_runs],
        "on_runs_seconds": [round(s, 6) for s in on_runs],
        "micro": {k: round(v, 12) for k, v in micro.items()},
        "trace_ops_per_run": trace_ops,
        "summary": {
            "tracing_off_seconds": round(off_seconds, 6),
            "tracing_on_seconds": round(on_seconds, 6),
            "tracing_on_overhead_fraction": round(
                on_seconds / off_seconds - 1.0, 4)
            if off_seconds else None,
            "estimated_tracing_off_overhead_fraction": round(
                off_overhead, 6),
            "tracing_off_overhead_under_5pct": off_overhead < 0.05,
        },
    }
