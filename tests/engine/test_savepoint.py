"""Catalog savepoint/rollback semantics (the atomicity substrate for
multi-statement percentage plans)."""

import pytest

from repro import Database
from repro.errors import CatalogError


@pytest.fixture
def loaded(db):
    db.load_table("f", [("k", "int"), ("v", "real")],
                  [(1, 2.0), (2, 4.0)])
    return db


class TestRollback:
    def test_created_table_removed(self, loaded):
        savepoint = loaded.catalog.savepoint()
        loaded.execute("CREATE TABLE scratch (a INT)")
        loaded.catalog.rollback(savepoint)
        assert not loaded.has_table("scratch")

    def test_dropped_table_restored_identically(self, loaded):
        original = loaded.table("f")
        savepoint = loaded.catalog.savepoint()
        loaded.drop_table("f")
        loaded.catalog.rollback(savepoint)
        # same object, not a copy: immutability makes identity
        # equivalent to byte-identical content
        assert loaded.table("f") is original

    def test_replaced_table_restored(self, loaded):
        original = loaded.table("f")
        savepoint = loaded.catalog.savepoint()
        loaded.execute("INSERT INTO f VALUES (3, 8.0)")
        assert loaded.table("f") is not original
        loaded.catalog.rollback(savepoint)
        assert loaded.table("f") is original
        assert loaded.query("SELECT count(*) FROM f") == [(2,)]

    def test_views_roll_back(self, loaded):
        savepoint = loaded.catalog.savepoint()
        loaded.execute("CREATE VIEW fv AS SELECT k FROM f")
        loaded.catalog.rollback(savepoint)
        assert not loaded.catalog.has_view("fv")

    def test_created_index_removed(self, loaded):
        savepoint = loaded.catalog.savepoint()
        loaded.execute("CREATE INDEX f_k ON f (k)")
        loaded.catalog.rollback(savepoint)
        assert loaded.catalog.index_names() == []

    def test_index_redigested_after_rollback(self, loaded):
        loaded.execute("CREATE INDEX f_k ON f (k)")
        savepoint = loaded.catalog.savepoint()
        loaded.execute("INSERT INTO f VALUES (3, 8.0)")
        # DML re-binds the index to the new table version in place
        loaded.catalog.rollback(savepoint)
        index = loaded.catalog.find_index("f", ["k"])
        assert index is not None
        assert index.source_table() is loaded.table("f")
        # the digest must reflect the restored (2-row) content
        assert loaded.query(
            "SELECT v FROM f WHERE k = 3") == []

    def test_encoding_cache_entries_invalidated(self, loaded):
        savepoint = loaded.catalog.savepoint()
        loaded.execute("INSERT INTO f VALUES (3, 8.0)")
        # populate the cache against the post-savepoint version
        loaded.query("SELECT k, sum(v) FROM f GROUP BY k")
        assert loaded.catalog.encoding_cache.entry_count > 0
        loaded.catalog.rollback(savepoint)
        tokens = loaded.catalog.encoding_cache.tokens()
        assert all(token[0] != "f" for token in tokens), \
            "stale encodings of the replaced table survived rollback"

    def test_rollback_is_idempotent(self, loaded):
        savepoint = loaded.catalog.savepoint()
        loaded.execute("CREATE TABLE scratch (a INT)")
        loaded.catalog.rollback(savepoint)
        loaded.catalog.rollback(savepoint)
        assert sorted(loaded.table_names()) == ["f"]


class TestFingerprint:
    def test_equal_when_untouched(self, loaded):
        assert loaded.catalog.fingerprint() \
            == loaded.catalog.fingerprint()

    def test_changes_on_create_and_restores_on_rollback(self, loaded):
        savepoint = loaded.catalog.savepoint()
        before = loaded.catalog.fingerprint()
        loaded.execute("CREATE TABLE scratch (a INT)")
        assert loaded.catalog.fingerprint() != before
        loaded.catalog.rollback(savepoint)
        assert loaded.catalog.fingerprint() == before

    def test_changes_on_dml(self, loaded):
        before = loaded.catalog.fingerprint()
        loaded.execute("INSERT INTO f VALUES (3, 8.0)")
        assert loaded.catalog.fingerprint() != before


class TestDropTableDefaults:
    def test_catalog_and_database_agree(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.drop_table("t")
        with pytest.raises(CatalogError):
            db.catalog.drop_table("t")
        with pytest.raises(CatalogError):
            db.drop_table("t")
        db.drop_table("t", if_exists=True)
        db.catalog.drop_table("t", if_exists=True)
