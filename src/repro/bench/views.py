"""Materialized-view benchmark (``repro.bench --suite views``).

Two acceptance bars, both on the paper's sales fact table under its
Table 4 ``dept | dweek,monthNo`` Vpct shape:

* **Delta vs full maintenance**: an UPDATE touching a 1% slice of the
  fact table (one ``dept`` -- 1% of rows *and* 1% of groups, the
  localized-write scenario incremental maintenance exists for) must be
  absorbed by delta maintenance at least **5x** faster than a full
  recompute of the same view (``REFRESH MATERIALIZED VIEW``).  Both
  sides are read from the engine's own
  ``view_maintenance_seconds{view,mode}`` gauge, so the comparison
  measures exactly the maintenance work and neither side carries the
  DML or serving cost of its statement.
* **View reads vs cold evaluation**: answering the defining query from
  the fresh view must be at least **10x** faster than evaluating the
  Vpct from scratch through the vertical strategy.

The report also records the oracle that makes the speed claims safe to
trust: after all the maintained DML, the view-served rows are compared
bitwise against a from-scratch recompute with the rewrite disabled
(the same comparator the views fuzz sweep uses).
"""

from __future__ import annotations

import time

from repro.api.database import Database
from repro.bench.workloads import QuerySpec
from repro.core.execute import run_percentage_query
from repro.core.vertical import VerticalStrategy

#: SIGMOD Table 4 row 7 -- a Vpct whose grouping (dweek x monthNo x
#: dept = 8,400 candidate groups) is wide enough that a localized
#: update leaves the overwhelming majority of groups untouched.
SPEC = QuerySpec("sales dept | dweek,monthNo", "sales", "salesamt",
                 totals=("dweek", "monthno"), by=("dept",))

VIEW_NAME = "v_bench"

#: The 1%-rate update: one dept out of 100 uniformly distributed, so
#: exactly ~1% of rows and 1% of the view's groups are touched.
UPDATE_DML = "UPDATE sales SET salesamt = salesamt + 1 WHERE dept = 1"


def _maintenance_seconds(db: Database, mode: str) -> float:
    """The last maintenance elapsed the executor observed, from the
    ``view_maintenance_seconds`` gauge it publishes per refresh."""
    return db.stats.registry.gauge(
        "view_maintenance_seconds",
        help="seconds spent in the last materialized-view refresh",
        view=VIEW_NAME, mode=mode).value


def _cold_read(db: Database, sql: str) -> float:
    started = time.perf_counter()
    run_percentage_query(db, sql, strategy=VerticalStrategy(),
                         use_views=False)
    return time.perf_counter() - started


def _view_read(db: Database, sql: str) -> float:
    started = time.perf_counter()
    db.execute(sql)
    return time.perf_counter() - started


def run_views_benchmark(sales_n: int = 200_000,
                        repeats: int = 3) -> dict:
    from repro.datagen import load_sales
    from repro.fuzz.views import table_diff

    db = Database()
    load_sales(db, sales_n)
    sql = SPEC.vpct_sql()

    # Cold side first, before any view exists to shortcut it.
    cold_runs = [_cold_read(db, sql) for _ in range(repeats)]

    started = time.perf_counter()
    db.execute(f"CREATE MATERIALIZED VIEW {VIEW_NAME} AS {sql}")
    build_seconds = time.perf_counter() - started

    view_runs = [_view_read(db, sql) for _ in range(repeats)]

    # Maintenance A/B at the 1% update rate.  Each round: one
    # localized UPDATE (absorbed by delta maintenance as part of the
    # DML) and one forced full recompute; both elapsed times come from
    # the engine's own per-mode gauge.
    rows_updated = db.execute(UPDATE_DML)
    delta_runs = [_maintenance_seconds(db, "delta")]
    full_runs = []
    for _ in range(repeats):
        db.execute(f"REFRESH MATERIALIZED VIEW {VIEW_NAME}")
        full_runs.append(_maintenance_seconds(db, "full"))
        db.execute(UPDATE_DML)
        delta_runs.append(_maintenance_seconds(db, "delta"))

    # The oracle behind the speedups: after all that DML the served
    # rows must still equal a from-scratch recompute bitwise.
    served = db.execute(sql)
    expected = run_percentage_query(db, sql,
                                    strategy=VerticalStrategy(),
                                    use_views=False)
    divergence = table_diff(expected, served)

    cold = min(cold_runs)
    view = min(view_runs)
    delta = min(delta_runs)
    full = min(full_runs)
    read_speedup = cold / view if view else None
    delta_speedup = full / delta if delta else None
    n_groups = db.execute(f"SELECT * FROM {VIEW_NAME}").n_rows
    return {
        "workload": sql,
        "scales": {"sales_n": sales_n},
        "view": {"name": VIEW_NAME, "groups": n_groups,
                 "build_seconds": round(build_seconds, 6)},
        "update": {"dml": UPDATE_DML, "rows_updated": rows_updated,
                   "row_fraction": round(rows_updated / sales_n, 4)},
        "cold_read_runs": [round(s, 6) for s in cold_runs],
        "view_read_runs": [round(s, 6) for s in view_runs],
        "delta_maintenance_runs": [round(s, 6) for s in delta_runs],
        "full_refresh_runs": [round(s, 6) for s in full_runs],
        "summary": {
            "cold_read_seconds": round(cold, 6),
            "view_read_seconds": round(view, 6),
            "view_read_speedup_over_cold":
                round(read_speedup, 2) if read_speedup else None,
            "view_read_speedup_at_least_10x":
                read_speedup is not None and read_speedup >= 10.0,
            "delta_seconds": round(delta, 6),
            "full_seconds": round(full, 6),
            "delta_speedup_over_full":
                round(delta_speedup, 2) if delta_speedup else None,
            "delta_speedup_at_least_5x":
                delta_speedup is not None and delta_speedup >= 5.0,
            "view_bit_identical": divergence is None,
        },
    }
