"""The durable storage engine: shadow-paged tables + a metadata WAL.

Durability model
================
Engine tables are immutable -- every DML publishes a whole new
:class:`~repro.engine.table.Table` -- so the disk backend is *shadow
paged*: a catalog mutation first writes the new table's columns to
freshly allocated pages, fsyncs the data file, and only then appends
one WAL record describing the mutation (schema + page map for table
ops, definitions for views/indexes).  The record's fsync is the commit
point:

* crash **before** the record is durable (the ``storage-page-write``
  and ``storage-wal-fsync`` fault sites): the new pages are
  unreferenced garbage, the old catalog state survives, and the
  garbage is reclaimed by the next checkpoint's live-set sweep;
* crash **after** (the ``storage-commit`` site): replay redoes the
  mutation from the record, so the committed state is recovered even
  though the in-memory publish never happened.

A *checkpoint* writes the whole catalog manifest to
``checkpoint.json`` (atomically: temp file + fsync + rename), truncates
the WAL, and frees every allocated page the manifest no longer
references.  Recovery is therefore always: load the checkpoint, replay
the WAL on top (records are complete-or-truncated, see
:mod:`repro.storage.wal`), verify every live page's checksum, rebuild
indexes, and hand the catalog its recovered name spaces.

Page reclamation happens **only** at checkpoints.  In between, pages
of superseded table versions stay on disk, which is what lets catalog
savepoint rollback (and its ``restore`` WAL record) re-publish an
older table version without any copying.

The module-level live-store registry is the leak oracle the tests and
the differential fuzzer use: every open engine registers its directory
and deregisters on :meth:`close`/:meth:`abandon`; anything left is a
leak, and :func:`stray_files` spots temp files a crashed checkpoint
left behind.
"""

from __future__ import annotations

import json
import os
import threading
from typing import TYPE_CHECKING, Any, Mapping, Optional

from repro.engine import cancel, faults
from repro.engine.index import HashIndex
from repro.engine.schema import TableSchema
from repro.engine.table import Table
from repro.engine.types import SQLType
from repro.errors import StorageError
from repro.obs import tracer as tracer_mod
from repro.storage.disk import DiskManager
from repro.storage.pages import (DEFAULT_PAGE_SIZE, chunk_payload,
                                 deserialize_column, serialize_column)
from repro.storage.pool import DEFAULT_POOL_PAGES, BufferPool
from repro.storage.stored import StoredTable
from repro.storage.wal import WriteAheadLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.catalog import Catalog
    from repro.engine.stats import StatsCollector

#: The files a store directory legitimately contains.
STORE_FILES = ("data.pages", "wal.log", "checkpoint.json")
_CHECKPOINT_TMP = "checkpoint.json.tmp"

_live_lock = threading.Lock()
_live_stores: dict[str, "StorageEngine"] = {}


def live_store_paths() -> list[str]:
    """Directories of engines opened but not yet closed/abandoned --
    the leak oracle mirrored on the shared-memory registry."""
    with _live_lock:
        return sorted(_live_stores)


def force_close_all() -> None:
    """Abandon every live engine (test/fuzz cleanup)."""
    with _live_lock:
        engines = list(_live_stores.values())
    for engine in engines:
        engine.abandon()


def stray_files(path: str) -> list[str]:
    """Files in a store directory beyond the expected three (leaked
    checkpoint temps and the like).  Empty list if the directory is
    gone."""
    try:
        names = os.listdir(path)
    except FileNotFoundError:
        return []
    return sorted(n for n in names if n not in STORE_FILES)


class StorageEngine:
    """Owns one store directory: data file, WAL, checkpoint, pool."""

    def __init__(self, path: str,
                 page_size: int = DEFAULT_PAGE_SIZE,
                 pool_pages: int = DEFAULT_POOL_PAGES,
                 registry=None,
                 stats: Optional["StatsCollector"] = None):
        os.makedirs(path, exist_ok=True)
        self.path = os.path.abspath(path)
        self.page_size = page_size
        self.disk = DiskManager(os.path.join(path, "data.pages"),
                                page_size=page_size)
        self.pool = BufferPool(self.disk, pool_pages,
                               registry=registry)
        self.wal = WriteAheadLog(os.path.join(path, "wal.log"))
        self.stats = stats
        self._checkpoint_path = os.path.join(path, "checkpoint.json")
        self._lock = threading.RLock()
        self._closed = False
        with _live_lock:
            _live_stores[self.path] = self

    # ------------------------------------------------------------------
    # Column I/O (StoredTable's read path)
    # ------------------------------------------------------------------
    def read_column(self, page_ids: list[int]):
        """Fetch a column's page run through the pool and deserialize;
        charges the fetches to the stats ledger (mirrored as a trace
        charge event, keeping the span/ledger audit exact)."""
        # Safepoint before the pool touches anything: a cancel here
        # leaves no pages pinned, so the unwind has nothing to release.
        cancel.checkpoint("page-fetch")
        payloads, hits, misses = self.pool.fetch_many(page_ids)
        if self.stats is not None and (hits or misses):
            counts = {"storage_page_fetches": hits + misses}
            if hits:
                counts["storage_pool_hits"] = hits
            if misses:
                counts["storage_page_reads"] = misses
            self.stats.add(**counts)
            tracer = tracer_mod.active_tracer()
            if tracer is not None and tracer.enabled:
                tracer.event("storage-fetch", kind="charge", **counts)
        return deserialize_column(b"".join(payloads))

    def _write_column(self, data) -> list[int]:
        chunks = chunk_payload(serialize_column(data),
                               self.disk.payload_capacity)
        page_ids = self.disk.allocate(len(chunks))
        for page_id, chunk in zip(page_ids, chunks):
            self.pool.write(page_id, chunk)
        return page_ids

    def persist_table(self, table: Table) -> StoredTable:
        """Write ``table``'s columns to fresh pages (shadow copy) and
        return the page-backed equivalent.  Nothing is committed until
        a WAL record referencing these pages lands."""
        pages: dict[str, list[int]] = {}
        for col_def in table.schema.columns:
            pages[col_def.name.lower()] = self._write_column(
                table.column(col_def.name))
        self.disk.sync()
        return StoredTable(table.schema, self, pages, table.n_rows)

    # ------------------------------------------------------------------
    # Commit protocol
    # ------------------------------------------------------------------
    def _commit(self, record: dict[str, Any]) -> None:
        """Append + fsync one WAL record; the injectable kill sites
        bracket the durability point: ``storage-wal-fsync`` fires just
        before the record exists (a crash there loses the mutation
        cleanly), ``storage-commit`` just after it is durable but
        before the in-memory publish (a crash there must be redone on
        reopen)."""
        self._check_open()
        faults.fire("storage-wal-fsync")
        self.wal.append(record, sync=True)
        faults.fire("storage-commit")

    # ------------------------------------------------------------------
    # Catalog mutation hooks (called by Catalog before publishing)
    # ------------------------------------------------------------------
    def on_create_table(self, table: Table,
                        replace: bool = False) -> StoredTable:
        with self._lock:
            stored = table if isinstance(table, StoredTable) \
                else self.persist_table(table)
            self._commit({"op": "create_table", "replace": replace,
                          "table": _table_entry(stored)})
            return stored

    def on_replace_table(self, table: Table) -> StoredTable:
        with self._lock:
            stored = table if isinstance(table, StoredTable) \
                else self.persist_table(table)
            self._commit({"op": "replace_table",
                          "table": _table_entry(stored)})
            return stored

    def log_drop_table(self, name: str) -> None:
        with self._lock:
            self._commit({"op": "drop_table", "name": name.lower()})

    def log_create_view(self, name: str, select,
                        replace: bool = False) -> None:
        from repro.sql.formatter import format_statement
        with self._lock:
            self._commit({"op": "create_view", "name": name.lower(),
                          "sql": format_statement(select),
                          "replace": replace})

    def log_drop_view(self, name: str) -> None:
        with self._lock:
            self._commit({"op": "drop_view", "name": name.lower()})

    def log_create_matview(self, name: str, sql: str, base: str,
                           display_name: str | None = None) -> None:
        """Materialized views are *definitions-durable*: the WAL and
        checkpoint carry the defining SQL and base-table key; the
        per-group state is rebuilt from the recovered base table at
        reopen (rebuild-on-recovery keeps the bit-identity contract
        without serializing float state)."""
        with self._lock:
            self._commit({"op": "create_matview", "name": name.lower(),
                          "display_name": display_name or name,
                          "sql": sql, "base": base})

    def log_drop_matview(self, name: str) -> None:
        with self._lock:
            self._commit({"op": "drop_matview", "name": name.lower()})

    def log_create_index(self, index: HashIndex) -> None:
        with self._lock:
            self._commit({"op": "create_index",
                          "index": _index_entry(index)})

    def log_drop_index(self, name: str) -> None:
        with self._lock:
            self._commit({"op": "drop_index", "name": name.lower()})

    def log_restore(self, tables: Mapping[str, Table],
                    views: Mapping[str, Any],
                    indexes: Mapping[str, HashIndex],
                    matviews: Mapping[str, Any] | None = None) -> None:
        """One record re-asserting the whole catalog state (savepoint
        rollback).  Every table must already be page-backed -- true by
        construction on a storage-backed catalog, where every publish
        went through the hooks above."""
        from repro.sql.formatter import format_statement
        entries = {}
        for key, table in tables.items():
            if not isinstance(table, StoredTable):
                raise StorageError(
                    f"cannot restore table {key!r}: not page-backed")
            entries[key] = _table_entry(table)
        with self._lock:
            self._commit({
                "op": "restore",
                "tables": entries,
                "views": {key: format_statement(view)
                          for key, view in views.items()},
                "indexes": [_index_entry(idx)
                            for idx in indexes.values()],
                "matviews": {key: _matview_entry(mv)
                             for key, mv in (matviews or {}).items()},
            })

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------
    def checkpoint(self, catalog: "Catalog") -> None:
        """Atomically persist the full manifest, truncate the WAL and
        reclaim every page the manifest no longer references."""
        with self._lock:
            self._check_open()
            snap = catalog.snapshot()
            manifest_tables = {}
            live: set[int] = set()
            for key, table in snap.tables.items():
                if not isinstance(table, StoredTable):
                    raise StorageError(
                        f"cannot checkpoint table {key!r}: not "
                        f"page-backed")
                manifest_tables[key] = _table_entry(table)
                live |= table.page_ids()
            from repro.sql.formatter import format_statement
            state = {
                "format": 1,
                "page_size": self.page_size,
                "next_page_id": self.disk.next_page_id,
                "tables": manifest_tables,
                "views": {key: format_statement(view)
                          for key, view in snap.views.items()},
                "indexes": [_index_entry(idx)
                            for idx in snap.indexes.values()],
                "matviews": {key: _matview_entry(mv)
                             for key, mv in snap.matviews.items()},
            }
            tmp = os.path.join(self.path, _CHECKPOINT_TMP)
            with open(tmp, "w") as handle:
                json.dump(state, handle, sort_keys=True)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self._checkpoint_path)
            _fsync_dir(self.path)
            self.wal.reset()
            dead = [page_id
                    for page_id in range(self.disk.next_page_id)
                    if page_id not in live]
            dead = sorted(set(dead) - self.disk.free_page_ids())
            if dead:
                self.disk.free(dead)
                self.pool.invalidate(dead)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def open_catalog(self, catalog: "Catalog") -> bool:
        """Recover durable state into ``catalog``; returns True when
        anything was recovered.  Ends with a checkpoint, collapsing
        the replayed WAL into a fresh manifest."""
        with self._lock:
            tables: dict[str, dict] = {}
            views: dict[str, str] = {}
            indexes: dict[str, dict] = {}
            matviews: dict[str, dict] = {}
            next_page_id = 0
            had_state = False
            if os.path.exists(self._checkpoint_path):
                had_state = True
                try:
                    with open(self._checkpoint_path) as handle:
                        state = json.load(handle)
                except ValueError as exc:
                    raise StorageError(
                        f"unreadable checkpoint "
                        f"{self._checkpoint_path!r}: {exc}") from None
                if state.get("page_size") != self.page_size:
                    raise StorageError(
                        f"store was written with page_size="
                        f"{state.get('page_size')}, opened with "
                        f"{self.page_size}")
                tables = dict(state.get("tables", {}))
                views = dict(state.get("views", {}))
                indexes = {e["name"]: e
                           for e in state.get("indexes", [])}
                matviews = dict(state.get("matviews", {}))
                next_page_id = int(state.get("next_page_id", 0))
            records = self.wal.replay()
            had_state = had_state or bool(records)
            for record in records:
                _apply_record(record, tables, views, indexes, matviews)
            if not had_state:
                # Fresh store: nothing to recover; leave the catalog
                # alone and start from a clean checkpoint baseline.
                self.checkpoint(catalog)
                return False

            live: set[int] = set()
            for entry in tables.values():
                for ids in entry["pages"].values():
                    live |= set(ids)
            next_page_id = max([next_page_id, self.disk.next_page_id]
                               + [pid + 1 for pid in live])
            self.disk.set_allocation(
                next_page_id,
                [p for p in range(next_page_id) if p not in live])

            recovered_tables: dict[str, StoredTable] = {}
            for key, entry in tables.items():
                recovered_tables[key] = StoredTable(
                    _schema_from_entry(entry["schema"]), self,
                    entry["pages"], entry["n_rows"])
            # Torn-write detection: verify every committed page's
            # checksum now, so corruption surfaces as a typed error at
            # reopen instead of wrong data mid-query.
            for page_id in sorted(live):
                self.pool.fetch(page_id)

            from repro.sql.parser import parse_statement
            recovered_views = {key: parse_statement(sql)
                               for key, sql in views.items()}
            recovered_indexes: dict[str, HashIndex] = {}
            for key, entry in indexes.items():
                table = recovered_tables.get(entry["table"].lower())
                if table is None:
                    continue
                index = HashIndex(entry["display_name"],
                                  table.name, entry["columns"])
                index.rebuild(table, cache=catalog.encoding_cache)
                recovered_indexes[key] = index
            catalog.bootstrap(recovered_tables, recovered_views,
                              recovered_indexes)
            if matviews:
                # Rebuild (never deserialize) each materialized view
                # from its recorded definition against the recovered
                # base tables: crash recovery and clean reopen land on
                # the same state a fresh CREATE would produce.
                from repro.views.maintenance import build_matview
                recovered_matviews: dict[str, Any] = {}
                for key, entry in matviews.items():
                    if entry["base"] not in recovered_tables:
                        continue
                    select = parse_statement(entry["sql"])
                    recovered_matviews[key] = build_matview(
                        catalog, entry.get("display_name", key), select)
                catalog.bootstrap(recovered_tables, recovered_views,
                                  recovered_indexes,
                                  matviews=recovered_matviews)
            self.checkpoint(catalog)
            return True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, catalog: Optional["Catalog"] = None) -> None:
        """Clean shutdown: checkpoint (when a catalog is given), then
        release file handles and deregister.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            if catalog is not None:
                self.checkpoint(catalog)
            self._teardown()

    def abandon(self) -> None:
        """Simulated kill: release handles *without* checkpointing, so
        the on-disk state is exactly what a crash would leave.
        Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._teardown()

    def _teardown(self) -> None:
        self._closed = True
        self.disk.close()
        self.wal.close()
        self.pool.clear()
        with _live_lock:
            _live_stores.pop(self.path, None)

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(
                f"storage engine at {self.path!r} is closed")

    def info(self) -> dict:
        return {
            "path": self.path,
            "page_size": self.page_size,
            "allocated_pages": self.disk.next_page_id,
            "free_pages": len(self.disk.free_page_ids()),
            "wal_bytes": 0 if self._closed else self.wal.size_bytes(),
            "pool": self.pool.info(),
        }


# ----------------------------------------------------------------------
# Manifest entries
# ----------------------------------------------------------------------
def _table_entry(table: StoredTable) -> dict:
    return {
        "schema": _schema_entry(table.schema),
        "n_rows": table.n_rows,
        "pages": table.page_map(),
    }


def _schema_entry(schema: TableSchema) -> dict:
    return {
        "name": schema.name,
        "columns": [[c.name, c.sql_type.value]
                    for c in schema.columns],
        "primary_key": list(schema.primary_key),
    }


def _schema_from_entry(entry: dict) -> TableSchema:
    return TableSchema.build(
        entry["name"],
        [(name, SQLType(type_name))
         for name, type_name in entry["columns"]],
        entry.get("primary_key", ()))


def _matview_entry(mv) -> dict:
    return {
        "name": mv.key,
        "display_name": mv.definition.name,
        "sql": mv.definition.sql,
        "base": mv.definition.base_table,
    }


def _index_entry(index: HashIndex) -> dict:
    return {
        "name": index.name.lower(),
        "display_name": index.name,
        "table": index.table_name,
        "columns": list(index.column_names),
    }


def _apply_record(record: dict, tables: dict, views: dict,
                  indexes: dict,
                  matviews: dict | None = None) -> None:
    """Redo one WAL record against the manifest dicts (idempotent:
    records always carry the full new state of the name they touch)."""
    if matviews is None:
        matviews = {}
    op = record.get("op")
    if op in ("create_table", "replace_table"):
        entry = record["table"]
        tables[entry["schema"]["name"].lower()] = entry
    elif op == "drop_table":
        key = record["name"]
        tables.pop(key, None)
        for idx_key in [k for k, e in indexes.items()
                        if e["table"].lower() == key]:
            indexes.pop(idx_key)
        for mv_key in [k for k, e in matviews.items()
                       if e["base"] == key]:
            matviews.pop(mv_key)
    elif op == "create_view":
        views[record["name"]] = record["sql"]
    elif op == "drop_view":
        views.pop(record["name"], None)
    elif op == "create_matview":
        matviews[record["name"]] = {
            "name": record["name"],
            "display_name": record.get("display_name",
                                       record["name"]),
            "sql": record["sql"], "base": record["base"]}
    elif op == "drop_matview":
        matviews.pop(record["name"], None)
    elif op == "create_index":
        entry = record["index"]
        indexes[entry["name"]] = entry
    elif op == "drop_index":
        indexes.pop(record["name"], None)
    elif op == "restore":
        tables.clear()
        tables.update(record["tables"])
        views.clear()
        views.update(record["views"])
        indexes.clear()
        indexes.update({e["name"]: e for e in record["indexes"]})
        matviews.clear()
        matviews.update(record.get("matviews", {}))
    else:
        raise StorageError(f"unknown WAL record op {op!r}")


def _fsync_dir(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
