"""Render AST nodes back to SQL text.

The percentage-query code generator builds statement ASTs and uses this
module to emit the standard SQL the paper's Java program would have
sent over JDBC.  The output is deterministic and re-parseable by
:mod:`repro.sql.parser` (round-trip property, tested).
"""

from __future__ import annotations

from repro.sql import ast


def format_statement(statement: ast.Statement) -> str:
    """One statement as SQL text (no trailing semicolon)."""
    if isinstance(statement, ast.Select):
        return format_select(statement)
    if isinstance(statement, ast.CreateTable):
        return _format_create_table(statement)
    if isinstance(statement, ast.CreateTableAs):
        return (f"CREATE TABLE {quote_ident(statement.name)} AS "
                f"{format_select(statement.select)}")
    if isinstance(statement, ast.DropTable):
        clause = "IF EXISTS " if statement.if_exists else ""
        return f"DROP TABLE {clause}{quote_ident(statement.name)}"
    if isinstance(statement, ast.CreateIndex):
        columns = ", ".join(quote_ident(c) for c in statement.columns)
        return (f"CREATE INDEX {quote_ident(statement.name)} ON "
                f"{quote_ident(statement.table)} ({columns})")
    if isinstance(statement, ast.DropIndex):
        clause = "IF EXISTS " if statement.if_exists else ""
        return f"DROP INDEX {clause}{quote_ident(statement.name)}"
    if isinstance(statement, ast.InsertValues):
        return _format_insert_values(statement)
    if isinstance(statement, ast.InsertSelect):
        columns = ""
        if statement.columns:
            columns = " (" + ", ".join(quote_ident(c)
                                       for c in statement.columns) + ")"
        return (f"INSERT INTO {quote_ident(statement.table)}{columns} "
                f"{format_select(statement.select)}")
    if isinstance(statement, ast.Update):
        return _format_update(statement)
    if isinstance(statement, ast.Delete):
        where = f" WHERE {format_expr(statement.where)}" \
            if statement.where is not None else ""
        return f"DELETE FROM {_format_table_ref(statement.table)}{where}"
    if isinstance(statement, ast.CreateView):
        return (f"CREATE VIEW {quote_ident(statement.name)} AS "
                f"{format_select(statement.select)}")
    if isinstance(statement, ast.DropView):
        clause = "IF EXISTS " if statement.if_exists else ""
        return f"DROP VIEW {clause}{quote_ident(statement.name)}"
    if isinstance(statement, ast.CreateMaterializedView):
        return (f"CREATE MATERIALIZED VIEW {quote_ident(statement.name)}"
                f" AS {format_select(statement.select)}")
    if isinstance(statement, ast.DropMaterializedView):
        clause = "IF EXISTS " if statement.if_exists else ""
        return (f"DROP MATERIALIZED VIEW {clause}"
                f"{quote_ident(statement.name)}")
    if isinstance(statement, ast.RefreshMaterializedView):
        return (f"REFRESH MATERIALIZED VIEW "
                f"{quote_ident(statement.name)}")
    if isinstance(statement, ast.Explain):
        keyword = "EXPLAIN ANALYZE" if statement.analyze else "EXPLAIN"
        return f"{keyword} {format_statement(statement.statement)}"
    raise TypeError(f"cannot format statement {statement!r}")


def format_script(statements: list[ast.Statement]) -> str:
    """Statements joined with ';' lines."""
    return ";\n".join(format_statement(s) for s in statements) + ";"


# ----------------------------------------------------------------------
def format_select(select: ast.Select) -> str:
    parts = ["SELECT"]
    if select.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_format_select_item(i) for i in select.items))
    if select.from_ is not None:
        parts.append("FROM " + _format_from(select.from_))
    if select.where is not None:
        parts.append("WHERE " + format_expr(select.where))
    if select.group_by:
        parts.append("GROUP BY "
                     + ", ".join(format_expr(e) for e in select.group_by))
    if select.having is not None:
        parts.append("HAVING " + format_expr(select.having))
    if select.order_by:
        rendered = []
        for item in select.order_by:
            suffix = "" if item.ascending else " DESC"
            rendered.append(format_expr(item.expr) + suffix)
        parts.append("ORDER BY " + ", ".join(rendered))
    if select.limit is not None:
        parts.append(f"LIMIT {select.limit}")
    return " ".join(parts)


def _format_select_item(item: ast.SelectItem) -> str:
    rendered = format_expr(item.expr)
    if item.alias:
        return f"{rendered} AS {quote_ident(item.alias)}"
    return rendered


def _format_from(from_: ast.FromClause) -> str:
    parts = [_format_source(from_.first)]
    for join in from_.joins:
        if join.kind == "cross":
            parts.append(", " + _format_source(join.source))
        else:
            keyword = "JOIN" if join.kind == "inner" else "LEFT OUTER JOIN"
            parts.append(f" {keyword} {_format_source(join.source)} "
                         f"ON {format_expr(join.on)}")
    return "".join(parts)


def _format_source(source: ast.FromSource) -> str:
    if isinstance(source, ast.TableRef):
        return _format_table_ref(source)
    return f"({format_select(source.select)}) {quote_ident(source.alias)}"


def _format_table_ref(ref: ast.TableRef) -> str:
    if ref.alias:
        return f"{quote_ident(ref.name)} {quote_ident(ref.alias)}"
    return quote_ident(ref.name)


def _format_create_table(statement: ast.CreateTable) -> str:
    pieces = [f"{quote_ident(c.name)} {c.type_name}"
              for c in statement.columns]
    if statement.primary_key:
        keys = ", ".join(quote_ident(c) for c in statement.primary_key)
        pieces.append(f"PRIMARY KEY ({keys})")
    exists = "IF NOT EXISTS " if statement.if_not_exists else ""
    return (f"CREATE TABLE {exists}{quote_ident(statement.name)} ("
            + ", ".join(pieces) + ")")


def _format_insert_values(statement: ast.InsertValues) -> str:
    columns = ""
    if statement.columns:
        columns = " (" + ", ".join(quote_ident(c)
                                   for c in statement.columns) + ")"
    rows = ", ".join(
        "(" + ", ".join(format_expr(v) for v in row) + ")"
        for row in statement.rows)
    return (f"INSERT INTO {quote_ident(statement.table)}{columns} "
            f"VALUES {rows}")


def _format_update(statement: ast.Update) -> str:
    assignments = ", ".join(
        f"{quote_ident(a.column)} = {format_expr(a.value)}"
        for a in statement.assignments)
    text = (f"UPDATE {_format_table_ref(statement.table)} "
            f"SET {assignments}")
    if statement.from_tables:
        text += " FROM " + ", ".join(_format_table_ref(t)
                                     for t in statement.from_tables)
    if statement.where is not None:
        text += f" WHERE {format_expr(statement.where)}"
    return text


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
def format_expr(expr: ast.Expr) -> str:
    if isinstance(expr, ast.Literal):
        return _format_literal(expr.value)
    if isinstance(expr, ast.ColumnRef):
        if expr.table:
            return f"{quote_ident(expr.table)}.{quote_ident(expr.name)}"
        return quote_ident(expr.name)
    if isinstance(expr, ast.Star):
        return f"{quote_ident(expr.table)}.*" if expr.table else "*"
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "NOT":
            return f"NOT {_maybe_paren(expr.operand)}"
        # Always parenthesize the operand: "-(-1)" would otherwise
        # render as "--1" (a comment), and "-0" would re-parse as the
        # folded literal 0.
        return f"-({format_expr(expr.operand)})"
    if isinstance(expr, ast.BinaryOp):
        return (f"{_maybe_paren(expr.left)} {expr.op} "
                f"{_maybe_paren(expr.right)}")
    if isinstance(expr, ast.IsNull):
        negation = "NOT " if expr.negated else ""
        return f"{_maybe_paren(expr.operand)} IS {negation}NULL"
    if isinstance(expr, ast.InList):
        items = ", ".join(format_expr(i) for i in expr.items)
        negation = "NOT " if expr.negated else ""
        return f"{_maybe_paren(expr.operand)} {negation}IN ({items})"
    if isinstance(expr, ast.CaseWhen):
        parts = ["CASE"]
        for condition, result in expr.whens:
            parts.append(f"WHEN {format_expr(condition)} "
                         f"THEN {format_expr(result)}")
        if expr.else_ is not None:
            parts.append(f"ELSE {format_expr(expr.else_)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(expr, ast.Cast):
        return f"CAST({format_expr(expr.operand)} AS {expr.type_name})"
    if isinstance(expr, ast.FuncCall):
        return _format_func(expr)
    if isinstance(expr, ast.Cube):
        columns = ", ".join(format_expr(e) for e in expr.exprs)
        return f"CUBE ({columns})"
    if isinstance(expr, ast.Rollup):
        columns = ", ".join(format_expr(e) for e in expr.exprs)
        return f"ROLLUP ({columns})"
    if isinstance(expr, ast.GroupingSets):
        sets = ", ".join(
            "(" + ", ".join(format_expr(e) for e in gset) + ")"
            for gset in expr.sets)
        return f"GROUPING SETS ({sets})"
    raise TypeError(f"cannot format expression {expr!r}")


def _format_func(expr: ast.FuncCall) -> str:
    inner = []
    if expr.distinct:
        inner.append("DISTINCT")
    inner.append(", ".join(format_expr(a) for a in expr.args))
    if expr.by_columns:
        inner.append("BY " + ", ".join(format_expr(c)
                                       for c in expr.by_columns))
    if expr.default is not None:
        inner.append("DEFAULT " + format_expr(expr.default))
    rendered = f"{expr.name}({' '.join(p for p in inner if p)})"
    if expr.over is not None:
        if expr.over.partition_by:
            partition = ", ".join(format_expr(e)
                                  for e in expr.over.partition_by)
            rendered += f" OVER (PARTITION BY {partition})"
        else:
            rendered += " OVER ()"
    return rendered


def _maybe_paren(expr: ast.Expr) -> str:
    """Parenthesize compound sub-expressions; the emitter does not track
    precedence, so explicit parentheses keep round-trips exact."""
    if isinstance(expr, (ast.BinaryOp, ast.UnaryOp, ast.InList,
                         ast.IsNull)):
        return f"({format_expr(expr)})"
    return format_expr(expr)


_IDENT_SAFE = set("abcdefghijklmnopqrstuvwxyz"
                  "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_$")

_RESERVED = frozenset({
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "AND",
    "OR", "NOT", "NULL", "CASE", "WHEN", "THEN", "ELSE", "END", "JOIN",
    "LEFT", "INNER", "OUTER", "ON", "AS", "INSERT", "INTO", "VALUES",
    "UPDATE", "SET", "DELETE", "CREATE", "TABLE", "INDEX", "DROP",
    "PRIMARY", "KEY", "DISTINCT", "DEFAULT", "OVER", "PARTITION",
    "BETWEEN", "IN", "IS", "LIMIT", "CAST", "TRUE", "FALSE", "UNION"})


def quote_ident(name: str) -> str:
    """Quote an identifier when it is not a plain safe name."""
    if (name and name[0].isalpha() or name.startswith("_")) \
            and all(ch in _IDENT_SAFE for ch in name) \
            and name.upper() not in _RESERVED:
        return name
    return '"' + name.replace('"', '""') + '"'


def _format_literal(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, float):
        return repr(value)
    return str(value)
