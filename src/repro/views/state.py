"""Materialized-view definitions and per-group aggregate state.

A materialized percentage view keeps, for each *group level* it needs,
a base-row-aligned group-id array plus per-slot membership counts and
partial-aggregate values.  Slots are append-only: a group that loses
its last member row is retracted (removed from the key index, count
pinned at zero) but its slot number is never reused, so stale
references cannot alias a new group.

Levels per view kind:

* **plain** group-by -- one level keyed by the GROUP BY columns, one
  measure per aggregate select item.
* **vertical** (``Vpct``) -- one fine level keyed by the full GROUP BY;
  per term either the fine ``sum`` (Vpct numerators; coarse
  denominators are re-accumulated from the fine sums at derive time,
  replicating the engine's fj lattice) or the plain aggregate.
* **horizontal** (``Hpct``/``Hagg``) -- a coarse level keyed by the
  GROUP BY (row denominators and plain terms) plus one fine level per
  distinct ``BY`` column set (cell numerators; slot liveness doubles
  as the "combination has rows" predicate of the paper's CASE cells).

NULL group keys are first-class: a key component of ``None`` is a real
slot key (SQL GROUP BY groups NULLs together), and NaN is mapped to a
module sentinel because ``float('nan') != float('nan')`` would
otherwise split one group per row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.core import common, model
from repro.core import validate as validate_mod
from repro.engine.types import SQLType
from repro.errors import MaterializedViewError
from repro.sql import ast
from repro.sql.formatter import format_select

PLAIN = "plain"
VERTICAL = "vertical"
HORIZONTAL = "horizontal"


class _NanKey:
    """Dictionary-stable stand-in for NaN group-key components."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NaN"


NAN_KEY = _NanKey()


def normalize_component(value: Any) -> Any:
    """A hashable, self-equal form of one key component."""
    if isinstance(value, float) and value != value:
        return NAN_KEY
    return value


def normalize_key(values: tuple) -> tuple:
    return tuple(normalize_component(v) for v in values)


def sort_component(value: Any) -> tuple:
    """Mirror the engine's encoded order: NULL first, NaN last.

    :func:`repro.engine.groupby.encode_column` gives NULL code 0 and
    ranks non-NULL values by ``np.unique`` (ascending, NaN sorted
    last), so derived result rows ordered by these tuples match the
    executor's factorize order and ``ORDER BY`` output exactly.
    """
    if value is None:
        return (0, 0)
    if value is NAN_KEY or (isinstance(value, float) and value != value):
        return (2, 0)
    return (1, value)


def sort_key(values: tuple) -> tuple:
    return tuple(sort_component(v) for v in values)


# ----------------------------------------------------------------------
# State layout
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MeasureSpec:
    """One partial aggregate maintained at a level."""

    func: str                       # count/sum/avg/min/max/var/stdev
    argument: Optional[ast.Expr]    # None => count(*)
    distinct: bool = False


class GroupLevel:
    """Per-group state for one key set.

    ``group_ids`` is aligned with the base table's rows; ``-1`` marks
    rows failing the view's WHERE clause.  ``slots`` maps normalized
    key tuples to slot numbers; ``keys``/``counts``/``values`` are
    indexed by slot (``values`` holds one native-Python value, or
    ``None`` for SQL NULL, per measure per slot).
    """

    __slots__ = ("columns", "measures", "measure_types", "group_ids",
                 "slots", "keys", "counts", "values")

    def __init__(self, columns: tuple[str, ...],
                 measures: tuple[MeasureSpec, ...]):
        self.columns = tuple(columns)
        self.measures = tuple(measures)
        self.measure_types: list[Optional[SQLType]] = \
            [None] * len(measures)
        self.group_ids = np.empty(0, dtype=np.int64)
        self.slots: dict[tuple, int] = {}
        self.keys: list[tuple] = []
        self.counts: list[int] = []
        self.values: list[list[Any]] = [[] for _ in measures]

    @property
    def n_slots(self) -> int:
        return len(self.keys)

    def live_slots(self) -> list[int]:
        return list(self.slots.values())

    def ordered_slots(self) -> list[int]:
        """Live slots in the engine's result-row order."""
        return sorted(self.slots.values(),
                      key=lambda s: sort_key(self.keys[s]))

    def clone(self) -> "GroupLevel":
        """A maintenance working copy; shared immutables stay shared.

        ``group_ids`` is shared by reference -- every maintenance path
        replaces it wholesale (concatenate/filter/copy-then-assign),
        never mutates the published array in place.
        """
        twin = GroupLevel.__new__(GroupLevel)
        twin.columns = self.columns
        twin.measures = self.measures
        twin.measure_types = list(self.measure_types)
        twin.group_ids = self.group_ids
        twin.slots = dict(self.slots)
        twin.keys = list(self.keys)
        twin.counts = list(self.counts)
        twin.values = [list(v) for v in self.values]
        return twin


class ViewState:
    """All levels of one view plus derive caches.

    The caches (last derived result, its slot-to-row map, discovered
    BY combinations) let delta maintenance patch only changed result
    rows; they are replaced -- never mutated -- alongside the state.
    """

    __slots__ = ("levels", "n_rows", "result", "row_of_slot", "combos")

    def __init__(self, levels: list[GroupLevel]):
        self.levels = levels
        self.n_rows = 0
        self.result = None           # Table of the last derive
        self.row_of_slot: Optional[dict[int, int]] = None
        self.combos: Optional[list[list[tuple]]] = None

    def clone(self) -> "ViewState":
        twin = ViewState([level.clone() for level in self.levels])
        twin.n_rows = self.n_rows
        twin.result = self.result
        twin.row_of_slot = self.row_of_slot
        twin.combos = self.combos
        return twin


@dataclass
class DeltaInfo:
    """What one maintenance step touched, per level."""

    touched: list[list[int]]
    births: list[bool]
    deaths: list[bool]

    def primary_stable(self) -> bool:
        return not (self.births[0] or self.deaths[0])

    def fine_stable(self) -> bool:
        return not (any(self.births[1:]) or any(self.deaths[1:]))


# ----------------------------------------------------------------------
# Definition analysis
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class VTermPlan:
    """Derive plan for one term of a vertical (Vpct) view."""

    position: int                   # index into query.terms
    name: str                       # FV output column
    out_type: SQLType               # FV column type (Vpct -> REAL)
    is_vpct: bool
    totals: tuple[str, ...] = ()    # denominator key (group_by - by)


@dataclass(frozen=True)
class HTermPlan:
    """Derive plan for one term of a horizontal (Hpct/Hagg) view."""

    position: int
    kind: str                       # model.VERTICAL / HPCT / HAGG
    func: str
    out_type: SQLType               # declared FH cell type
    by_columns: tuple[str, ...] = ()
    coarse_measure: Optional[int] = None   # denominator / plain agg
    level: Optional[int] = None            # fine level index in state
    fine_measure: Optional[int] = None
    default: Optional[Any] = None


@dataclass(frozen=True)
class ViewDefinition:
    """Everything data-independent about one materialized view."""

    name: str
    select: ast.Select
    sql: str                        # canonical format_select text
    kind: str                       # PLAIN / VERTICAL / HORIZONTAL
    base_table: str                 # lower-case catalog key
    binding: str                    # alias or table name for evaluation
    group_by: tuple[str, ...]
    key_types: tuple[SQLType, ...]
    where: Optional[ast.Expr] = None
    max_name_length: int = 128
    # plain views: select items as ("key", key index) / ("agg",
    # measure index), plus precomputed deduped output names.
    plain_items: tuple[tuple[str, int], ...] = ()
    plain_names: tuple[str, ...] = ()
    # vertical views: one plan per term (term order) and the fj
    # lattice: (vplan index, source vplan index or None) in the
    # engine's generation order.
    vplans: tuple[VTermPlan, ...] = ()
    lattice: tuple[tuple[int, Optional[int]], ...] = ()
    # horizontal views.
    hplans: tuple[HTermPlan, ...] = ()
    by_sets: tuple[tuple[str, ...], ...] = ()
    multiple: bool = False
    query: Optional[model.PercentageQuery] = field(default=None,
                                                   compare=False)

    def level_specs(self) -> list[tuple[tuple[str, ...],
                                        tuple[MeasureSpec, ...]]]:
        """(columns, measures) per level; index 0 is the primary."""
        if self.kind == PLAIN:
            measures = tuple(
                _plain_measures(self.select))
            return [(self.group_by, measures)]
        if self.kind == VERTICAL:
            measures = []
            for term in self.query.terms:
                if term.kind == model.VPCT:
                    measures.append(MeasureSpec("sum", term.argument))
                else:
                    measures.append(MeasureSpec(
                        term.func, term.argument, term.distinct))
            return [(self.group_by, tuple(measures))]
        # Horizontal: coarse denominators/plain terms + one fine level
        # per BY set.
        coarse: list[MeasureSpec] = []
        fine: dict[tuple[str, ...], list[MeasureSpec]] = \
            {by: [] for by in self.by_sets}
        for plan in self.hplans:
            term = self.query.terms[plan.position]
            if plan.kind == model.HPCT:
                coarse.append(MeasureSpec("sum", term.argument))
                fine[plan.by_columns].append(
                    MeasureSpec("sum", term.argument))
            elif plan.kind == model.HAGG:
                fine[plan.by_columns].append(MeasureSpec(
                    term.func, term.argument, term.distinct))
            else:
                coarse.append(MeasureSpec(
                    term.func, term.argument, term.distinct))
        levels = [(self.group_by, tuple(coarse))]
        for by in self.by_sets:
            levels.append((self.group_by + by, tuple(fine[by])))
        return levels


def _plain_measures(select: ast.Select) -> list[MeasureSpec]:
    measures = []
    for item in select.items:
        if isinstance(item.expr, ast.FuncCall):
            call = item.expr
            if call.args and isinstance(call.args[0], ast.Star):
                measures.append(MeasureSpec("count", None))
            else:
                measures.append(MeasureSpec(
                    call.name, call.args[0], call.distinct))
    return measures


def _reject(condition: bool, why: str) -> None:
    if condition:
        raise MaterializedViewError(
            f"unsupported materialized-view definition: {why}")


def analyze_view(catalog, name: str, select: ast.Select
                 ) -> ViewDefinition:
    """Classify and pre-plan a CREATE MATERIALIZED VIEW definition.

    Raises :class:`~repro.errors.MaterializedViewError` for anything
    the delta-maintenance engine cannot keep exactly equal to a
    from-scratch recompute (joins, subqueries, HAVING/ORDER BY/LIMIT/
    DISTINCT, expression group keys, empty GROUP BY).
    """
    _reject(select.from_ is None, "a FROM clause is required")
    _reject(bool(select.from_.joins), "joins are not supported")
    _reject(not isinstance(select.from_.first, ast.TableRef),
            "subquery sources are not supported")
    ref = select.from_.first
    base = catalog.table(ref.name)   # raises CatalogError if missing
    _reject(catalog.has_view(ref.name),
            "the base must be a table, not a view")
    _reject(ast.has_grouping_sets(select),
            "CUBE/ROLLUP/GROUPING SETS cannot be incrementally "
            "maintained (grouping-set lattices are computed per query "
            "by the shared-scan operator)")
    _reject(any(not isinstance(item.expr, ast.Star)
                and ast.contains_grouping_func(item.expr)
                for item in select.items),
            "grouping()/pct() are not supported")
    _reject(select.distinct, "DISTINCT is not supported")
    _reject(select.having is not None, "HAVING is not supported")
    _reject(bool(select.order_by), "ORDER BY is not supported")
    _reject(select.limit is not None, "LIMIT is not supported")
    _reject(not select.group_by, "a non-empty GROUP BY is required")
    if select.where is not None:
        _reject(ast.contains_aggregate(select.where),
                "aggregates in WHERE are not supported")

    sql = format_select(select)
    is_percentage = any(
        isinstance(item.expr, ast.FuncCall)
        and (item.expr.name in ("vpct", "hpct") or item.expr.by_columns)
        for item in select.items)
    if is_percentage:
        return _analyze_percentage(catalog, name, select, sql, ref,
                                   base)
    return _analyze_plain(catalog, name, select, sql, ref, base)


def _key_types(base, group_by) -> tuple[SQLType, ...]:
    types = []
    for column in group_by:
        _reject(not base.schema.has_column(column),
                f"no column {column!r} in table {base.name!r}")
        types.append(base.schema.column_type(column))
    return tuple(types)


class _SchemaShim:
    """Just enough of the Database surface for infer_expr_type."""

    def __init__(self, catalog):
        self._catalog = catalog

    def table(self, name: str):
        return self._catalog.table(name)


def _analyze_percentage(catalog, name, select, sql, ref, base
                        ) -> ViewDefinition:
    query = model.build_percentage_query(select, sql)
    validate_mod.validate(query)
    _reject(query.source_select is not None,
            "multi-table percentage sources are not supported")
    _reject(ref.alias is not None,
            "aliased percentage sources are not supported")
    group_by = tuple(query.group_by)
    key_types = _key_types(base, group_by)
    shim = _SchemaShim(catalog)
    kind = VERTICAL if query.has_vertical_pct else HORIZONTAL
    if kind == VERTICAL:
        vplans, lattice = _plan_vertical(shim, query)
        return ViewDefinition(
            name=name, select=select, sql=sql, kind=kind,
            base_table=query.table.lower(), binding=ref.binding,
            group_by=group_by, key_types=key_types, where=query.where,
            max_name_length=catalog.max_name_length, vplans=vplans,
            lattice=lattice, query=query)
    hplans, by_sets = _plan_horizontal(shim, query)
    return ViewDefinition(
        name=name, select=select, sql=sql, kind=kind,
        base_table=query.table.lower(), binding=ref.binding,
        group_by=group_by, key_types=key_types, where=query.where,
        max_name_length=catalog.max_name_length, hplans=hplans,
        by_sets=by_sets,
        multiple=len(query.horizontal_terms()) > 1, query=query)


def _plan_vertical(shim, query) -> tuple[tuple[VTermPlan, ...],
                                         tuple[tuple[int,
                                                     Optional[int]],
                                               ...]]:
    """Mirror generate_vertical's naming, typing and fj lattice."""
    used = {c.lower() for c in query.group_by}
    plans = []
    for position, term in enumerate(query.terms):
        column = common.vertical_term_name(term, used)
        if term.kind == model.VPCT:
            # _totals_of: GROUP BY minus BY; no BY => global totals.
            if term.by_columns:
                by = set(term.by_columns)
                totals = tuple(c for c in query.group_by
                               if c not in by)
            else:
                totals = ()
            plans.append(VTermPlan(position, column, SQLType.REAL,
                                   True, totals))
        else:
            if term.argument is not None:
                arg_type = common.infer_expr_type(
                    shim, query.table, term.argument)
                out = common.storage_type(term.func, arg_type)
            else:
                out = SQLType.INTEGER
            plans.append(VTermPlan(position, column, out, False))
    # fj generation order: Vpct plans by descending totals arity
    # (stable), each sourcing the smallest already-generated plan with
    # an AST-equal argument and strictly finer totals -- so coarse
    # denominators accumulate finer denominators in exactly the
    # engine's float addend order.
    vpct = [i for i, p in enumerate(plans) if p.is_vpct]
    order = sorted(vpct, key=lambda i: -len(plans[i].totals))
    lattice = []
    generated: list[int] = []
    for i in order:
        source: Optional[int] = None
        for j in generated:
            if query.terms[j].argument != query.terms[i].argument:
                continue
            if not set(plans[i].totals) < set(plans[j].totals):
                continue
            if source is None or \
                    len(plans[j].totals) < len(plans[source].totals):
                source = j
        lattice.append((i, source))
        generated.append(i)
    return tuple(plans), tuple(lattice)


def _plan_horizontal(shim, query) -> tuple[tuple[HTermPlan, ...],
                                           tuple[tuple[str, ...],
                                                 ...]]:
    """Mirror the direct (source=F) horizontal strategy's cells."""
    by_sets: list[tuple[str, ...]] = []
    coarse = 0
    fine_counts: dict[tuple[str, ...], int] = {}
    plans = []
    for position, term in enumerate(query.terms):
        if term.is_horizontal:
            by = tuple(term.by_columns)
            if by not in fine_counts:
                fine_counts[by] = 0
                by_sets.append(by)
            level = by_sets.index(by) + 1
            fine_measure = fine_counts[by]
            fine_counts[by] += 1
            if term.kind == model.HPCT:
                plans.append(HTermPlan(
                    position, term.kind, term.func, SQLType.REAL,
                    by_columns=by, coarse_measure=coarse, level=level,
                    fine_measure=fine_measure))
                coarse += 1
            else:
                if term.func == "count":
                    out = SQLType.INTEGER
                else:
                    arg_type = common.infer_expr_type(
                        shim, query.table, term.argument)
                    out = arg_type if term.func in ("min", "max") \
                        else SQLType.REAL
                plans.append(HTermPlan(
                    position, term.kind, term.func, out,
                    by_columns=by, level=level,
                    fine_measure=fine_measure, default=term.default))
        else:
            if term.argument is None or term.func == "count":
                out = SQLType.INTEGER
            else:
                arg_type = common.infer_expr_type(
                    shim, query.table, term.argument)
                out = arg_type if term.func in ("min", "max") \
                    else SQLType.REAL
            plans.append(HTermPlan(position, term.kind, term.func,
                                   out, coarse_measure=coarse))
            coarse += 1
    return tuple(plans), tuple(by_sets)


def _analyze_plain(catalog, name, select, sql, ref, base
                   ) -> ViewDefinition:
    group_by: list[str] = []
    for expr in select.group_by:
        _reject(not isinstance(expr, ast.ColumnRef),
                "GROUP BY must list plain columns")
        group_by.append(expr.name.lower())
    group_set = set(group_by)
    items: list[tuple[str, int]] = []
    measure = 0
    for item in select.items:
        expr = item.expr
        if isinstance(expr, ast.ColumnRef):
            _reject(expr.name.lower() not in group_set,
                    f"select column {expr.name!r} is not grouped")
            items.append(("key", group_by.index(expr.name.lower())))
        elif isinstance(expr, ast.FuncCall):
            _reject(expr.name not in ast.AGGREGATE_NAMES,
                    f"{expr.name}() is not a plain aggregate")
            _reject(bool(expr.by_columns) or expr.default is not None
                    or expr.over is not None,
                    "extended aggregate syntax is not supported")
            if expr.args and isinstance(expr.args[0], ast.Star):
                _reject(expr.name != "count",
                        f"{expr.name}(*) is not supported")
            else:
                _reject(len(expr.args) != 1,
                        f"{expr.name}() needs exactly one argument")
                _reject(ast.contains_aggregate(expr.args[0]),
                        "nested aggregates are not supported")
            _reject(expr.distinct and expr.name != "count",
                    "DISTINCT is only supported with count")
            items.append(("agg", measure))
            measure += 1
        else:
            _reject(True, "select items must be group columns or "
                          "aggregate calls")
    key_types = _key_types(base, tuple(group_by))
    # Output names mirror the executor's _output_name/_dedupe_names.
    from repro.engine.executor import _dedupe_names, _output_name
    raw = [(_output_name(item, i), None)
           for i, item in enumerate(select.items)]
    names = tuple(n for n, _ in _dedupe_names(raw))
    return ViewDefinition(
        name=name, select=select, sql=sql, kind=PLAIN,
        base_table=ref.name.lower(), binding=ref.binding,
        group_by=tuple(group_by), key_types=key_types,
        where=select.where, max_name_length=catalog.max_name_length,
        plain_items=tuple(items), plain_names=names)


# ----------------------------------------------------------------------
# The catalog object
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MaterializedView:
    """One published materialized view.

    Immutable: maintenance builds a *new* MaterializedView around
    cloned state and publishes it atomically with the base table, so a
    catalog savepoint rollback restores a (table, view) pair whose
    ``base_version`` match holds by construction.
    """

    definition: ViewDefinition
    state: ViewState
    result: "Table"                 # noqa: F821 - engine Table
    base_version: int

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def key(self) -> str:
        return self.definition.name.lower()

    def fresh(self, base_table) -> bool:
        return self.base_version == base_table.version
