"""Invalidation semantics: DROP TABLE cascades to dependent views,
savepoint rollback restores (table, view) pairs atomically, and a raw
catalog replace leaves the view honestly stale until the next read
refreshes it."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.execute import run_percentage_query
from repro.core.vertical import VerticalStrategy
from repro.errors import CatalogError
from repro.fuzz.views import table_diff

VPCT = "SELECT d1, d2, Vpct(a BY d2) FROM f GROUP BY d1, d2"
PLAIN = "SELECT d1, sum(a), count(*) FROM f GROUP BY d1"


def _recompute(db, sql=VPCT):
    return run_percentage_query(db, sql, strategy=VerticalStrategy(),
                                use_views=False)


class TestDropCascade:
    def test_drop_table_drops_dependent_views(self, db):
        db.execute(f"CREATE MATERIALIZED VIEW v AS {VPCT}")
        db.execute(f"CREATE MATERIALIZED VIEW w AS {PLAIN}")
        db.execute("DROP TABLE f")
        assert not db.catalog.has_matview("v")
        assert not db.catalog.has_matview("w")
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM v")

    def test_unrelated_view_survives_drop(self, db):
        db.execute("CREATE TABLE g (k INT, b REAL)")
        db.execute("INSERT INTO g VALUES (1, 2.0)")
        db.execute(f"CREATE MATERIALIZED VIEW v AS {PLAIN}")
        db.execute("CREATE MATERIALIZED VIEW w AS "
                   "SELECT k, sum(b) FROM g GROUP BY k")
        db.execute("DROP TABLE g")
        assert db.catalog.has_matview("v")
        assert not db.catalog.has_matview("w")


class TestSavepointRollback:
    def test_rollback_restores_table_and_view_together(self, db):
        db.execute(f"CREATE MATERIALIZED VIEW v AS {VPCT}")
        before = db.execute(VPCT)
        fingerprint = db.catalog.fingerprint()

        savepoint = db.catalog.savepoint()
        db.execute("DELETE FROM f WHERE d1 = 1")
        db.execute("INSERT INTO f VALUES (9, 'z', 4.0)")
        db.catalog.rollback(savepoint)

        # The rolled-back view is the pre-savepoint object: fresh
        # against the restored table, never served stale.
        assert db.catalog.fingerprint() == fingerprint
        mv = db.catalog.matview("v")
        assert mv.fresh(db.catalog.table("f"))
        difference = table_diff(before, db.execute(VPCT))
        assert difference is None, difference
        assert db.stats.registry.value("view_refreshes_total",
                                       view="v", mode="full") == 0

    def test_rollback_discards_a_view_created_inside(self, db):
        savepoint = db.catalog.savepoint()
        db.execute(f"CREATE MATERIALIZED VIEW v AS {PLAIN}")
        db.catalog.rollback(savepoint)
        assert not db.catalog.has_matview("v")


class TestStaleServe:
    def test_raw_replace_goes_stale_then_refreshes_on_read(self, db):
        db.execute(f"CREATE MATERIALIZED VIEW v AS {VPCT}")
        db.execute(VPCT)  # one fresh hit

        # A raw catalog replace (no maintenance hook) is the one way a
        # base table can move under a view: the view must go honestly
        # stale, and the next read must refresh (mode=full) and serve
        # the recomputed rows.
        table = db.catalog.table("f")
        keep = np.ones(table.n_rows, dtype=bool)
        keep[0] = False
        db.catalog.replace_table(table.filter(keep))
        mv = db.catalog.matview("v")
        assert not mv.fresh(db.catalog.table("f"))
        (line,), *_ = db.query(f"EXPLAIN {VPCT}")
        assert "(stale@" in line

        served = db.execute(VPCT)
        difference = table_diff(_recompute(db), served)
        assert difference is None, difference
        registry = db.stats.registry
        assert registry.value("view_refreshes_total", view="v",
                              mode="full") == 1
        assert db.catalog.matview("v").fresh(db.catalog.table("f"))
        (line,), *_ = db.query(f"EXPLAIN {VPCT}")
        assert "(fresh@" in line
