"""Property-based round-trip tests: format(parse(format(ast))) is
stable and parsing the formatted text reproduces the same AST."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import ast
from repro.sql.formatter import format_expr, format_statement
from repro.sql.parser import parse_expression, parse_statement

IDENT = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s.upper() not in {
        "AND", "OR", "NOT", "IN", "IS", "NULL", "CASE", "WHEN", "THEN",
        "ELSE", "END", "AS", "BY", "ON", "SELECT", "FROM", "WHERE",
        "GROUP", "HAVING", "ORDER", "LIMIT", "TRUE", "FALSE", "BETWEEN",
        "CAST", "OVER", "DEFAULT", "DISTINCT", "JOIN", "LEFT", "INNER",
        "OUTER", "SET", "VALUES", "KEY", "INTO", "ABS", "SUM", "COUNT",
        "MIN", "MAX", "AVG", "ROUND", "FLOOR", "CEIL", "COALESCE",
        "NULLIF", "VPCT", "HPCT", "LIKE", "ALL", "IF", "EXISTS",
        "TABLE", "INDEX", "CREATE", "DROP", "INSERT", "UPDATE",
        "DELETE", "PRIMARY", "ASC", "DESC", "UNION", "LIMIT"})

LITERALS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(alphabet=st.characters(blacklist_categories=("Cs",),
                                   blacklist_characters="\n\r"),
            max_size=12),
).map(ast.Literal)

COLUMNS = st.one_of(
    IDENT.map(ast.ColumnRef),
    st.tuples(IDENT, IDENT).map(
        lambda pair: ast.ColumnRef(pair[0], table=pair[1])))


def expressions(depth=3):
    if depth == 0:
        return st.one_of(LITERALS, COLUMNS)
    sub = expressions(depth - 1)
    return st.one_of(
        LITERALS,
        COLUMNS,
        st.tuples(st.sampled_from(["+", "-", "*", "/", "=", "<>", "<",
                                   "<=", ">", ">=", "AND", "OR"]),
                  sub, sub).map(lambda t: ast.BinaryOp(*t)),
        st.tuples(st.sampled_from(["-", "NOT"]), sub).map(
            lambda t: ast.UnaryOp(*t)),
        st.tuples(sub, st.booleans()).map(
            lambda t: ast.IsNull(*t)),
        st.tuples(sub, st.lists(LITERALS, min_size=1, max_size=3),
                  st.booleans()).map(
            lambda t: ast.InList(t[0], tuple(t[1]), t[2])),
        st.tuples(st.lists(st.tuples(sub, sub), min_size=1,
                           max_size=3),
                  st.one_of(st.none(), sub)).map(
            lambda t: ast.CaseWhen(tuple(t[0]), t[1])),
        st.tuples(st.sampled_from(["sum", "count", "min", "max",
                                   "avg"]), sub).map(
            lambda t: ast.FuncCall(t[0], (t[1],))),
    )


@given(expressions())
@settings(max_examples=120, deadline=None)
def test_expression_roundtrip(expr):
    rendered = format_expr(expr)
    reparsed = parse_expression(rendered)
    assert format_expr(reparsed) == rendered


@given(st.lists(st.tuples(COLUMNS, st.one_of(st.none(), IDENT)),
                min_size=1, max_size=4),
       IDENT,
       st.lists(COLUMNS, min_size=0, max_size=2))
@settings(max_examples=60, deadline=None)
def test_select_roundtrip(items, table, group_by):
    select = ast.Select(
        items=tuple(ast.SelectItem(e, a) for e, a in items),
        from_=ast.FromClause(ast.TableRef(table)),
        group_by=tuple(group_by))
    rendered = format_statement(select)
    reparsed = parse_statement(rendered)
    assert format_statement(reparsed) == rendered


@given(st.lists(st.tuples(IDENT, st.sampled_from(
    ["INT", "REAL", "VARCHAR"])), min_size=1, max_size=5,
    unique_by=lambda t: t[0]))
@settings(max_examples=60, deadline=None)
def test_create_table_roundtrip(columns):
    statement = ast.CreateTable(
        "t", tuple(ast.ColumnSpec(n, tn) for n, tn in columns),
        primary_key=(columns[0][0],))
    rendered = format_statement(statement)
    reparsed = parse_statement(rendered)
    assert format_statement(reparsed) == rendered


@given(st.lists(LITERALS, min_size=1, max_size=4))
@settings(max_examples=60, deadline=None)
def test_insert_values_roundtrip(row):
    statement = ast.InsertValues("t", (tuple(row),))
    rendered = format_statement(statement)
    reparsed = parse_statement(rendered)
    assert format_statement(reparsed) == rendered
