"""Unit tests for the strategy chooser (the paper's recommendations)."""

import pytest

from repro.core.model import parse_percentage_query
from repro.core.optimizer import (choose_horizontal_strategy,
                                  choose_vertical_strategy,
                                  column_cardinality)


@pytest.fixture
def wide_db(db):
    rows = []
    for i in range(200):
        rows.append((i, i % 3, i % 100, float(i)))
    db.load_table("f", [("rid", "int"), ("low", "int"),
                        ("high", "int"), ("m", "real")], rows)
    return db


class TestVerticalChoice:
    def test_recommended_defaults(self, wide_db):
        query = parse_percentage_query(
            "SELECT low, Vpct(m) FROM f GROUP BY low")
        strategy = choose_vertical_strategy(wide_db, query)
        assert strategy.fj_from_fk
        assert not strategy.use_update
        assert strategy.create_indexes
        assert strategy.matching_indexes


class TestHorizontalChoice:
    def test_low_selectivity_uses_direct(self, wide_db):
        query = parse_percentage_query(
            "SELECT Hpct(m BY low) FROM f")
        strategy = choose_horizontal_strategy(wide_db, query)
        assert strategy.source == "F"

    def test_high_selectivity_uses_fv(self, wide_db):
        query = parse_percentage_query(
            "SELECT Hpct(m BY high) FROM f")
        strategy = choose_horizontal_strategy(wide_db, query)
        assert strategy.source == "FV"

    def test_three_by_columns_use_fv(self, wide_db):
        query = parse_percentage_query(
            "SELECT sum(m BY low, high, rid) FROM f")
        strategy = choose_horizontal_strategy(wide_db, query)
        assert strategy.source == "FV"

    def test_threshold_parameter(self, wide_db):
        query = parse_percentage_query(
            "SELECT Hpct(m BY low) FROM f")
        strategy = choose_horizontal_strategy(wide_db, query,
                                              threshold=2)
        assert strategy.source == "FV"

    def test_count_distinct_forces_direct(self, wide_db):
        query = parse_percentage_query(
            "SELECT count(DISTINCT rid BY high) FROM f")
        strategy = choose_horizontal_strategy(wide_db, query)
        assert strategy.source == "F"


class TestCardinalityProbe:
    def test_counts_distinct(self, wide_db):
        query = parse_percentage_query(
            "SELECT Hpct(m BY low) FROM f")
        assert column_cardinality(wide_db, query, "low") == 3
        assert column_cardinality(wide_db, query, "high") == 100

    def test_missing_table_is_zero(self, db):
        query = parse_percentage_query(
            "SELECT Hpct(m BY low) FROM ghost")
        assert column_cardinality(db, query, "low") == 0
