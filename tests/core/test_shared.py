"""Unit tests for the shared-summary batch evaluator (paper Section 6
future work) and the lattice-aware Fj reuse."""

import pytest

from repro import Database
from repro.core import generate_plan, run_percentage_query
from repro.core.shared import run_percentage_batch
from repro.datagen import load_transaction_line


@pytest.fixture(scope="module")
def tdb():
    db = Database(keep_history=True)
    load_transaction_line(db, 10_000)
    return db


BATCH = [
    "SELECT regionid, dayofweekno, Vpct(salesamt BY dayofweekno) "
    "FROM transactionline GROUP BY regionid, dayofweekno",
    "SELECT regionid, Hpct(salesamt BY monthno) FROM transactionline "
    "GROUP BY regionid",
    "SELECT monthno, sum(salesamt BY regionid), count(1 BY regionid) "
    "FROM transactionline GROUP BY monthno",
]


class TestSharedSummaries:
    def test_results_match_individual_runs(self, tdb):
        report = run_percentage_batch(tdb, BATCH)
        assert report.shared_groups == 1
        assert report.fallback_queries == 0
        for sql, got in zip(BATCH, report.results):
            want = run_percentage_query(tdb, sql)
            assert got.column_names() == want.column_names()
            for a, b in zip(got.to_rows(), want.to_rows()):
                assert a == pytest.approx(b, nan_ok=True)

    def test_scans_fact_table_once(self, tdb):
        tdb.stats.reset()
        run_percentage_batch(tdb, BATCH)
        batch_scans = tdb.stats.rows_scanned
        tdb.stats.reset()
        for sql in BATCH:
            run_percentage_query(tdb, sql)
        separate_scans = tdb.stats.rows_scanned
        assert batch_scans < separate_scans / 2

    def test_summary_dropped_by_default(self, tdb):
        run_percentage_batch(tdb, BATCH)
        assert not any(t.startswith("_shared")
                       for t in tdb.table_names())

    def test_keep_summaries(self, tdb):
        report = run_percentage_batch(tdb, BATCH, keep_summaries=True)
        assert any(t.startswith("_shared") for t in tdb.table_names())
        for table in report.summary_rows:
            tdb.drop_table(table)

    def test_avg_falls_back(self, tdb):
        queries = BATCH[:1] + [
            "SELECT regionid, avg(salesamt BY monthno) "
            "FROM transactionline GROUP BY regionid"]
        report = run_percentage_batch(tdb, queries)
        assert report.fallback_queries >= 1
        want = run_percentage_query(tdb, queries[1])
        assert report.results[1].to_rows() == want.to_rows()

    def test_single_query_runs_directly(self, tdb):
        report = run_percentage_batch(tdb, BATCH[:1])
        assert report.shared_groups == 0
        assert report.fallback_queries == 1

    def test_different_filters_do_not_share(self, tdb):
        queries = [
            "SELECT regionid, Vpct(salesamt) FROM transactionline "
            "WHERE yearno = 1 GROUP BY regionid",
            "SELECT regionid, Vpct(salesamt) FROM transactionline "
            "WHERE yearno = 2 GROUP BY regionid",
        ]
        report = run_percentage_batch(tdb, queries)
        assert report.shared_groups == 0
        for sql, got in zip(queries, report.results):
            assert got.to_rows() == \
                run_percentage_query(tdb, sql).to_rows()

    def test_results_in_input_order(self, tdb):
        report = run_percentage_batch(tdb, list(reversed(BATCH)))
        first = report.results[0]
        assert "monthno" in first.column_names()


class TestKeptSummaryReuse:
    @pytest.fixture()
    def rdb(self):
        db = Database(keep_history=True)
        load_transaction_line(db, 5_000)
        return db

    def test_second_batch_reuses_kept_summary(self, rdb):
        first = run_percentage_batch(rdb, BATCH, keep_summaries=True)
        assert first.reused_summaries == 0
        rdb.stats.reset()
        second = run_percentage_batch(rdb, BATCH, keep_summaries=True)
        assert second.reused_summaries == 1
        # The fact table is never rescanned: only the (much smaller)
        # summary is.
        n_fact = rdb.table("transactionline").n_rows
        summary_rows = sum(second.summary_rows.values())
        assert rdb.stats.rows_scanned < n_fact
        assert summary_rows < n_fact
        for a, b in zip(first.results, second.results):
            for ra, rb in zip(a.to_rows(), b.to_rows()):
                assert ra == pytest.approx(rb, nan_ok=True)

    def test_reuse_requires_keep_summaries(self, rdb):
        run_percentage_batch(rdb, BATCH, keep_summaries=True)
        report = run_percentage_batch(rdb, BATCH)
        assert report.reused_summaries == 0

    def test_dml_expires_kept_summary(self, rdb):
        run_percentage_batch(rdb, BATCH, keep_summaries=True)
        rdb.execute("INSERT INTO transactionline "
                    "SELECT * FROM transactionline WHERE regionid = 1")
        report = run_percentage_batch(rdb, BATCH, keep_summaries=True)
        # The fact table's version changed, so the old summary's
        # signature no longer matches and a fresh one is built.
        assert report.reused_summaries == 0
        for sql, got in zip(BATCH, report.results):
            want = run_percentage_query(rdb, sql)
            for a, b in zip(got.to_rows(), want.to_rows()):
                assert a == pytest.approx(b, nan_ok=True)

    def test_dropped_summary_not_reused(self, rdb):
        report = run_percentage_batch(rdb, BATCH, keep_summaries=True)
        for table in report.summary_rows:
            rdb.drop_table(table)
        again = run_percentage_batch(rdb, BATCH, keep_summaries=True)
        assert again.reused_summaries == 0


class TestLatticeFjReuse:
    def test_coarser_totals_reuse_finer_fj(self, tdb):
        sql = ("SELECT regionid, yearno, monthno, "
               "Vpct(salesamt BY monthno) AS fine, "
               "Vpct(salesamt BY yearno, monthno) AS coarse "
               "FROM transactionline "
               "GROUP BY regionid, yearno, monthno")
        plan = generate_plan(tdb, sql)
        fj_inserts = [s.sql for s in plan.steps
                      if s.purpose == "aggregate-fj"]
        assert len(fj_inserts) == 2
        # The coarse totals (regionid) re-aggregate the fine Fj
        # (regionid, yearno) instead of rescanning Fk.
        assert any("_fj" in sql.split("FROM")[1] for sql in fj_inserts)

    def test_lattice_plan_is_correct(self, tdb):
        sql = ("SELECT regionid, yearno, monthno, "
               "Vpct(salesamt BY monthno) AS fine, "
               "Vpct(salesamt BY yearno, monthno) AS coarse "
               "FROM transactionline "
               "GROUP BY regionid, yearno, monthno")
        result = run_percentage_query(tdb, sql)
        sums = {}
        for region, year, _, fine, coarse in result.to_rows():
            sums[(region, year)] = sums.get((region, year), 0.0) + fine
            sums.setdefault(("coarse", region), 0.0)
            sums[("coarse", region)] += coarse
        for key, total in sums.items():
            assert total == pytest.approx(1.0)

    def test_no_reuse_for_different_arguments(self, tdb):
        sql = ("SELECT regionid, monthno, "
               "Vpct(salesamt BY monthno) AS by_sales, "
               "Vpct(itemqty BY monthno) AS by_qty "
               "FROM transactionline GROUP BY regionid, monthno")
        plan = generate_plan(tdb, sql)
        fj_inserts = [s.sql for s in plan.steps
                      if s.purpose == "aggregate-fj"]
        # Same totals, different measures: both read Fk.
        assert all("_fk" in sql for sql in fj_inserts)
