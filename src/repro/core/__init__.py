"""The paper's contribution: percentage queries and their SQL code
generation.

Public entry points:

* :func:`parse_percentage_query` -- parse the extended syntax into a
  :class:`PercentageQuery` model and validate the paper's usage rules.
* :func:`generate_plan` -- produce the standard-SQL statement sequence
  implementing a chosen evaluation strategy.
* :func:`run_percentage_query` -- end-to-end: parse, choose/validate a
  strategy, execute, return the result table.
"""

from repro.core.execute import generate_plan, run_percentage_query
from repro.core.hagg import HorizontalAggStrategy
from repro.core.horizontal import HorizontalStrategy
from repro.core.model import (AggregateTerm, PercentageQuery,
                              parse_percentage_query)
from repro.core.optimizer import (choose_horizontal_strategy,
                                  choose_vertical_strategy)
from repro.core.plan import GeneratedPlan
from repro.core.shared import BatchReport, run_percentage_batch
from repro.core.vertical import VerticalStrategy

__all__ = [
    "AggregateTerm",
    "BatchReport",
    "GeneratedPlan",
    "HorizontalAggStrategy",
    "HorizontalStrategy",
    "PercentageQuery",
    "VerticalStrategy",
    "choose_horizontal_strategy",
    "choose_vertical_strategy",
    "generate_plan",
    "parse_percentage_query",
    "run_percentage_batch",
    "run_percentage_query",
]
