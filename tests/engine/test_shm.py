"""Shared-memory block transport: roundtrip fidelity, the exporter's
unlink-on-close guarantee, the leak oracle, and the fail-fast behavior
of stale attaches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import shm
from repro.engine.shm import AttachedBlock, SharedColumnBlock


def _sample_arrays():
    return {
        "order": np.arange(10, dtype=np.int64),
        "values": np.linspace(0.0, 1.0, 10),
        "nulls": np.array([i % 3 == 0 for i in range(10)]),
    }


class TestRoundtrip:
    def test_export_attach_roundtrip(self):
        arrays = _sample_arrays()
        with SharedColumnBlock.export(arrays) as block:
            with AttachedBlock(block.descriptor) as attached:
                for name, original in arrays.items():
                    view = attached.array(name)
                    assert view.dtype == original.dtype
                    assert np.array_equal(view, original)

    def test_single_segment_per_block(self):
        with SharedColumnBlock.export(_sample_arrays()) as block:
            assert shm.live_segment_names() == [block.name]
            assert block.nbytes == sum(a.nbytes for a in
                                       _sample_arrays().values())

    def test_empty_arrays_export(self):
        arrays = {"order": np.empty(0, dtype=np.int64)}
        with SharedColumnBlock.export(arrays) as block:
            with AttachedBlock(block.descriptor) as attached:
                assert len(attached.array("order")) == 0

    def test_object_dtype_rejected(self):
        arrays = {"names": np.array(["a", "b"], dtype=object)}
        with pytest.raises(TypeError, match="object dtype"):
            SharedColumnBlock.export(arrays)
        assert shm.live_segment_names() == []


class TestLifecycle:
    def test_close_unlinks_and_deregisters(self):
        block = SharedColumnBlock.export(_sample_arrays())
        descriptor = block.descriptor
        assert shm.live_segment_names() == [block.name]
        block.close()
        assert shm.live_segment_names() == []
        # The segment is gone for everyone: a stale attach fails fast
        # instead of reading freed memory.
        with pytest.raises(FileNotFoundError):
            AttachedBlock(descriptor)

    def test_close_is_idempotent(self):
        block = SharedColumnBlock.export(_sample_arrays())
        block.close()
        block.close()
        assert shm.live_segment_names() == []

    def test_attached_close_never_unlinks(self):
        with SharedColumnBlock.export(_sample_arrays()) as block:
            attached = AttachedBlock(block.descriptor)
            attached.close()
            attached.close()           # idempotent too
            with pytest.raises(ValueError):
                attached.array("order")
            # Exporter still owns a live segment; a fresh attach works.
            with AttachedBlock(block.descriptor) as again:
                assert len(again.array("order")) == 10

    def test_close_on_exception_path(self):
        with pytest.raises(RuntimeError):
            with SharedColumnBlock.export(_sample_arrays()):
                raise RuntimeError("dispatch failed")
        assert shm.live_segment_names() == []

    def test_force_unlink_all(self):
        SharedColumnBlock.export(_sample_arrays())
        SharedColumnBlock.export(_sample_arrays())
        assert len(shm.live_segment_names()) == 2
        assert shm.force_unlink_all() == 2
        assert shm.live_segment_names() == []
        assert shm.force_unlink_all() == 0
