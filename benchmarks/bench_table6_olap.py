"""SIGMOD 2004 Table 6: percentage aggregations versus the ANSI OLAP
extensions.

One benchmark per (query row, approach): the best Vpct strategy, the
best Hpct strategy, and the single-statement window-function query.

Expected shape (paper): both proposed aggregations beat the OLAP form
on every row.  In this reproduction the wall-clock gap is compressed
(the vectorized in-memory engine removes the disk-spool asymmetry);
the ``logical_io`` extra-info carries the order-of-magnitude factor --
the window form reads and writes the full detail table per window.
"""

import pytest

from benchmarks.conftest import run_once, skip_unless_full
from repro.bench.harness import (run_hpct_experiment,
                                 run_olap_experiment,
                                 run_vpct_experiment)
from repro.bench.workloads import SIGMOD_QUERIES
from repro.core import HorizontalStrategy, VerticalStrategy

_CASES = [
    pytest.param(spec, approach,
                 marks=(skip_unless_full,)
                 if "dept,store" in spec.label and approach == "hpct"
                 else (),
                 id=f"{spec.label}--{approach}")
    for spec in SIGMOD_QUERIES
    for approach in ("vpct", "hpct", "olap")
]


@pytest.mark.parametrize("spec,approach", _CASES)
def test_table6(benchmark, sigmod_db, spec, approach):
    if approach == "vpct":
        def run():
            return run_vpct_experiment(sigmod_db, spec,
                                       VerticalStrategy(), name="vpct")
    elif approach == "hpct":
        def run():
            return run_hpct_experiment(
                sigmod_db, spec, HorizontalStrategy(source="FV"),
                name="hpct")
    else:
        def run():
            return run_olap_experiment(sigmod_db, spec)

    result = run_once(benchmark, run)
    assert result.result_rows > 0
    benchmark.extra_info["query"] = spec.label
    benchmark.extra_info["approach"] = approach
    benchmark.extra_info["logical_io"] = result.logical_io
