"""Unit tests for Vpct code generation and execution strategies."""

import pytest

from repro.core import (VerticalStrategy, generate_plan,
                        run_percentage_query)
from repro.core import plan as plan_mod
from repro.errors import PercentageQueryError

QUERY = ("SELECT state, city, Vpct(salesAmt BY city) FROM sales "
         "GROUP BY state, city")

EXPECTED = [
    ("CA", "Los Angeles", pytest.approx(23 / 106)),
    ("CA", "San Francisco", pytest.approx(83 / 106)),
    ("TX", "Dallas", pytest.approx(85 / 149)),
    ("TX", "Houston", pytest.approx(64 / 149)),
]


class TestPlanShape:
    def test_default_plan_statements(self, sales_db):
        plan = generate_plan(sales_db, QUERY)
        purposes = [s.purpose for s in plan.steps]
        assert purposes == [
            plan_mod.CREATE_TEMP, plan_mod.AGGREGATE_FK,
            plan_mod.CREATE_TEMP, plan_mod.AGGREGATE_FJ,
            plan_mod.INDEX, plan_mod.INDEX,
            plan_mod.CREATE_TEMP, plan_mod.DIVIDE,
        ]
        # The partial-aggregate optimization: Fj comes from Fk, not F.
        fj_insert = plan.steps[3].sql
        assert "_fk" in fj_insert
        assert "FROM sales" not in fj_insert

    def test_fj_from_f_when_disabled(self, sales_db):
        plan = generate_plan(sales_db, QUERY,
                             VerticalStrategy(fj_from_fk=False))
        assert "FROM sales" in plan.steps[3].sql

    def test_update_plan_has_no_third_table(self, sales_db):
        plan = generate_plan(sales_db, QUERY,
                             VerticalStrategy(use_update=True))
        purposes = [s.purpose for s in plan.steps]
        assert plan_mod.UPDATE_DIVIDE in purposes
        assert purposes.count(plan_mod.CREATE_TEMP) == 2  # fk + fj only
        assert plan.result_table.endswith("_fk")

    def test_no_indexes_when_disabled(self, sales_db):
        plan = generate_plan(sales_db, QUERY,
                             VerticalStrategy(create_indexes=False))
        assert all(s.purpose != plan_mod.INDEX for s in plan.steps)

    def test_mismatched_indexes_skip_fj(self, sales_db):
        plan = generate_plan(sales_db, QUERY,
                             VerticalStrategy(matching_indexes=False))
        index_steps = [s.sql for s in plan.steps
                       if s.purpose == plan_mod.INDEX]
        assert len(index_steps) == 1
        assert "_fk" in index_steps[0]

    def test_division_is_zero_guarded(self, sales_db):
        plan = generate_plan(sales_db, QUERY)
        divide = plan.steps[-1].sql
        assert "CASE WHEN" in divide and "<> 0" in divide \
            and "ELSE NULL" in divide

    def test_script_rendering(self, sales_db):
        script = generate_plan(sales_db, QUERY).sql_script()
        assert script.count(";") >= 8
        assert "-- divide" in script


class TestExecution:
    @pytest.mark.parametrize("strategy", [
        VerticalStrategy(),
        VerticalStrategy(fj_from_fk=False),
        VerticalStrategy(use_update=True),
        VerticalStrategy(create_indexes=False),
        VerticalStrategy(matching_indexes=False),
        VerticalStrategy(single_statement=True),
        VerticalStrategy(use_update=True, create_indexes=False,
                         fj_from_fk=False),
    ])
    def test_all_strategies_reproduce_table2(self, sales_db, strategy):
        result = run_percentage_query(sales_db, QUERY, strategy)
        assert result.to_rows() == EXPECTED

    def test_temp_tables_dropped(self, sales_db):
        run_percentage_query(sales_db, QUERY)
        leftovers = [t for t in sales_db.table_names()
                     if t.startswith("_vp")]
        assert leftovers == []

    def test_keep_temps(self, sales_db):
        from repro.core.execute import execute_plan
        plan = generate_plan(sales_db, QUERY)
        execute_plan(sales_db, plan, keep_temps=True)
        assert any(t.startswith("_vp") for t in sales_db.table_names())

    def test_global_totals(self, sales_db):
        result = run_percentage_query(
            sales_db, "SELECT state, Vpct(salesAmt) FROM sales "
                      "GROUP BY state")
        rows = dict(result.to_rows())
        assert rows["CA"] == pytest.approx(106 / 255)
        assert rows["TX"] == pytest.approx(149 / 255)

    def test_by_equals_group_by_follows_formal_semantics(self, sales_db):
        # Section 3.1 informally claims BY == GROUP BY yields 100% per
        # row, but its own formula (totals grouped by GROUP BY minus
        # BY, here the empty list -> the grand total) and its worked
        # example imply global shares.  We follow the formula; the
        # discrepancy is recorded in DESIGN.md.
        result = run_percentage_query(
            sales_db, "SELECT state, Vpct(salesAmt BY state) "
                      "FROM sales GROUP BY state")
        rows = dict(result.to_rows())
        assert rows["CA"] == pytest.approx(106 / 255)
        assert rows["TX"] == pytest.approx(149 / 255)

    def test_combined_with_plain_aggregates(self, sales_db):
        result = run_percentage_query(
            sales_db,
            "SELECT state, city, Vpct(salesAmt BY city), "
            "sum(salesAmt), count(*) FROM sales GROUP BY state, city")
        first = result.to_rows()[0]
        assert first[0:2] == ("CA", "Los Angeles")
        assert first[3] == 23.0
        assert first[4] == 1

    def test_multiple_vpct_terms(self, sales_db):
        result = run_percentage_query(
            sales_db,
            "SELECT state, city, Vpct(salesAmt BY city) AS in_state, "
            "Vpct(salesAmt BY state, city) AS global FROM sales "
            "GROUP BY state, city")
        rows = {(r[0], r[1]): r for r in result.to_rows()}
        assert rows[("CA", "Los Angeles")][2] == pytest.approx(23 / 106)
        assert rows[("CA", "Los Angeles")][3] == pytest.approx(23 / 255)

    def test_where_passthrough(self, sales_db):
        result = run_percentage_query(
            sales_db,
            "SELECT city, Vpct(salesAmt) FROM sales "
            "WHERE state = 'TX' GROUP BY city")
        rows = dict(result.to_rows())
        assert rows["Dallas"] == pytest.approx(85 / 149)

    def test_expression_argument(self, sales_db):
        result = run_percentage_query(
            sales_db, "SELECT state, Vpct(salesAmt * 2) FROM sales "
                      "GROUP BY state")
        assert dict(result.to_rows())["CA"] == pytest.approx(106 / 255)

    def test_vpct_of_one_is_row_count_percentage(self, sales_db):
        """The paper's Vpct(1): percentages based on row counts."""
        result = run_percentage_query(
            sales_db, "SELECT state, Vpct(1) FROM sales "
                      "GROUP BY state")
        rows = dict(result.to_rows())
        assert rows["CA"] == pytest.approx(0.4)   # 4 of 10 rows
        assert rows["TX"] == pytest.approx(0.6)

    def test_vpct_of_one_with_totals(self, sales_db):
        result = run_percentage_query(
            sales_db, "SELECT state, city, Vpct(1 BY city) "
                      "FROM sales GROUP BY state, city")
        rows = {(r[0], r[1]): r[2] for r in result.to_rows()}
        assert rows[("TX", "Houston")] == pytest.approx(4 / 6)


class TestDivisionByZero:
    def test_zero_total_yields_null(self, db):
        db.load_table("f", [("g", "varchar"), ("c", "varchar"),
                            ("m", "real")],
                      [("a", "x", 5.0), ("a", "y", -5.0),
                       ("b", "x", 2.0)])
        result = run_percentage_query(
            db, "SELECT g, c, Vpct(m BY c) FROM f GROUP BY g, c")
        rows = {(r[0], r[1]): r[2] for r in result.to_rows()}
        assert rows[("a", "x")] is None
        assert rows[("a", "y")] is None
        assert rows[("b", "x")] == 1.0

    def test_zero_total_update_strategy(self, db):
        db.load_table("f", [("g", "varchar"), ("m", "real")],
                      [("a", 5.0), ("a", -5.0)])
        result = run_percentage_query(
            db, "SELECT g, Vpct(m BY g) FROM f GROUP BY g",
            VerticalStrategy(use_update=True))
        # total by g is zero: percentage must be NULL, not an error.
        assert result.to_rows() == [("a", None)]

    def test_null_measures_skipped_like_sum(self, db):
        db.load_table("f", [("g", "varchar"), ("c", "varchar"),
                            ("m", "real")],
                      [("a", "x", 10.0), ("a", "x", None),
                       ("a", "y", 30.0)])
        result = run_percentage_query(
            db, "SELECT g, c, Vpct(m BY c) FROM f GROUP BY g, c")
        rows = {(r[0], r[1]): r[2] for r in result.to_rows()}
        assert rows[("a", "x")] == pytest.approx(0.25)


class TestSingleStatement:
    def test_rejects_multiple_terms(self, sales_db):
        with pytest.raises(PercentageQueryError):
            generate_plan(
                sales_db,
                "SELECT state, city, Vpct(salesAmt BY city), "
                "Vpct(salesAmt) FROM sales GROUP BY state, city",
                VerticalStrategy(single_statement=True))

    def test_emits_no_temp_tables(self, sales_db):
        plan = generate_plan(sales_db, QUERY,
                             VerticalStrategy(single_statement=True))
        assert plan.temp_tables == []
        assert plan.result_table is None
        assert "FROM (" in plan.result_select


ALL_JOIN_STRATEGIES = [
    VerticalStrategy(),
    VerticalStrategy(fj_from_fk=False),
    VerticalStrategy(use_update=True),
    VerticalStrategy(create_indexes=False),
    VerticalStrategy(matching_indexes=False),
]


class TestDenominatorNullSemantics:
    """Zero and all-NULL coarse denominators yield NULL percentages
    identically in the join strategies, the single-statement CASE
    form, and the OLAP window rewrite."""

    ZERO_ROWS = [("a", "x", 5.0), ("a", "y", -5.0), ("b", "x", 2.0)]
    NULL_ROWS = [("a", "x", None), ("a", "y", None), ("b", "x", 2.0)]
    QUERY = "SELECT g, c, Vpct(m BY c) FROM f GROUP BY g, c"

    def _load(self, db, rows):
        db.load_table("f", [("g", "varchar"), ("c", "varchar"),
                            ("m", "real")], rows)
        return db

    def _expected(self, rows):
        return {("a", "x"): None, ("a", "y"): None,
                ("b", "x"): 1.0}

    @pytest.mark.parametrize("rows", [ZERO_ROWS, NULL_ROWS],
                             ids=["zero-total", "all-null-total"])
    @pytest.mark.parametrize(
        "strategy", ALL_JOIN_STRATEGIES + [
            VerticalStrategy(single_statement=True)],
        ids=["join", "join-rescan", "join-update", "join-noindex",
             "join-mismatch", "case-single-statement"])
    def test_sick_denominators_are_null(self, db, rows, strategy):
        self._load(db, rows)
        result = run_percentage_query(db, self.QUERY, strategy)
        got = {(r[0], r[1]): r[2] for r in result.to_rows()}
        assert got == self._expected(rows)

    @pytest.mark.parametrize("rows", [ZERO_ROWS, NULL_ROWS],
                             ids=["zero-total", "all-null-total"])
    def test_olap_rewrite_agrees(self, db, rows):
        from repro.olap import run_olap_percentage_query
        self._load(db, rows)
        result = run_olap_percentage_query(db, self.QUERY)
        got = {(r[0], r[1]): r[2] for r in result.to_rows()}
        assert got == self._expected(rows)


class TestNullGroupingValues:
    """NULL grouping values form a group of their own (the paper
    follows SQL GROUP BY semantics); the equi-joins between F, Fk and
    Fj must be null-safe or those rows silently disappear."""

    ROWS = [(None, "x", 6.0), (None, "x", 2.0), (None, "y", 8.0),
            ("b", None, 3.0), ("b", "x", 9.0)]

    @pytest.mark.parametrize(
        "strategy", ALL_JOIN_STRATEGIES,
        ids=["join", "join-rescan", "join-update", "join-noindex",
             "join-mismatch"])
    def test_null_groups_survive_the_join(self, db, strategy):
        db.load_table("f", [("g", "varchar"), ("c", "varchar"),
                            ("m", "real")], self.ROWS)
        result = run_percentage_query(
            db, "SELECT g, c, Vpct(m BY c) FROM f GROUP BY g, c",
            strategy)
        got = {(r[0], r[1]): r[2] for r in result.to_rows()}
        assert got[(None, "x")] == pytest.approx(8 / 16)
        assert got[(None, "y")] == pytest.approx(8 / 16)
        assert got[("b", None)] == pytest.approx(3 / 12)
        assert got[("b", "x")] == pytest.approx(9 / 12)
        assert len(got) == 4
