"""Reproduction of the companion (DMKD 2004) paper's worked examples."""

import pytest

from repro.core import (HorizontalAggStrategy, HorizontalStrategy,
                        run_percentage_query)


class TestBinaryCoding:
    """DMKD Table 2: coding gender x maritalStatus as binary columns."""

    QUERY = ("SELECT employeeid, "
             "sum(1 BY gender, maritalstatus DEFAULT 0), sum(salary) "
             "FROM employee GROUP BY employeeid")

    EXPECTED = {
        1: {"M_Single": 1, "M_Married": 0, "F_Single": 0,
            "F_Married": 0, "salary": 30000.0},
        2: {"M_Single": 0, "F_Single": 1, "salary": 50000.0},
        3: {"F_Married": 1, "F_Single": 0, "salary": 40000.0},
        4: {"M_Single": 1, "salary": 45000.0},
    }

    @pytest.mark.parametrize("strategy", [
        HorizontalStrategy(source="F"),
        HorizontalStrategy(source="FV"),
        HorizontalAggStrategy(source="F"),
        HorizontalAggStrategy(source="FV"),
    ], ids=["case-F", "case-FV", "spj-F", "spj-FV"])
    def test_matches_table2(self, employee_db, strategy):
        result = run_percentage_query(employee_db, self.QUERY,
                                      strategy)
        names = result.column_names()
        for row in result.to_rows():
            record = dict(zip(names, row))
            expected = self.EXPECTED[record["employeeid"]]
            for key, value in expected.items():
                if key == "salary":
                    assert record["sum_salary"] == value
                else:
                    # Only combinations that exist in the data become
                    # columns ("all existing combinations of values").
                    if key in record:
                        assert record[key] == value

    def test_absent_combination_never_a_column(self, employee_db):
        # No married men exist, so M_Married is not a column (the
        # paper's Table 2 shows it only because its toy data is
        # illustrative; the definition uses SELECT DISTINCT).
        result = run_percentage_query(
            employee_db, self.QUERY, HorizontalStrategy(source="F"))
        assert "M_Married" not in result.column_names()

    def test_flags_are_one_hot(self, employee_db):
        result = run_percentage_query(
            employee_db, self.QUERY, HorizontalStrategy(source="F"))
        names = result.column_names()
        flag_columns = [n for n in names
                        if n not in ("employeeid", "sum_salary")]
        for row in result.to_rows():
            record = dict(zip(names, row))
            assert sum(record[c] for c in flag_columns) == 1


class TestTabularSummary:
    """DMKD Section 3.2's first example: a multi-term horizontal
    summary producing an analysis-ready tabular set."""

    def test_multi_term_summary(self, store_db):
        result = run_percentage_query(
            store_db,
            "SELECT store, sum(salesamt BY dweek), "
            "count(rid BY dweek DEFAULT 0), sum(salesamt) "
            "FROM sales GROUP BY store")
        names = result.column_names()
        # 7 sales columns + 7 count columns + key + total.
        assert len(names) == 16
        record = dict(zip(names, result.to_rows()[0]))
        assert record["store"] == 2
        assert record["sum_salesamt_Mo"] == 175.0
        assert record["sum_salesamt"] == 2500.0

    def test_count_default_zero_for_missing_day(self, store_db):
        result = run_percentage_query(
            store_db,
            "SELECT store, count(rid BY dweek DEFAULT 0) FROM sales "
            "GROUP BY store")
        names = result.column_names()
        store4 = dict(zip(names, result.to_rows()[1]))
        assert store4["store"] == 4
        assert store4["Mo"] == 0

    def test_null_without_default_for_missing_day(self, store_db):
        result = run_percentage_query(
            store_db,
            "SELECT store, sum(salesamt BY dweek) FROM sales "
            "GROUP BY store")
        names = result.column_names()
        store4 = dict(zip(names, result.to_rows()[1]))
        assert store4["Mo"] is None
