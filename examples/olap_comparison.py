"""Percentage aggregations versus the ANSI OLAP extensions
(the paper's Table 6 comparison, end to end).

Runs the same percentage query three ways -- generated Vpct plan,
generated Hpct plan, and the single-statement window-function query --
verifies all three agree, and prints wall time plus the engine's
logical-I/O accounting that explains *why* the OLAP form loses.

Run:  python examples/olap_comparison.py [n_rows]
"""

import sys
import time

from repro import Database
from repro.core import (HorizontalStrategy, VerticalStrategy,
                        run_percentage_query)
from repro.datagen import load_employee
from repro.olap import (generate_olap_percentage_query,
                        run_olap_percentage_query)

QUERY = ("SELECT marstatus, gender, Vpct(salary BY gender) "
         "FROM employee GROUP BY marstatus, gender")


def measure(db, label, func):
    before = db.stats.snapshot()
    started = time.perf_counter()
    result = func()
    elapsed = time.perf_counter() - started
    diff = db.stats.diff_since(before)
    print(f"  {label:<24s} {elapsed * 1000:8.1f} ms   "
          f"logical I/O = {diff.logical_io():>10,}")
    return result


def main() -> None:
    n_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 200_000
    db = Database()
    print(f"Generating employee with n = {n_rows:,} ...\n")
    load_employee(db, n_rows)

    print(f"Query: {QUERY}\n")
    print("The OLAP-extensions rendition the optimizer would run:")
    print(f"  {generate_olap_percentage_query(QUERY)}\n")

    vertical = measure(db, "Vpct (best strategy)",
                       lambda: run_percentage_query(
                           db, QUERY, VerticalStrategy()))
    horizontal_query = ("SELECT marstatus, Hpct(salary BY gender) "
                        "FROM employee GROUP BY marstatus")
    measure(db, "Hpct (best strategy)",
            lambda: run_percentage_query(
                db, horizontal_query, HorizontalStrategy(source="F")))
    olap = measure(db, "OLAP extensions",
                   lambda: run_olap_percentage_query(db, QUERY))

    agree = all(
        a[:2] == b[:2] and abs(a[2] - b[2]) < 1e-9
        for a, b in zip(vertical.to_rows(), olap.to_rows()))
    print("\nSame answer set (the paper's ground rule):", agree)
    print("\nPercentage of salary mass per gender within each "
          "marital status:")
    for marstatus, gender, pct in vertical.to_rows():
        print(f"  marstatus={marstatus}  gender={gender}  "
              f"{pct * 100:5.2f}%")


if __name__ == "__main__":
    main()
