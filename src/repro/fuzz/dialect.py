"""Translate generated standard SQL into sqlite's dialect.

The oracle replays plan statements in stdlib ``sqlite3``.  The plans
are emitted by :mod:`repro.sql.formatter` and are almost-portable SQL;
two sqlite behaviors would silently change results, so each statement
is parsed back with :mod:`repro.sql.parser`, rewritten, and
re-formatted:

* ``x / y`` on two integers truncates in sqlite but is true division
  in the engine (and in the paper's Teradata SQL).  Every division's
  numerator is wrapped in ``CAST(... AS REAL)``.
* a single-column ``INTEGER PRIMARY KEY`` is an alias for sqlite's
  rowid, which silently rewrites inserted NULLs into fresh row numbers
  -- catastrophic for NULL-group testing.  ``PRIMARY KEY`` clauses are
  dropped entirely; they only declare intent in the engine too.

Type names (INT/REAL/VARCHAR/BOOLEAN) pass through: sqlite's type
affinity maps them correctly.  Known remaining dialect gaps are
declared in :data:`UNSUPPORTED_FUNCS`; the fuzz generator never emits
them (sqlite has no ``var``/``stdev``) and the oracle refuses them
loudly rather than diverging quietly.
"""

from __future__ import annotations

from dataclasses import replace

from repro.sql import ast
from repro.sql.formatter import format_statement
from repro.sql.parser import parse_statement

#: aggregate names the engine knows but sqlite does not provide.
UNSUPPORTED_FUNCS = frozenset({"var", "stdev"})


class DialectError(Exception):
    """The statement cannot be expressed in sqlite faithfully."""


def to_sqlite(sql: str) -> str:
    """Rewrite one formatted statement for sqlite."""
    return format_statement(rewrite_statement(parse_statement(sql)))


# ----------------------------------------------------------------------
# Statement rewriting
# ----------------------------------------------------------------------
def rewrite_statement(statement: ast.Statement) -> ast.Statement:
    if isinstance(statement, ast.Select):
        return _rewrite_select(statement)
    if isinstance(statement, ast.CreateTable):
        return replace(statement, primary_key=())
    if isinstance(statement, ast.CreateTableAs):
        return replace(statement, select=_rewrite_select(statement.select))
    if isinstance(statement, ast.InsertSelect):
        return replace(statement, select=_rewrite_select(statement.select))
    if isinstance(statement, ast.InsertValues):
        rows = tuple(tuple(_rewrite_expr(v) for v in row)
                     for row in statement.rows)
        return replace(statement, rows=rows)
    if isinstance(statement, ast.Update):
        assignments = tuple(
            replace(a, value=_rewrite_expr(a.value))
            for a in statement.assignments)
        where = _rewrite_optional(statement.where)
        return replace(statement, assignments=assignments, where=where)
    if isinstance(statement, ast.Delete):
        return replace(statement, where=_rewrite_optional(statement.where))
    if isinstance(statement, (ast.DropTable, ast.CreateIndex,
                              ast.DropIndex)):
        return statement
    raise DialectError(f"no sqlite rendering for {type(statement).__name__}")


def _rewrite_select(select: ast.Select) -> ast.Select:
    items = tuple(replace(i, expr=_rewrite_expr(i.expr))
                  for i in select.items)
    from_ = _rewrite_from(select.from_)
    group_by = tuple(_rewrite_expr(e) for e in select.group_by)
    order_by = tuple(replace(o, expr=_rewrite_expr(o.expr))
                     for o in select.order_by)
    return replace(select, items=items, from_=from_,
                   where=_rewrite_optional(select.where),
                   group_by=group_by,
                   having=_rewrite_optional(select.having),
                   order_by=order_by)


def _rewrite_from(from_):
    if from_ is None:
        return None
    joins = tuple(
        replace(j, source=_rewrite_source(j.source),
                on=_rewrite_optional(j.on))
        for j in from_.joins)
    return replace(from_, first=_rewrite_source(from_.first),
                   joins=joins)


def _rewrite_source(source: ast.FromSource) -> ast.FromSource:
    if isinstance(source, ast.SubquerySource):
        return replace(source, select=_rewrite_select(source.select))
    return source


# ----------------------------------------------------------------------
# Expression rewriting
# ----------------------------------------------------------------------
def _rewrite_optional(expr):
    return None if expr is None else _rewrite_expr(expr)


def _rewrite_expr(expr: ast.Expr) -> ast.Expr:
    if isinstance(expr, (ast.Literal, ast.ColumnRef, ast.Star)):
        return expr
    if isinstance(expr, ast.UnaryOp):
        return replace(expr, operand=_rewrite_expr(expr.operand))
    if isinstance(expr, ast.BinaryOp):
        left = _rewrite_expr(expr.left)
        right = _rewrite_expr(expr.right)
        if expr.op == "/":
            left = ast.Cast(operand=left, type_name="REAL")
        return replace(expr, left=left, right=right)
    if isinstance(expr, ast.IsNull):
        return replace(expr, operand=_rewrite_expr(expr.operand))
    if isinstance(expr, ast.InList):
        return replace(expr, operand=_rewrite_expr(expr.operand),
                       items=tuple(_rewrite_expr(i) for i in expr.items))
    if isinstance(expr, ast.CaseWhen):
        whens = tuple((_rewrite_expr(c), _rewrite_expr(r))
                      for c, r in expr.whens)
        return replace(expr, whens=whens,
                       else_=_rewrite_optional(expr.else_))
    if isinstance(expr, ast.Cast):
        return replace(expr, operand=_rewrite_expr(expr.operand))
    if isinstance(expr, (ast.Cube, ast.Rollup, ast.GroupingSets)):
        raise DialectError(
            "sqlite has no CUBE/ROLLUP/GROUPING SETS; expand with "
            "cube_to_union_sql() first")
    if isinstance(expr, ast.FuncCall):
        if expr.name in UNSUPPORTED_FUNCS:
            raise DialectError(f"sqlite has no {expr.name}() aggregate")
        if expr.name in ast.GROUPING_SET_FUNCS:
            raise DialectError(
                f"sqlite has no {expr.name}(); expand with "
                f"cube_to_union_sql() first")
        if expr.by_columns or expr.default is not None:
            raise DialectError(
                "extended BY/DEFAULT syntax must be rewritten by the "
                "code generator before the oracle can run it")
        args = tuple(_rewrite_expr(a) for a in expr.args)
        over = expr.over
        if over is not None:
            over = replace(over, partition_by=tuple(
                _rewrite_expr(e) for e in over.partition_by))
        return replace(expr, args=args, over=over)
    raise DialectError(f"no sqlite rendering for {type(expr).__name__}")


# ----------------------------------------------------------------------
# Grouping-sets oracle: UNION ALL expansion
# ----------------------------------------------------------------------
def cube_to_union_sql(sql: str) -> str:
    """Rewrite a CUBE/ROLLUP/GROUPING SETS query as the UNION ALL of
    its per-set plain group-bys, in sqlite dialect.

    This is the differential oracle for the engine's shared-scan
    evaluation: sqlite computes every set independently, so any fold or
    group-derivation bug in the engine diverges from it.  Per set, dim
    columns missing from the set project as NULL literals and
    ``grouping()`` calls become their constant bitmask.  The rewrite is
    syntactic (dims keyed by formatted text), which covers everything
    the fuzz generator emits; anything fancier raises DialectError.
    """
    from repro.engine.groupingsets import expand_group_by
    from repro.sql.formatter import format_expr

    statement = parse_statement(sql)
    if not isinstance(statement, ast.Select) \
            or not ast.has_grouping_sets(statement):
        raise DialectError("not a grouping-sets query")
    if statement.distinct or statement.order_by \
            or statement.limit is not None \
            or statement.having is not None:
        raise DialectError("cube oracle covers plain grouping-sets "
                           "queries only")
    raw_sets = expand_group_by(statement.group_by, lambda e: e)

    dim_keys: list[str] = []
    set_keys: list[list[str]] = []
    for raw in raw_sets:
        keys: list[str] = []
        for expr in raw:
            key = format_expr(expr)
            if key not in dim_keys:
                dim_keys.append(key)
            if key not in keys:
                keys.append(key)
        set_keys.append(sorted(keys, key=dim_keys.index))

    expr_of = {}
    for raw in raw_sets:
        for expr in raw:
            expr_of.setdefault(format_expr(expr), expr)

    pieces = []
    for keys in set_keys:
        present = set(keys)

        def subst(node: ast.Expr) -> ast.Expr:
            if isinstance(node, ast.FuncCall) \
                    and node.name == "grouping":
                mask = 0
                for j, arg in enumerate(node.args):
                    if format_expr(arg) not in present:
                        mask |= 1 << (len(node.args) - 1 - j)
                return ast.Literal(mask)
            if isinstance(node, ast.FuncCall) \
                    and node.name in ast.AGGREGATE_NAMES:
                return node
            key = format_expr(node)
            if key in dim_keys:
                return node if key in present else ast.Literal(None)
            # composite items (e.g. sum(a) / count(*)): substitute in
            # the children; only a bare non-dim leaf is unprojectable.
            if isinstance(node, ast.Literal):
                return node
            if isinstance(node, ast.UnaryOp):
                return replace(node, operand=subst(node.operand))
            if isinstance(node, ast.BinaryOp):
                return replace(node, left=subst(node.left),
                               right=subst(node.right))
            if isinstance(node, ast.IsNull):
                return replace(node, operand=subst(node.operand))
            if isinstance(node, ast.Cast):
                return replace(node, operand=subst(node.operand))
            if isinstance(node, ast.CaseWhen):
                whens = tuple((subst(c), subst(r))
                              for c, r in node.whens)
                else_ = subst(node.else_) if node.else_ is not None \
                    else None
                return replace(node, whens=whens, else_=else_)
            raise DialectError(
                f"cube oracle cannot project {key} per set")

        items = tuple(replace(i, expr=subst(i.expr))
                      for i in statement.items)
        piece = replace(statement, items=items,
                        group_by=tuple(expr_of[k] for k in keys))
        pieces.append(format_statement(_rewrite_select(piece)))
    return " UNION ALL ".join(pieces)
