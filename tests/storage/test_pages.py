"""Page format and column chunk serialization unit tests.

Every corruption mode the header detects must surface as a typed
:class:`PageCorruptError` *naming the page* -- the docs/storage.md
contract the torn-page and recovery tests build on.
"""

import numpy as np
import pytest

from repro.engine.column import ColumnData
from repro.engine.types import SQLType
from repro.errors import PageCorruptError, StorageError
from repro.storage.pages import (HEADER_SIZE, chunk_payload, decode_page,
                                 deserialize_column, encode_page,
                                 payload_capacity, serialize_column)

PAGE_SIZE = 256


def test_encode_decode_roundtrip():
    payload = b"hello columnar world"
    raw = encode_page(7, payload, PAGE_SIZE)
    assert len(raw) == PAGE_SIZE
    assert decode_page(7, raw, PAGE_SIZE) == payload


def test_empty_payload_roundtrips():
    raw = encode_page(0, b"", PAGE_SIZE)
    assert decode_page(0, raw, PAGE_SIZE) == b""


def test_payload_capacity_is_page_minus_header():
    assert payload_capacity(PAGE_SIZE) == PAGE_SIZE - HEADER_SIZE
    full = b"x" * payload_capacity(PAGE_SIZE)
    assert decode_page(3, encode_page(3, full, PAGE_SIZE),
                       PAGE_SIZE) == full


def test_overlong_payload_rejected():
    too_big = b"x" * (payload_capacity(PAGE_SIZE) + 1)
    with pytest.raises(StorageError, match="exceeds page capacity"):
        encode_page(1, too_big, PAGE_SIZE)


def test_short_read_is_torn_page():
    raw = encode_page(5, b"abc", PAGE_SIZE)
    with pytest.raises(PageCorruptError, match="page 5 is torn"):
        decode_page(5, raw[:-1], PAGE_SIZE)


def test_bad_magic_names_the_page():
    raw = bytearray(encode_page(9, b"abc", PAGE_SIZE))
    raw[:4] = b"XXXX"
    with pytest.raises(PageCorruptError, match="page 9 has bad magic"):
        decode_page(9, bytes(raw), PAGE_SIZE)


def test_wrong_page_id_detected():
    # A write that landed at the wrong offset: the header's id
    # disagrees with where the page was read from.
    raw = encode_page(4, b"abc", PAGE_SIZE)
    with pytest.raises(PageCorruptError,
                       match="page 11 header claims page id 4"):
        decode_page(11, raw, PAGE_SIZE)


def test_checksum_failure_detected():
    raw = bytearray(encode_page(2, b"abcdef", PAGE_SIZE))
    raw[HEADER_SIZE + 1] ^= 0xFF  # flip one payload byte
    with pytest.raises(PageCorruptError,
                       match="page 2 failed its checksum"):
        decode_page(2, bytes(raw), PAGE_SIZE)


def test_impossible_length_detected():
    raw = bytearray(encode_page(6, b"abc", PAGE_SIZE))
    # Payload-length field sits after magic (4) + page id (8).
    raw[12:16] = (PAGE_SIZE).to_bytes(4, "little")
    with pytest.raises(PageCorruptError, match="page 6 claims"):
        decode_page(6, bytes(raw), PAGE_SIZE)


# ----------------------------------------------------------------------
def test_chunk_payload_empty_still_owns_a_page():
    assert chunk_payload(b"", 10) == [b""]


def test_chunk_payload_splits_and_reassembles():
    data = bytes(range(256)) * 3
    chunks = chunk_payload(data, 100)
    assert all(len(c) <= 100 for c in chunks)
    assert b"".join(chunks) == data


# ----------------------------------------------------------------------
COLUMNS = [
    (SQLType.INTEGER, [1, -5, None, 2 ** 40, 0]),
    (SQLType.REAL, [1.5, None, -0.25, 1e12, 0.0]),
    (SQLType.VARCHAR, ["a", "", None, "héllo", "x" * 100]),
    (SQLType.BOOLEAN, [True, False, None, True, False]),
]


@pytest.mark.parametrize("sql_type,values", COLUMNS,
                         ids=[t.value for t, _ in COLUMNS])
def test_column_roundtrip(sql_type, values):
    data = ColumnData.from_values(sql_type, values)
    back = deserialize_column(serialize_column(data))
    assert back.sql_type == sql_type
    assert list(back.nulls) == [v is None for v in values]
    for i, value in enumerate(values):
        if value is None:
            continue
        if sql_type == SQLType.REAL:
            assert back.values[i] == pytest.approx(value)
        else:
            assert back.values[i] == value


@pytest.mark.parametrize("sql_type", [t for t, _ in COLUMNS],
                         ids=[t.value for t, _ in COLUMNS])
def test_empty_column_roundtrip(sql_type):
    back = deserialize_column(
        serialize_column(ColumnData.empty(sql_type)))
    assert back.sql_type == sql_type
    assert len(back) == 0


def test_null_fillers_are_normalized():
    # Two logically equal columns whose NULL slots hold different
    # garbage must serialize to identical bytes -- the bit-identity
    # the recovery comparisons and the differential fuzzer rely on.
    a = ColumnData(SQLType.INTEGER,
                   np.array([1, 999, 3], dtype=np.int64),
                   np.array([False, True, False]))
    b = ColumnData(SQLType.INTEGER,
                   np.array([1, -7, 3], dtype=np.int64),
                   np.array([False, True, False]))
    assert serialize_column(a) == serialize_column(b)


def test_unreadable_chunk_is_typed():
    with pytest.raises(StorageError, match="unreadable column chunk"):
        deserialize_column(b"\xff")
