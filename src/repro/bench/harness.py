"""Experiment runner: generate + execute a query under one strategy and
record wall time plus the engine's logical cost counters.

Timing covers plan generation *and* execution, matching how the paper
measured its Java generator end to end (generation includes the
discovery feedback queries for horizontal strategies).

Running this module directly benchmarks the dictionary-encoding cache
over the SIGMOD Table 4/5 workloads and writes a machine-readable
report (cold vs warm timings, hit rates, logical-I/O identity):

    PYTHONPATH=src python -m repro.bench \
        --out BENCH_encoding_cache.json
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Optional, Union

from repro.api.database import Database
from repro.bench.workloads import QuerySpec
from repro.core.execute import execute_plan, generate_plan
from repro.core.hagg import HorizontalAggStrategy
from repro.core.horizontal import HorizontalStrategy
from repro.core.vertical import VerticalStrategy
from repro.olap.windowgen import generate_olap_percentage_query

Strategy = Union[VerticalStrategy, HorizontalStrategy,
                 HorizontalAggStrategy]

#: Schema tag stamped on every suite report; bump when the shared
#: header layout changes.
REPORT_SCHEMA = "repro-bench/v1"


def git_revision() -> Optional[str]:
    """The checkout's current commit hash, or ``None`` when the bench
    runs outside a git checkout (e.g. from an sdist)."""
    import subprocess
    try:
        proc = subprocess.run(["git", "rev-parse", "HEAD"],
                              capture_output=True, text=True,
                              timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else None


def report_header(suite: str) -> dict:
    """The shared header every suite report opens with, so reports
    from different machines and revisions are comparable."""
    import os
    import platform
    return {
        "schema": REPORT_SCHEMA,
        "suite": suite,
        "cpu_count": os.cpu_count(),
        "git_rev": git_revision(),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def write_report(report: dict, out: str, suite: str) -> dict:
    """Prepend the shared header and write ``out`` as pretty JSON.

    Suite keys win on collision (the concurrency and multicore
    reports carry their own top-level ``cpu_count``; it is the same
    value either way)."""
    merged = {**report_header(suite), **report}
    with open(out, "w") as handle:
        json.dump(merged, handle, indent=2)
        handle.write("\n")
    return merged


@dataclass
class ExperimentResult:
    """One measured experiment cell."""

    label: str
    strategy: str
    seconds: float
    logical_io: int
    case_evaluations: int
    statements: int
    result_rows: int
    result_columns: int
    encode_cache_hits: int = 0
    encode_cache_misses: int = 0

    def row(self) -> tuple:
        return (self.label, self.strategy, round(self.seconds, 4),
                self.logical_io, self.statements, self.result_rows)


def _measure(db: Database, label: str, strategy_name: str,
             run) -> ExperimentResult:
    before = db.stats.snapshot()
    statements_before = db.stats.statements
    started = time.perf_counter()
    result = run()
    elapsed = time.perf_counter() - started
    diff = db.stats.diff_since(before)
    return ExperimentResult(
        label=label, strategy=strategy_name, seconds=elapsed,
        logical_io=diff.logical_io(),
        case_evaluations=diff.case_evaluations,
        statements=db.stats.statements - statements_before,
        result_rows=result.n_rows,
        result_columns=result.schema.width(),
        encode_cache_hits=diff.encode_cache_hits,
        encode_cache_misses=diff.encode_cache_misses)


def run_vpct_experiment(db: Database, spec: QuerySpec,
                        strategy: Optional[VerticalStrategy] = None,
                        name: str = "") -> ExperimentResult:
    """One Table 4 cell: a Vpct query under one vertical strategy."""
    strategy = strategy or VerticalStrategy()

    def run():
        plan = generate_plan(db, spec.vpct_sql(), strategy)
        return execute_plan(db, plan).result

    return _measure(db, spec.label, name or strategy.describe(), run)


def run_hpct_experiment(db: Database, spec: QuerySpec,
                        strategy: Optional[HorizontalStrategy] = None,
                        name: str = "") -> ExperimentResult:
    """One Table 5 cell: an Hpct query under one CASE strategy."""
    strategy = strategy or HorizontalStrategy()

    def run():
        plan = generate_plan(db, spec.hpct_sql(), strategy)
        return execute_plan(db, plan).result

    return _measure(db, spec.label, name or strategy.describe(), run)


def run_hagg_experiment(db: Database, spec: QuerySpec,
                        strategy: Union[HorizontalStrategy,
                                        HorizontalAggStrategy,
                                        None] = None,
                        func: str = "sum",
                        name: str = "") -> ExperimentResult:
    """One DMKD Table 3 cell: a horizontal aggregation under a CASE or
    SPJ strategy."""
    strategy = strategy or HorizontalStrategy()

    def run():
        plan = generate_plan(db, spec.hagg_sql(func), strategy)
        return execute_plan(db, plan).result

    return _measure(db, spec.label, name or strategy.describe(), run)


def run_olap_experiment(db: Database, spec: QuerySpec,
                        name: str = "OLAP extensions"
                        ) -> ExperimentResult:
    """One Table 6 baseline cell: the window-function rendition."""

    def run():
        sql = generate_olap_percentage_query(spec.vpct_sql())
        return db.execute(sql)

    return _measure(db, spec.label, name, run)


# ----------------------------------------------------------------------
# Encoding-cache benchmark (cold vs warm over Tables 4/5 workloads)
# ----------------------------------------------------------------------
def run_encoding_cache_benchmark(employee_n: int = 100_000,
                                 sales_n: int = 300_000,
                                 warm_repeats: int = 3,
                                 include_widest: bool = False) -> dict:
    """Cold-vs-warm sweep of the dictionary-encoding cache.

    For every SIGMOD Table 4 (Vpct) and Table 5 (Hpct) query the cache
    is cleared, the query runs once cold, then ``warm_repeats`` more
    times warm (fact-table encodings served from the cache), and once
    with the cache disabled to check the logical-I/O cost model is
    bit-identical either way.  The widest Hpct row (``dept,store``,
    10,000 result columns) is skipped by default and recorded under
    ``"skipped"`` -- pass ``include_widest=True`` to run it.
    """
    from repro.datagen import load_employee, load_sales

    db = Database()
    load_employee(db, employee_n)
    load_sales(db, sales_n)
    cache = db.catalog.encoding_cache

    from repro.bench.workloads import SIGMOD_QUERIES

    queries: list[tuple[str, str, str, Strategy]] = []
    skipped: list[str] = []
    for spec in SIGMOD_QUERIES:
        queries.append((spec.label, "vpct", spec.vpct_sql(),
                        VerticalStrategy()))
        if "dept,store" in spec.label and not include_widest:
            skipped.append(f"{spec.label} (hpct)")
            continue
        queries.append((spec.label, "hpct", spec.hpct_sql(),
                        HorizontalStrategy(source="FV")))

    def run_once(sql: str, strategy: Strategy) -> tuple[float, int]:
        before = db.stats.snapshot()
        started = time.perf_counter()
        plan = generate_plan(db, sql, strategy)
        execute_plan(db, plan)
        elapsed = time.perf_counter() - started
        return elapsed, db.stats.diff_since(before).logical_io()

    entries = []
    for label, form, sql, strategy in queries:
        db.set_use_encoding_cache(True)
        cache.clear()
        cache.reset_counters()
        cold_seconds, cold_io = run_once(sql, strategy)
        warm_runs = []
        for _ in range(warm_repeats):
            seconds, warm_io = run_once(sql, strategy)
            warm_runs.append(seconds)
            assert warm_io == cold_io
        warm_seconds = min(warm_runs)
        info = cache.info()

        db.set_use_encoding_cache(False)
        off_seconds, off_io = run_once(sql, strategy)
        db.set_use_encoding_cache(True)

        entries.append({
            "label": label,
            "form": form,
            "cold_seconds": round(cold_seconds, 6),
            "warm_seconds": round(warm_seconds, 6),
            "warm_runs": [round(s, 6) for s in warm_runs],
            "cache_off_seconds": round(off_seconds, 6),
            "speedup_warm_over_cold": round(
                cold_seconds / warm_seconds, 4) if warm_seconds else None,
            "hits": info["hits"],
            "misses": info["misses"],
            "hit_rate": round(info["hit_rate"], 4),
            "logical_io": cold_io,
            "logical_io_identical_cache_off": off_io == cold_io,
        })

    total_cold = sum(e["cold_seconds"] for e in entries)
    total_warm = sum(e["warm_seconds"] for e in entries)
    return {
        "workload": "SIGMOD Tables 4+5 (vpct + hpct per query spec)",
        "scales": {"employee_n": employee_n, "sales_n": sales_n},
        "warm_repeats": warm_repeats,
        "skipped": skipped,
        "queries": entries,
        "summary": {
            "total_cold_seconds": round(total_cold, 6),
            "total_warm_seconds": round(total_warm, 6),
            "speedup_warm_over_cold": round(total_cold / total_warm, 4)
            if total_warm else None,
            "all_logical_io_identical": all(
                e["logical_io_identical_cache_off"] for e in entries),
            "cache": cache.info(),
        },
    }


def main(argv: Optional[list[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Engine benchmark suites; each writes a "
                    "machine-readable JSON report.")
    parser.add_argument("--suite",
                        choices=("encoding-cache", "concurrency",
                                 "obs", "multicore", "storage",
                                 "overload", "views", "cube"),
                        default="encoding-cache",
                        help="encoding-cache: cold/warm dictionary-"
                             "encoding sweep; concurrency: service "
                             "throughput, intra-query parallelism and "
                             "mixed read/write latency; obs: tracing "
                             "overhead on and off; multicore: process "
                             "vs thread vs serial backends on one "
                             "compute-heavy aggregation; storage: "
                             "cold/warm buffer pool and memory-vs-disk "
                             "overhead on the page-based backend; "
                             "overload: open-loop arrival ramp past "
                             "service capacity with load shedding on "
                             "vs off, plus the deadline-token "
                             "bookkeeping overhead; views: "
                             "materialized percentage views -- delta "
                             "maintenance vs full recompute at a 1% "
                             "update rate, and view-answered reads vs "
                             "cold Vpct evaluation; cube: shared-scan "
                             "grouping-sets evaluation vs the per-set "
                             "GROUP BY rewrite, with bit-identity "
                             "checks")
    parser.add_argument("--out", default=None,
                        help="output path (default: BENCH_<suite>.json)")
    parser.add_argument("--employee", type=int, default=100_000)
    parser.add_argument("--sales", type=int, default=300_000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--full", action="store_true",
                        help="include the 10,000-column Hpct row "
                             "(encoding-cache suite)")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be at least 1")

    if args.suite == "concurrency":
        from repro.bench.concurrency import run_concurrency_benchmark

        out = args.out or "BENCH_concurrency.json"
        # The concurrency workload is service-bound, not scan-bound;
        # cap the fact table so the default run stays interactive.
        report = run_concurrency_benchmark(
            sales_n=min(args.sales, 120_000), repeats=args.repeats)
        write_report(report, out, args.suite)
        summary = report["summary"]
        print(f"wrote {out}: cpu_count={report['cpu_count']}, "
              f"{summary['best_read_throughput_qps']} qps best, "
              f"read x{summary['read_speedup_at_4_workers']} / "
              f"intra-query x"
              f"{summary['intra_query_speedup_at_4_workers']} at 4 "
              f"workers, parallel bit-identical="
              f"{summary['all_parallel_results_bit_identical']}")
        return 0

    if args.suite == "overload":
        from repro.bench.overload import run_overload_benchmark

        out = args.out or "BENCH_overload.json"
        # The overload workload is admission-bound, not scan-bound;
        # cap the fact table so the default run stays interactive.
        report = run_overload_benchmark(
            sales_n=min(args.sales, 60_000), repeats=args.repeats)
        write_report(report, out, args.suite)
        summary = report["summary"]
        print(f"wrote {out}: goodput shed-on "
              f"{summary['goodput_shed_on_qps']} qps vs shed-off "
              f"{summary['goodput_shed_off_qps']} qps, shed rate "
              f"{summary['shed_rate']}, accepted p99 "
              f"{summary['accepted_p99_shed_on_seconds']}s vs "
              f"unloaded {summary['unloaded_p99_seconds']}s "
              f"(under 2x: {summary['accepted_p99_under_2x_unloaded']}"
              f"), deadline overhead "
              f"{summary['deadline_overhead_fraction'] * 100:+.3f}% "
              f"(under 5% bar: "
              f"{summary['deadline_overhead_within_5pct']})")
        return 0

    if args.suite == "views":
        from repro.bench.views import run_views_benchmark

        out = args.out or "BENCH_views.json"
        # The views workload is maintenance-bound, not scan-bound; cap
        # the fact table so the default run stays interactive.
        report = run_views_benchmark(
            sales_n=min(args.sales, 200_000), repeats=args.repeats)
        write_report(report, out, args.suite)
        summary = report["summary"]
        print(f"wrote {out}: delta maintenance "
              f"x{summary['delta_speedup_over_full']} vs full "
              f"recompute at 1% updates (>=5x bar: "
              f"{summary['delta_speedup_at_least_5x']}), view reads "
              f"x{summary['view_read_speedup_over_cold']} vs cold "
              f"Vpct (>=10x bar: "
              f"{summary['view_read_speedup_at_least_10x']}), "
              f"bit-identical={summary['view_bit_identical']}")
        return 0

    if args.suite == "cube":
        from repro.bench.cube import run_cube_benchmark

        out = args.out or "BENCH_cube.json"
        report = run_cube_benchmark(sales_n=args.sales,
                                    repeats=args.repeats)
        write_report(report, out, args.suite)
        summary = report["summary"]
        print(f"wrote {out}: shared-scan "
              f"x{summary['min_speedup_at_4plus_sets']} min at 4+ "
              f"sets (>=2x bar: "
              f"{summary['speedup_at_least_2x_at_4plus_sets']}), "
              f"best x{summary['best_speedup']}, "
              f"bit-identical={summary['all_bit_identical']}")
        return 0

    if args.suite == "multicore":
        from repro.bench.multicore import run_multicore_benchmark

        out = args.out or "BENCH_multicore.json"
        report = run_multicore_benchmark(sales_n=args.sales,
                                         repeats=args.repeats)
        write_report(report, out, args.suite)
        summary = report["summary"]
        print(f"wrote {out}: cpu_count={report['cpu_count']}, "
              f"process x{summary['process_speedup_at_4_workers']} at "
              f"4 workers (target met: "
              f"{summary['speedup_target_met']}), overhead "
              f"{summary['process_overhead_fraction'] * 100:+.1f}% "
              f"(within 10%: "
              f"{summary['process_overhead_within_10pct']}), "
              f"bit-identical="
              f"{summary['all_results_bit_identical']}")
        return 0

    if args.suite == "storage":
        from repro.bench.storage import run_storage_benchmark

        out = args.out or "BENCH_storage.json"
        # The storage workload is I/O-shaped, not scan-bound; cap the
        # fact table so the default run stays interactive.
        report = run_storage_benchmark(
            sales_n=min(args.sales, 120_000), repeats=args.repeats)
        write_report(report, out, args.suite)
        summary = report["summary"]
        ab = report["disk_vs_memory"]
        mem_over = report["memory_overhead"]
        print(f"wrote {out}: cold {summary['cold_seconds']}s vs warm "
              f"{summary['warm_seconds']}s "
              f"(x{summary['cold_over_warm']}), warm hit rate "
              f"{summary['warm_hit_rate']}, disk-vs-memory "
              f"{ab['overhead_fraction'] * 100:+.1f}%, memory-backend "
              f"overhead estimated "
              f"{mem_over['estimated_overhead_fraction'] * 100:.3f}% "
              f"(under 5% bar: "
              f"{summary['memory_overhead_within_5pct']})")
        return 0

    if args.suite == "obs":
        from repro.bench.obs import run_obs_benchmark

        out = args.out or "BENCH_obs.json"
        # The obs workload is hook-bound, not scan-bound; cap the fact
        # table so the default run stays interactive.
        report = run_obs_benchmark(sales_n=min(args.sales, 60_000),
                                   repeats=args.repeats)
        write_report(report, out, args.suite)
        summary = report["summary"]
        print(f"wrote {out}: tracing on "
              f"+{summary['tracing_on_overhead_fraction'] * 100:.1f}%"
              f", tracing off estimated "
              f"+{summary['estimated_tracing_off_overhead_fraction'] * 100:.3f}%"
              f", under 5% bar="
              f"{summary['tracing_off_overhead_under_5pct']}")
        return 0

    out = args.out or "BENCH_encoding_cache.json"
    report = run_encoding_cache_benchmark(
        employee_n=args.employee, sales_n=args.sales,
        warm_repeats=args.repeats, include_widest=args.full)
    write_report(report, out, args.suite)
    summary = report["summary"]
    print(f"wrote {out}: "
          f"{summary['speedup_warm_over_cold']}x warm-over-cold, "
          f"logical I/O identical="
          f"{summary['all_logical_io_identical']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
