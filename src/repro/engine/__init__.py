"""In-memory columnar SQL engine (the substrate the paper ran on Teradata)."""

from repro.engine.catalog import Catalog
from repro.engine.column import ColumnData
from repro.engine.schema import ColumnDef, TableSchema
from repro.engine.stats import StatsCollector
from repro.engine.table import Table
from repro.engine.types import SQLType

__all__ = [
    "Catalog",
    "ColumnData",
    "ColumnDef",
    "SQLType",
    "StatsCollector",
    "Table",
    "TableSchema",
]
