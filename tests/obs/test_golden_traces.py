"""Golden execution traces, one per paper evaluation strategy.

Each test runs a strategy on the papers' worked examples under a
manual clock, renders the EXPLAIN ANALYZE text, normalizes generated
temp-table names, and compares byte-for-byte against the checked-in
golden under ``tests/obs/golden/``.  Regenerate intentionally changed
traces with ``pytest tests/obs --update-golden``.

These are the strongest regression net in the repo: any change to the
plan shape (statement count, operator order), to the cost accounting
(rows scanned/joined/written per operator), or to the trace format
shows up as a golden diff.
"""

import pytest

from repro.core import (HorizontalAggStrategy, HorizontalStrategy,
                        VerticalStrategy)
from repro.core.execute import run_explain_analyze
from repro.obs.tracer import audit_statement_span, validate_span_tree

from tests.obs.conftest import normalize_temp_names

VPCT_SQL = ("SELECT state, Vpct(salesamt) FROM sales "
            "GROUP BY state, city")
HPCT_SQL = ("SELECT store, Hpct(salesamt BY dweek) FROM sales "
            "GROUP BY store")
HAGG_SQL = ("SELECT gender, sum(salary BY maritalstatus) "
            "FROM employee GROUP BY gender")


def _golden_text(db, sql, strategy) -> str:
    report = run_explain_analyze(db, sql, strategy=strategy)
    validate_span_tree(report.trace)
    for statement in report.trace.find(kind="statement"):
        audit_statement_span(statement)
    return normalize_temp_names(report.explain_analyze())


class TestVerticalGoldens:
    """Vpct: the paper's Table 4 strategies on the Table 1 example."""

    def test_vertical_insert(self, traced_sales_db, golden):
        golden("vertical-insert", _golden_text(
            traced_sales_db, VPCT_SQL,
            VerticalStrategy(use_update=False)))

    def test_vertical_update(self, traced_sales_db, golden):
        golden("vertical-update", _golden_text(
            traced_sales_db, VPCT_SQL,
            VerticalStrategy(use_update=True)))

    def test_vertical_single_statement(self, traced_sales_db, golden):
        golden("vertical-single-statement", _golden_text(
            traced_sales_db, VPCT_SQL,
            VerticalStrategy(single_statement=True,
                             create_indexes=False)))


class TestHorizontalGoldens:
    """Hpct: the CASE strategies (Table 5) on the Table 3 example."""

    def test_horizontal_case_from_f(self, traced_store_db, golden):
        golden("horizontal-case-f", _golden_text(
            traced_store_db, HPCT_SQL, HorizontalStrategy(source="F")))

    def test_horizontal_case_from_fv(self, traced_store_db, golden):
        golden("horizontal-case-fv", _golden_text(
            traced_store_db, HPCT_SQL,
            HorizontalStrategy(source="FV")))


class TestHorizontalAggGoldens:
    """Hagg: the companion paper's SPJ strategies."""

    def test_hagg_spj_from_f(self, traced_employee_db, golden):
        golden("hagg-spj-f", _golden_text(
            traced_employee_db, HAGG_SQL,
            HorizontalAggStrategy(source="F")))

    def test_hagg_spj_from_fv(self, traced_employee_db, golden):
        golden("hagg-spj-fv", _golden_text(
            traced_employee_db, HAGG_SQL,
            HorizontalAggStrategy(source="FV")))


class TestSQLExplainAnalyzeGolden:
    """The engine-level EXPLAIN ANALYZE statement (plain SQL path)."""

    def test_explain_analyze_join_group_by(self, traced_db, golden):
        db = traced_db
        db.execute("CREATE TABLE t (a INT, b INT)")
        db.execute("INSERT INTO t VALUES (1, 10), (1, 20), (2, 30)")
        db.execute("CREATE TABLE u (a INT, tag VARCHAR)")
        db.execute("INSERT INTO u VALUES (1, 'x'), (2, 'y')")
        result = db.execute(
            "EXPLAIN ANALYZE SELECT t.a, u.tag, sum(t.b) "
            "FROM t, u WHERE t.a = u.a GROUP BY t.a, u.tag")
        text = "\n".join(line for (line,) in result.to_rows())
        golden("sql-explain-analyze", normalize_temp_names(text))


class TestGoldenDeterminism:
    """The same strategy rendered twice (fresh database each time)
    must produce identical text -- the property the golden files rely
    on."""

    @pytest.mark.parametrize("strategy", [
        VerticalStrategy(use_update=False),
        VerticalStrategy(use_update=True),
    ])
    def test_repeat_runs_identical(self, strategy):
        from repro import Database
        from repro.obs.clock import ManualClock
        from tests.conftest import PAPER_SALES_ROWS

        texts = []
        for _ in range(2):
            db = Database(tracing=True, clock=ManualClock())
            db.load_table(
                "sales",
                [("rid", "int"), ("state", "varchar"),
                 ("city", "varchar"), ("salesamt", "real")],
                PAPER_SALES_ROWS, primary_key=["rid"])
            texts.append(_golden_text(db, VPCT_SQL, strategy))
        assert texts[0] == texts[1]
