"""The ``cube`` fuzz family: generator shapes, the UNION ALL sqlite
oracle, and differential smoke runs across backends and storage."""

import pytest

from repro.fuzz.dialect import DialectError, cube_to_union_sql
from repro.fuzz.generator import FAMILIES, CaseGenerator, FuzzCase
from repro.fuzz.runner import run_case


def _cube_cases(count, seed=0):
    generator = CaseGenerator(seed=seed, families=("cube",))
    return list(generator.cases(count))


class TestGenerator:
    def test_family_filter_restricts_the_mix(self):
        assert {c.family for c in _cube_cases(20)} == {"cube"}

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown family"):
            CaseGenerator(families=("cube", "nope"))
        with pytest.raises(ValueError, match="at least one"):
            CaseGenerator(families=())

    def test_default_mix_still_covers_every_family(self):
        seen = {c.family for c in CaseGenerator(seed=1).cases(120)}
        assert seen == set(FAMILIES)

    def test_cube_cases_carry_a_grouping_construct(self):
        for case in _cube_cases(20):
            assert case.group_by_clause
            sql = case.query_sql()
            assert ("CUBE" in sql or "ROLLUP" in sql
                    or "GROUPING SETS" in sql)

    def test_cases_round_trip_through_corpus_format(self):
        for case in _cube_cases(5):
            clone = FuzzCase.from_dict(case.to_dict())
            assert clone == case

    def test_old_corpus_entries_without_clause_still_load(self):
        case = _cube_cases(1)[0]
        data = case.to_dict()
        data.pop("group_by_clause")
        data["family"] = "plain"
        legacy = FuzzCase.from_dict(data)
        assert legacy.group_by_clause == ""
        assert " GROUP BY " + ", ".join(legacy.group_by) \
            in legacy.query_sql()


class TestUnionOracle:
    def test_rollup_expands_to_prefix_pieces(self):
        sql = cube_to_union_sql(
            "SELECT d1, d2, count(*) FROM f GROUP BY ROLLUP(d1, d2)")
        pieces = sql.split(" UNION ALL ")
        assert len(pieces) == 3
        assert "GROUP BY d1, d2" in pieces[0]
        assert "GROUP BY d1" in pieces[1]
        assert "GROUP BY" not in pieces[2]
        # absent dims project as NULL literals
        assert "NULL" in pieces[1] and "NULL" in pieces[2]

    def test_grouping_becomes_constant_masks(self):
        sql = cube_to_union_sql(
            "SELECT d1, grouping(d1), count(*) FROM f "
            "GROUP BY GROUPING SETS ((d1), ())")
        first, second = sql.split(" UNION ALL ")
        assert "SELECT d1, 0, count(*)" in first
        assert "SELECT NULL, 1, count(*)" in second

    def test_division_is_cast_for_sqlite(self):
        sql = cube_to_union_sql(
            "SELECT d1, sum(m1) / count(*) FROM f GROUP BY CUBE(d1)")
        assert "CAST(sum(m1) AS REAL)" in sql

    @pytest.mark.parametrize("sql", (
        "SELECT d1, count(*) FROM f GROUP BY d1",          # no sets
        "SELECT d1, count(*) FROM f GROUP BY CUBE(d1) "
        "ORDER BY 1",                                       # order by
        "SELECT d1, count(*) FROM f GROUP BY CUBE(d1) "
        "HAVING count(*) > 1",                              # having
    ))
    def test_uncovered_shapes_refused_loudly(self, sql):
        with pytest.raises(DialectError):
            cube_to_union_sql(sql)


class TestDifferentialSmoke:
    def test_cube_cases_consistent_with_union_oracle(self):
        for case in _cube_cases(15, seed=11):
            result = run_case(case)
            assert not result.divergent, result.divergence_report()
            names = [v.name for v in result.variants]
            assert names == ["engine:shared-scan", "sqlite:union-all"]

    def test_backends_and_disk_join_the_net(self):
        case = next(c for c in _cube_cases(30, seed=2)
                    if len(c.rows) >= 4)
        result = run_case(case,
                          backends=("serial", "thread", "process"),
                          storages=("disk",))
        assert not result.divergent, result.divergence_report()
        names = [v.name for v in result.variants]
        assert names == [
            "engine:shared-scan", "sqlite:union-all",
            "engine:shared-scan-serial", "engine:shared-scan-thread",
            "engine:shared-scan-process", "engine:shared-scan-disk",
        ]

    def test_injected_fold_bug_is_caught(self, monkeypatch):
        """Harness self-test: break the fold path (coarse levels get
        the wrong source values) and the union oracle must notice on
        some case."""
        from repro.engine import groupingsets as gs_mod

        real = gs_mod.fold_aggregate

        def broken(func, partial, mapping, n_coarse):
            data = real(func, partial, mapping, n_coarse)
            if func in ("count", "sum") and data.values.size:
                data.values[0] += 1
            return data

        monkeypatch.setattr(gs_mod, "fold_aggregate", broken)
        assert any(run_case(case).divergent
                   for case in _cube_cases(25, seed=5))
