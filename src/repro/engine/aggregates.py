"""Vectorized aggregate functions over a :class:`Grouping`.

SQL semantics implemented here (and relied on by the paper's Vpct
definition, which "preserves the semantics of sum()"):

* ``sum/avg/min/max`` skip NULL inputs; a group whose inputs are all
  NULL (or empty, for the global group over an empty table) yields NULL.
* ``count(expr)`` counts non-NULL inputs; ``count(*)`` counts rows;
  both yield 0 -- never NULL -- for empty groups.
* ``count(DISTINCT expr)`` counts distinct non-NULL values.
* ``avg`` returns REAL; ``sum``/``min``/``max`` keep the input type
  (INTEGER sums stay INTEGER).

The numpy bodies live in :mod:`repro.engine.kernels` -- the
executor-neutral kernel layer shared with the thread-partitioned and
multiprocess backends.  This module is the :class:`ColumnData`-facing
adapter: it unwraps columns into raw buffers, dispatches on function
name, and rewraps :class:`~repro.engine.kernels.PartialAggState`
results.  Keeping exactly one implementation of each numpy sequence is
what makes every backend bit-identical by construction.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.engine import kernels
from repro.engine.column import ColumnData
from repro.engine.encoding_cache import EncodingCache
from repro.engine.groupby import PartitionedGrouping, encode_column
from repro.engine.types import SQLType
from repro.errors import PlanningError


def _wrap(state: kernels.PartialAggState) -> ColumnData:
    return ColumnData(state.sql_type, state.values, state.nulls)


def count_star(group_ids: np.ndarray, n_groups: int) -> ColumnData:
    return _wrap(kernels.kernel_count_star(group_ids, n_groups))


def count_star_partitioned(pgrouping: PartitionedGrouping) -> ColumnData:
    """``count(*)`` computed per partition and scatter-merged."""
    from repro.core.partitioning import map_partitions

    def count_partition(part):
        return np.bincount(part.group_ids, minlength=part.n_groups)

    results = map_partitions(count_partition, pgrouping.partitions)
    n_groups = pgrouping.grouping.n_groups
    counts = np.zeros(n_groups, dtype=np.int64)
    for part, part_counts in zip(pgrouping.partitions, results):
        counts[part.global_groups] = part_counts
    return ColumnData(SQLType.INTEGER, counts,
                      np.zeros(n_groups, dtype=bool))


def compute_aggregate_partitioned(func: str, arg: ColumnData,
                                  distinct: bool,
                                  pgrouping: PartitionedGrouping
                                  ) -> ColumnData:
    """Partition-parallel :func:`compute_aggregate`.

    Each worker aggregates one hash partition -- which holds *complete*
    groups whose rows keep their original relative order -- so the
    merge is a pure scatter through ``global_groups`` with no partial
    re-aggregation.  That is the bit-identity argument: every group's
    addends are accumulated in exactly the serial order, so even
    floating-point sums match the serial path to the last bit.
    """
    from repro.core.partitioning import map_partitions

    def aggregate_partition(part):
        return compute_aggregate(func, arg.take(part.rows), distinct,
                                 part.group_ids, part.n_groups)

    results = map_partitions(aggregate_partition, pgrouping.partitions)
    n_groups = pgrouping.grouping.n_groups
    # Every partition yields the same result *SQL* type (it depends on
    # func and the argument type, not the data), but not necessarily
    # the same numpy dtype: np.bincount over a partition with no valid
    # rows reverts to int64 no matter what its weights were, so the
    # merge buffer is allocated from the SQL type, never from a
    # partition's array.
    proto = results[0]
    values = np.zeros(n_groups, dtype=proto.sql_type.numpy_dtype)
    nulls = np.zeros(n_groups, dtype=bool)
    for part, part_result in zip(pgrouping.partitions, results):
        values[part.global_groups] = part_result.values
        nulls[part.global_groups] = part_result.nulls
    return ColumnData(proto.sql_type, values, nulls)


def compute_aggregate(func: str, arg: ColumnData, distinct: bool,
                      group_ids: np.ndarray, n_groups: int,
                      cache: Optional[EncodingCache] = None) -> ColumnData:
    """Aggregate ``arg`` per group.

    ``func`` is one of sum/count/avg/min/max; ``count`` honors
    ``distinct`` (and can reuse a cached dictionary encoding of a
    base-table argument via ``cache``).
    """
    if func == "count":
        if distinct:
            encoded = encode_column(arg, cache)
            return _wrap(kernels.kernel_count_distinct(
                encoded.codes, encoded.cardinality, group_ids,
                n_groups))
        return _wrap(kernels.kernel_count(arg.nulls, group_ids,
                                          n_groups))
    if distinct:
        raise PlanningError(f"DISTINCT is only supported with count(), "
                            f"not {func}()")
    if func == "sum":
        return _wrap(kernels.kernel_sum(arg.values, arg.nulls,
                                        arg.sql_type, group_ids,
                                        n_groups))
    if func == "avg":
        return _wrap(kernels.kernel_avg(arg.values, arg.nulls,
                                        arg.sql_type, group_ids,
                                        n_groups))
    if func in ("min", "max"):
        if arg.sql_type == SQLType.VARCHAR:
            return _wrap(kernels.kernel_min_max_sorted(
                func, arg.values, arg.nulls, group_ids, n_groups))
        return _wrap(kernels.kernel_min_max(func, arg.values, arg.nulls,
                                            arg.sql_type, group_ids,
                                            n_groups))
    if func in ("var", "stdev"):
        return _wrap(kernels.kernel_var_stdev(
            func, arg.values, arg.nulls, arg.sql_type, group_ids,
            n_groups))
    raise PlanningError(f"unknown aggregate function {func}()")
