"""Delta maintenance of materialized-view state under DML.

The maintenance contract is *bitwise* equality with a from-scratch
recompute, which rules out classic +/- delta arithmetic for float
sums (addition is not associative).  Instead each DML adjusts group
membership incrementally and then **re-aggregates only the touched
groups** by gathering their member rows from the new base table in
original row order -- the same addend sequence the engine's kernels
(:func:`np.bincount` and friends) consume on a full scan -- so every
touched group's value is recomputed exactly, and every untouched
group's stored value is exactly what a full scan would produce.

Cost per statement: one O(changed rows) pass to re-key the changed
rows, one O(n) boolean gather to collect the touched groups' members,
and kernel work proportional to the touched member count -- against a
full refresh's O(n) re-keying plus kernels over every group.

Group lifecycle is count-based: membership counts track how many
WHERE-passing base rows each slot holds; a count reaching zero
retracts the slot (its key is removed from the index, the slot number
is never reused).  All of this happens on *clones* -- published
:class:`~repro.views.state.ViewState` objects are never mutated, so a
catalog savepoint rollback restores consistent (table, view) pairs.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.engine import cancel
from repro.engine.aggregates import compute_aggregate, count_star
from repro.engine.expressions import Frame, evaluate
from repro.sql import ast
from repro.views import rewrite
from repro.views.state import (DeltaInfo, GroupLevel, MaterializedView,
                               ViewDefinition, ViewState, normalize_key)

#: Deliberately mis-maintain state for harness self-tests (set via
#: ``fuzz --views --inject-bug ...``; see :data:`VIEWS_BUGS`).
INJECT_BUG: Optional[str] = None

#: Bugs the views fuzz oracle must be able to see.
VIEWS_BUGS = ("views-skip-retraction", "views-stale-denominator")


# ----------------------------------------------------------------------
# Building and refreshing
# ----------------------------------------------------------------------
def build_state(definition: ViewDefinition, table,
                stats=None) -> ViewState:
    """Full build: every level keyed and aggregated from scratch."""
    levels = [GroupLevel(columns, measures)
              for columns, measures in definition.level_specs()]
    state = ViewState(levels)
    state.n_rows = table.n_rows
    positions = np.arange(table.n_rows, dtype=np.int64)
    for level in levels:
        _bootstrap_types(definition, level, table, stats)
        ids, touched, _ = _assign_ids(definition, level, table,
                                      positions, stats)
        level.group_ids = ids
        _recompute(definition, level, table, sorted(touched), stats)
    return state


def refresh(definition: ViewDefinition, table,
            stats=None) -> MaterializedView:
    """Full recompute against ``table`` (REFRESH / stale fallback)."""
    state = build_state(definition, table, stats)
    result = rewrite.derive(definition, state)
    return MaterializedView(definition, state, result, table.version)


def build_matview(catalog, name: str, select: ast.Select,
                  stats=None) -> MaterializedView:
    """Analyze + build + derive, for CREATE MATERIALIZED VIEW."""
    from repro.views.state import analyze_view

    definition = analyze_view(catalog, name, select)
    table = catalog.table(definition.base_table)
    return refresh(definition, table, stats)


def maintain(mv: MaterializedView, old_table, new_table, change,
             stats=None) -> tuple[MaterializedView, str]:
    """Bring ``mv`` up to date with one DML on its base table.

    ``change`` is ``("insert", old_row_count)``,
    ``("update", updated_row_mask)`` or ``("delete", keep_mask)``
    describing how ``new_table`` relates to ``old_table``.  Returns
    the replacement view and the maintenance mode (``"delta"`` when
    the view matched the pre-statement table version, ``"full"`` when
    it was stale and had to be rebuilt).
    """
    if mv.base_version != old_table.version:
        return refresh(mv.definition, new_table, stats), "full"
    state, delta = apply_dml(mv.definition, mv.state, new_table,
                             change, stats)
    result = rewrite.derive_delta(mv.definition, state, delta)
    return MaterializedView(mv.definition, state, result,
                            new_table.version), "delta"


# ----------------------------------------------------------------------
# The three DML delta paths
# ----------------------------------------------------------------------
def apply_dml(definition: ViewDefinition, state: ViewState, new_table,
              change, stats=None) -> tuple[ViewState, DeltaInfo]:
    """Apply one DML to a *clone* of ``state``; never mutates it."""
    kind, arg = change
    twin = state.clone()
    twin.n_rows = new_table.n_rows
    delta = DeltaInfo([], [], [])
    for level in twin.levels:
        if kind == "insert":
            touched, births, deaths = _level_insert(
                definition, level, new_table, arg, stats)
        elif kind == "update":
            touched, births, deaths = _level_update(
                definition, level, new_table, arg, stats)
        elif kind == "delete":
            touched, births, deaths = _level_delete(
                definition, level, new_table, arg, stats)
        else:  # pragma: no cover - caller bug
            raise ValueError(f"unknown DML kind {kind!r}")
        _recompute(definition, level, new_table, touched, stats)
        delta.touched.append(touched)
        delta.births.append(births)
        delta.deaths.append(deaths)
    return twin, delta


def _level_insert(definition, level, new_table, old_rows, stats
                  ) -> tuple[list[int], bool, bool]:
    positions = np.arange(old_rows, new_table.n_rows, dtype=np.int64)
    ids, touched, births = _assign_ids(definition, level, new_table,
                                       positions, stats)
    level.group_ids = np.concatenate([level.group_ids, ids])
    return sorted(touched), births, False


def _level_update(definition, level, new_table, updated_mask, stats
                  ) -> tuple[list[int], bool, bool]:
    positions = np.flatnonzero(np.asarray(updated_mask, dtype=bool))
    old_at = level.group_ids[positions]
    new_at, touched, births = _assign_ids(definition, level, new_table,
                                          positions, stats)
    deaths = _drop_members(level, old_at)
    group_ids = level.group_ids.copy()
    group_ids[positions] = new_at
    level.group_ids = group_ids
    for slot in old_at[old_at >= 0]:
        touched.add(int(slot))
    live = set(level.slots.values())
    return sorted(touched & live), births, deaths


def _level_delete(definition, level, new_table, keep_mask, stats
                  ) -> tuple[list[int], bool, bool]:
    keep = np.asarray(keep_mask, dtype=bool)
    removed = level.group_ids[~keep]
    deaths = _drop_members(level, removed)
    level.group_ids = level.group_ids[keep]
    touched = {int(s) for s in removed[removed >= 0]}
    live = set(level.slots.values())
    return sorted(touched & live), False, deaths


def _drop_members(level: GroupLevel, ids: np.ndarray) -> bool:
    """Decrement membership; retract slots that reach zero."""
    ids = ids[ids >= 0]
    if not len(ids):
        return False
    drops = np.bincount(ids, minlength=level.n_slots)
    deaths = False
    for slot in np.flatnonzero(drops):
        slot = int(slot)
        level.counts[slot] -= int(drops[slot])
        if level.counts[slot] == 0:
            if INJECT_BUG == "views-skip-retraction":
                continue
            key = normalize_key(level.keys[slot])
            if level.slots.get(key) == slot:
                del level.slots[key]
                deaths = True
    return deaths


# ----------------------------------------------------------------------
# Keying and touched-group re-aggregation
# ----------------------------------------------------------------------
def _frame_over(definition, table, positions, stats):
    sub = table.take(positions)
    frame = Frame(sub.n_rows)
    frame.add_table(definition.binding, sub)
    return sub, frame


def _where_mask(definition, frame, n: int, stats) -> np.ndarray:
    if definition.where is None:
        return np.ones(n, dtype=bool)
    col = evaluate(definition.where, frame, stats)
    return np.asarray(col.values, dtype=bool) & ~col.nulls


def _assign_ids(definition, level: GroupLevel, table,
                positions: np.ndarray, stats
                ) -> tuple[np.ndarray, set[int], bool]:
    """Slot ids for the rows at ``positions`` of ``table``.

    Rows failing the WHERE clause get ``-1``; new keys are appended as
    fresh slots.  Membership counts are incremented here (callers that
    replace old memberships decrement separately, after assignment, so
    an unchanged group never transits through zero)."""
    sub, frame = _frame_over(definition, table, positions, stats)
    n = sub.n_rows
    passing = _where_mask(definition, frame, n, stats)
    key_cols = [evaluate(ast.ColumnRef(name=c), frame, stats)
                for c in level.columns]
    ids = np.full(n, -1, dtype=np.int64)
    touched: set[int] = set()
    births = False
    for i in range(n):
        if not passing[i]:
            continue
        raw = tuple(col[i] for col in key_cols)
        key = normalize_key(raw)
        slot = level.slots.get(key)
        if slot is None:
            slot = level.n_slots
            level.slots[key] = slot
            level.keys.append(raw)
            level.counts.append(0)
            for values in level.values:
                values.append(None)
            births = True
        level.counts[slot] += 1
        ids[i] = slot
        touched.add(slot)
    return ids, touched, births


def _recompute(definition, level: GroupLevel, table,
               touched: list[int], stats) -> None:
    """Re-aggregate the touched slots from their member rows.

    The gather preserves base-table row order, so each group's addends
    hit the kernels in exactly the sequence a full scan would feed
    them -- the bit-identity argument for float sums."""
    if not touched:
        return
    from repro.engine.executor import _concrete

    ids = level.group_ids
    flag = np.zeros(level.n_slots, dtype=bool)
    flag[touched] = True
    valid = ids >= 0
    member = valid & flag[np.where(valid, ids, 0)]
    positions = np.flatnonzero(member)
    remap = np.full(level.n_slots, -1, dtype=np.int64)
    remap[touched] = np.arange(len(touched), dtype=np.int64)
    local = remap[ids[positions]]
    sub, frame = _frame_over(definition, table, positions, stats)
    for m, spec in enumerate(level.measures):
        cancel.checkpoint("view-maintenance")
        if spec.argument is None:
            col = count_star(local, len(touched))
        else:
            arg = _concrete(evaluate(spec.argument, frame, stats))
            col = compute_aggregate(spec.func, arg, spec.distinct,
                                    local, len(touched))
        for j, slot in enumerate(touched):
            level.values[m][slot] = col[j]


def _bootstrap_types(definition, level: GroupLevel, table,
                     stats) -> None:
    """Pin each measure's result type via a zero-row kernel run, so
    derives of views with no (remaining) groups still carry the exact
    column types a recompute would produce."""
    from repro.engine.executor import _concrete

    empty = np.empty(0, dtype=np.int64)
    _, frame = _frame_over(definition, table, empty, stats)
    for m, spec in enumerate(level.measures):
        if spec.argument is None:
            col = count_star(empty, 0)
        else:
            arg = _concrete(evaluate(spec.argument, frame, stats))
            col = compute_aggregate(spec.func, arg, spec.distinct,
                                    empty, 0)
        level.measure_types[m] = col.sql_type
