"""Executor-neutral aggregate kernels and morsel planning.

This is the operator layer every execution backend shares.  A *kernel*
is a pure function over raw numpy buffers::

    (value/null buffers, group_ids, n_groups) -> PartialAggState

with no engine objects in its signature: no ``ColumnData``, no frames,
no catalog.  The serial path (:mod:`repro.engine.aggregates`), the
thread-partitioned path (:mod:`repro.core.partitioning`) and the
multiprocess shared-memory backend
(:mod:`repro.engine.process_backend`) all call the *same* kernel
bodies, so a numerical behavior exists exactly once -- including the
dtype edge cases the differential fuzzer caught (an empty
``np.bincount`` reverts to int64 regardless of its weights dtype,
which is why merge buffers are always allocated from the result SQL
type, never from a partial's array).

**Bit-identity across backends.**  Floating-point addition is not
associative, so parallel execution is only bit-identical to serial
execution if every group's addends are accumulated in the serial
order.  Two partitioning schemes guarantee that here:

* hash partitioning (thread backend): each partition holds *complete*
  groups with rows in original order;
* morsel partitioning (process backend, :func:`plan_morsels`): morsels
  are contiguous ranges of the *stable group-sorted* row permutation
  with cuts snapped to group boundaries, so again every group lives
  wholly inside one morsel and its rows keep their original relative
  order.  The merge is then a contiguous slice assignment -- no
  re-aggregation, no reordering, no rounding drift.

A consequence worth stating: one giant group is unsplittable (it is a
single morsel), exactly as a skewed hash partition is.  Skew across
*many* groups is what morsels fix -- workers pull roughly equal row
ranges regardless of how unevenly groups are sized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.engine import cancel
from repro.engine.types import SQLType
from repro.errors import PlanningError, TypeMismatchError


@dataclass
class PartialAggState:
    """One kernel's output for one (morsel, aggregate) pair.

    Plain data -- numpy arrays plus the result's SQL type -- so it
    pickles cheaply across a process boundary (size is O(groups), not
    O(rows)).  ``values``/``nulls`` cover a *contiguous* group range;
    the merge is ``out[g_lo:g_hi] = partial``.
    """

    sql_type: SQLType
    values: np.ndarray
    nulls: np.ndarray

    def __len__(self) -> int:
        return len(self.values)


def result_sql_type(func: str, arg_type: Optional[SQLType]) -> SQLType:
    """The SQL type ``func`` over an ``arg_type`` argument returns.

    This depends only on the function and the declared argument type,
    never on the data -- which is what lets a parallel merge allocate
    its buffer before any partial arrives (and why an all-NULL
    partial's int64 ``bincount`` artifact cannot poison the result
    dtype).
    """
    if func == "count":
        return SQLType.INTEGER
    if func in ("avg", "var", "stdev"):
        return SQLType.REAL
    if func == "sum":
        return SQLType.INTEGER if arg_type == SQLType.INTEGER \
            else SQLType.REAL
    if func in ("min", "max"):
        if arg_type is None:
            return SQLType.REAL
        return arg_type
    raise PlanningError(f"unknown aggregate function {func}()")


# ----------------------------------------------------------------------
# Kernels.  Each body is the single implementation of its aggregate's
# numpy sequence; repro.engine.aggregates wraps these for the serial
# and thread paths, repro.engine.process_backend for workers.
# ----------------------------------------------------------------------
def kernel_count_star(group_ids: np.ndarray,
                      n_groups: int) -> PartialAggState:
    counts = np.bincount(group_ids, minlength=n_groups)
    return PartialAggState(SQLType.INTEGER, counts.astype(np.int64),
                           np.zeros(n_groups, dtype=bool))


def kernel_count(nulls: np.ndarray, group_ids: np.ndarray,
                 n_groups: int) -> PartialAggState:
    valid = ~nulls
    counts = np.bincount(group_ids[valid], minlength=n_groups)
    return PartialAggState(SQLType.INTEGER, counts.astype(np.int64),
                           np.zeros(n_groups, dtype=bool))


def kernel_count_distinct(codes: np.ndarray, cardinality: int,
                          group_ids: np.ndarray,
                          n_groups: int) -> PartialAggState:
    """count(DISTINCT x) over pre-computed dictionary codes.

    ``codes`` follow the :class:`~repro.engine.groupby.EncodedColumn`
    convention (0 = NULL); encoding happens on the coordinator so the
    encoding cache is charged identically on every backend.
    """
    valid = codes != 0
    if not valid.any():
        zeros = np.zeros(n_groups, dtype=np.int64)
        return PartialAggState(SQLType.INTEGER, zeros,
                               np.zeros(n_groups, dtype=bool))
    pairs = group_ids[valid] * np.int64(cardinality) + codes[valid]
    unique_pairs = np.unique(pairs)
    owner = unique_pairs // np.int64(cardinality)
    counts = np.bincount(owner, minlength=n_groups)
    return PartialAggState(SQLType.INTEGER, counts.astype(np.int64),
                           np.zeros(n_groups, dtype=bool))


def _require_numeric(func: str, sql_type: Optional[SQLType]) -> None:
    if sql_type is None or not sql_type.is_numeric:
        raise TypeMismatchError(
            f"{func}() requires a numeric argument, got {sql_type}")


def kernel_sum(values: np.ndarray, nulls: np.ndarray,
               sql_type: Optional[SQLType], group_ids: np.ndarray,
               n_groups: int) -> PartialAggState:
    _require_numeric("sum", sql_type)
    valid = ~nulls
    weights = values.astype(np.float64)
    sums = np.bincount(group_ids[valid], weights=weights[valid],
                       minlength=n_groups)
    non_null = np.bincount(group_ids[valid], minlength=n_groups)
    out_nulls = non_null == 0
    if sql_type == SQLType.INTEGER:
        out = np.rint(sums).astype(np.int64)
        return PartialAggState(SQLType.INTEGER, out, out_nulls)
    return PartialAggState(SQLType.REAL, sums, out_nulls)


def kernel_avg(values: np.ndarray, nulls: np.ndarray,
               sql_type: Optional[SQLType], group_ids: np.ndarray,
               n_groups: int) -> PartialAggState:
    _require_numeric("avg", sql_type)
    valid = ~nulls
    weights = values.astype(np.float64)
    sums = np.bincount(group_ids[valid], weights=weights[valid],
                       minlength=n_groups)
    non_null = np.bincount(group_ids[valid], minlength=n_groups)
    out_nulls = non_null == 0
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(out_nulls, 0.0,
                       sums / np.where(out_nulls, 1, non_null))
    return PartialAggState(SQLType.REAL, out, out_nulls)


def kernel_var_stdev(func: str, values: np.ndarray, nulls: np.ndarray,
                     sql_type: Optional[SQLType], group_ids: np.ndarray,
                     n_groups: int) -> PartialAggState:
    """Sample variance / standard deviation (n - 1 denominator); NULL
    for groups with fewer than two non-NULL inputs."""
    _require_numeric(func, sql_type)
    valid = ~nulls
    weights = values.astype(np.float64)
    counts = np.bincount(group_ids[valid], minlength=n_groups)
    sums = np.bincount(group_ids[valid], weights=weights[valid],
                       minlength=n_groups)
    squares = np.bincount(group_ids[valid],
                          weights=weights[valid] ** 2,
                          minlength=n_groups)
    out_nulls = counts < 2
    safe_counts = np.where(out_nulls, 2, counts)
    with np.errstate(divide="ignore", invalid="ignore"):
        variance = (squares - sums ** 2 / safe_counts) \
            / (safe_counts - 1)
    variance = np.maximum(variance, 0.0)  # guard tiny negatives
    if func == "stdev":
        variance = np.sqrt(variance)
    variance = np.where(out_nulls, 0.0, variance)
    return PartialAggState(SQLType.REAL, variance, out_nulls)


def kernel_min_max(func: str, values: np.ndarray, nulls: np.ndarray,
                   sql_type: SQLType, group_ids: np.ndarray,
                   n_groups: int) -> PartialAggState:
    """min/max for the sentinel-friendly types (numeric, boolean).

    VARCHAR goes through :func:`kernel_min_max_sorted` -- object
    arrays support neither sentinels nor shared memory.
    """
    valid = ~nulls
    out_nulls = np.bincount(group_ids[valid], minlength=n_groups) == 0
    if func == "min":
        out = np.full(n_groups, _max_sentinel(sql_type),
                      dtype=sql_type.numpy_dtype)
        np.minimum.at(out, group_ids[valid], values[valid])
    else:
        out = np.full(n_groups, _min_sentinel(sql_type),
                      dtype=sql_type.numpy_dtype)
        np.maximum.at(out, group_ids[valid], values[valid])
    out[out_nulls] = 0
    return PartialAggState(sql_type, out, out_nulls)


def kernel_min_max_sorted(func: str, values: np.ndarray,
                          nulls: np.ndarray, group_ids: np.ndarray,
                          n_groups: int) -> PartialAggState:
    """min/max for VARCHAR via a (group, value) sort."""
    valid = ~nulls
    out_nulls = np.bincount(group_ids[valid], minlength=n_groups) == 0
    ids = group_ids[valid]
    present = values[valid]
    value_order = np.argsort(present, kind="stable")
    order = value_order[np.argsort(ids[value_order], kind="stable")]
    sorted_ids = ids[order]
    boundaries = np.ones(len(order), dtype=bool)
    if func == "min":
        boundaries[1:] = sorted_ids[1:] != sorted_ids[:-1]
    else:
        boundaries[:-1] = sorted_ids[:-1] != sorted_ids[1:]
    pick_ids = sorted_ids[boundaries]
    pick_values = present[order][boundaries]
    out = np.full(n_groups, "", dtype=object)
    out[pick_ids] = pick_values
    return PartialAggState(SQLType.VARCHAR, out, out_nulls)


def _max_sentinel(sql_type: SQLType):
    if sql_type == SQLType.INTEGER:
        return np.iinfo(np.int64).max
    return np.inf


def _min_sentinel(sql_type: SQLType):
    if sql_type == SQLType.INTEGER:
        return np.iinfo(np.int64).min
    return -np.inf


# ----------------------------------------------------------------------
# Morsel planning (the process backend's work partitioning)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Morsel:
    """One unit of worker work: a contiguous range of the group-sorted
    row permutation covering the *complete* groups ``[g_lo, g_hi)``.

    ``lo``/``hi`` index into :attr:`MorselPlan.order`; a worker's rows
    are ``order[lo:hi]`` and its local group ids are
    ``sorted_group_ids[lo:hi] - g_lo``.
    """

    lo: int
    hi: int
    g_lo: int
    g_hi: int

    @property
    def n_rows(self) -> int:
        return self.hi - self.lo

    @property
    def n_groups(self) -> int:
        return self.g_hi - self.g_lo


@dataclass
class MorselPlan:
    """Group-aligned morsels over one grouping.

    ``order`` is the stable argsort of the group ids: rows sorted by
    group, original order preserved within each group.  Every morsel's
    cut sits on a group boundary, so the parallel merge is a slice
    assignment and float accumulation replays the serial addend order
    (see the module docstring).
    """

    order: np.ndarray             # int64 row permutation, group-sorted
    sorted_group_ids: np.ndarray  # group_ids[order]
    morsels: list[Morsel]

    @property
    def degree(self) -> int:
        return len(self.morsels)


def plan_morsels(group_ids: np.ndarray, n_groups: int,
                 morsel_rows: int) -> Optional[MorselPlan]:
    """Split rows into group-aligned morsels of roughly ``morsel_rows``.

    Returns ``None`` when the input cannot usefully split: fewer than
    two morsels would result (small input, or one dominant group
    swallowing everything).  The caller then stays serial.
    """
    n_rows = len(group_ids)
    if n_rows == 0 or n_groups <= 0 or morsel_rows < 1 \
            or n_rows <= morsel_rows:
        return None
    order = np.argsort(group_ids, kind="stable").astype(np.int64)
    sorted_ids = group_ids[order]
    # Position where each group starts in sorted-row space.  Group ids
    # are dense ranks (every id in [0, n_groups) occurs), so this is
    # total: bounds[g] .. bounds[g+1] is exactly group g's row range.
    bounds = np.empty(n_groups + 1, dtype=np.int64)
    bounds[:n_groups] = np.searchsorted(sorted_ids,
                                        np.arange(n_groups))
    bounds[n_groups] = n_rows
    morsels: list[Morsel] = []
    g = 0
    while g < n_groups:
        # One safepoint per morsel planned: a cancel lands before any
        # shared-memory export, so nothing has to be unwound yet.
        cancel.checkpoint("morsel")
        target = bounds[g] + morsel_rows
        g_next = int(np.searchsorted(bounds, target, side="left"))
        g_next = max(g_next, g + 1)       # always advance a full group
        g_next = min(g_next, n_groups)
        morsels.append(Morsel(lo=int(bounds[g]), hi=int(bounds[g_next]),
                              g_lo=g, g_hi=g_next))
        g = g_next
    if len(morsels) < 2:
        return None
    return MorselPlan(order=order, sorted_group_ids=sorted_ids,
                      morsels=morsels)
