"""Unit tests for Table and TableSchema."""

import numpy as np
import pytest

from repro.engine.column import ColumnData
from repro.engine.schema import ColumnDef, TableSchema
from repro.engine.table import Table
from repro.engine.types import SQLType
from repro.errors import CatalogError, ExecutionError


def make_schema():
    return TableSchema.build("t", [("a", SQLType.INTEGER),
                                   ("b", SQLType.VARCHAR)],
                             primary_key=["a"])


class TestSchema:
    def test_duplicate_column_raises(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [ColumnDef("a", SQLType.INTEGER),
                              ColumnDef("A", SQLType.REAL)])

    def test_primary_key_must_exist(self):
        with pytest.raises(CatalogError):
            TableSchema.build("t", [("a", SQLType.INTEGER)],
                              primary_key=["missing"])

    def test_case_insensitive_lookup(self):
        schema = make_schema()
        assert schema.column("A").sql_type == SQLType.INTEGER
        assert schema.column_index("B") == 1
        assert schema.has_column("b")
        assert not schema.has_column("c")

    def test_column_names_order(self):
        assert make_schema().column_names() == ["a", "b"]


class TestTable:
    def test_from_rows_and_back(self):
        table = Table.from_rows(make_schema(), [(1, "x"), (2, None)])
        assert table.to_rows() == [(1, "x"), (2, None)]
        assert table.n_rows == 2

    def test_row_width_check(self):
        with pytest.raises(ExecutionError):
            Table.from_rows(make_schema(), [(1,)])

    def test_missing_column_data_raises(self):
        schema = make_schema()
        with pytest.raises(ExecutionError):
            Table(schema, {"a": ColumnData.from_values(
                SQLType.INTEGER, [1])})

    def test_unequal_column_lengths_raise(self):
        schema = make_schema()
        with pytest.raises(ExecutionError):
            Table(schema, {
                "a": ColumnData.from_values(SQLType.INTEGER, [1, 2]),
                "b": ColumnData.from_values(SQLType.VARCHAR, ["x"]),
            })

    def test_take_and_filter(self):
        table = Table.from_rows(make_schema(),
                                [(1, "x"), (2, "y"), (3, "z")])
        assert table.take(np.array([2, 0])).to_rows() == \
            [(3, "z"), (1, "x")]
        assert table.filter(np.array([False, True, False])).to_rows() \
            == [(2, "y")]

    def test_append(self):
        table = Table.from_rows(make_schema(), [(1, "x")])
        more = Table.from_rows(make_schema(), [(2, "y")])
        assert table.append(more).to_rows() == [(1, "x"), (2, "y")]

    def test_append_type_mismatch_raises(self):
        table = Table.from_rows(make_schema(), [(1, "x")])
        other_schema = TableSchema.build(
            "o", [("a", SQLType.REAL), ("b", SQLType.VARCHAR)])
        other = Table.from_rows(other_schema, [(1.0, "y")])
        with pytest.raises(ExecutionError):
            table.append(other)

    def test_replace_column(self):
        table = Table.from_rows(make_schema(), [(1, "x")])
        new = table.replace_column(
            "a", ColumnData.from_values(SQLType.INTEGER, [9]))
        assert new.to_rows() == [(9, "x")]
        assert table.to_rows() == [(1, "x")]  # original untouched

    def test_replace_column_wrong_type_raises(self):
        table = Table.from_rows(make_schema(), [(1, "x")])
        with pytest.raises(ExecutionError):
            table.replace_column(
                "a", ColumnData.from_values(SQLType.REAL, [9.0]))

    def test_renamed_shares_data(self):
        table = Table.from_rows(make_schema(), [(1, "x")])
        renamed = table.renamed("u")
        assert renamed.name == "u"
        assert renamed.to_rows() == table.to_rows()

    def test_from_columns(self):
        table = Table.from_columns("t", [
            ("a", ColumnData.from_values(SQLType.INTEGER, [1, 2]))])
        assert table.column_names() == ["a"]
        assert table.n_rows == 2
