"""Write-ahead log unit tests: replay, torn tails, reset, sequencing."""

import os
import struct
import zlib

import pytest

from repro.errors import StorageError
from repro.storage.wal import WAL_MAGIC, WriteAheadLog

_RECORD = struct.Struct("<4sII")


@pytest.fixture
def wal_path(tmp_path):
    return os.path.join(tmp_path, "wal.log")


def test_append_replay_roundtrip(wal_path):
    wal = WriteAheadLog(wal_path)
    try:
        wal.append({"op": "a"})
        wal.append({"op": "b"})
    finally:
        wal.close()
    wal = WriteAheadLog(wal_path)
    try:
        records = wal.replay()
        assert [r["op"] for r in records] == ["a", "b"]
        assert [r["seq"] for r in records] == [1, 2]
        # Sequencing continues after the last durable record.
        assert wal.append({"op": "c"}) == 3
    finally:
        wal.close()


def _truncate(path, drop_bytes):
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(size - drop_bytes)


@pytest.mark.parametrize("drop", [1, 4, 1000],
                         ids=["payload-tail", "mid-payload", "whole"])
def test_torn_tail_truncated(wal_path, drop):
    wal = WriteAheadLog(wal_path)
    try:
        wal.append({"op": "keep"})
        keep_size = wal.size_bytes()
        wal.append({"op": "torn", "padding": "x" * 64})
    finally:
        wal.close()
    _truncate(wal_path, min(drop, os.path.getsize(wal_path)))
    wal = WriteAheadLog(wal_path)
    try:
        records = wal.replay()
        if drop >= 1000:
            assert records == []
            assert wal.seq == 0
        else:
            assert [r["op"] for r in records] == ["keep"]
            assert wal.seq == 1
        # The torn tail was physically truncated, so the log is
        # exactly the durable prefix again.
        assert os.path.getsize(wal_path) == \
            (0 if drop >= 1000 else keep_size)
    finally:
        wal.close()


def test_torn_header_truncated(wal_path):
    wal = WriteAheadLog(wal_path)
    try:
        wal.append({"op": "keep"})
    finally:
        wal.close()
    with open(wal_path, "ab") as handle:
        handle.write(WAL_MAGIC + b"\x01")  # 5 of 12 header bytes
    wal = WriteAheadLog(wal_path)
    try:
        assert [r["op"] for r in wal.replay()] == ["keep"]
    finally:
        wal.close()


def test_corrupt_payload_stops_replay(wal_path):
    wal = WriteAheadLog(wal_path)
    try:
        wal.append({"op": "keep"})
        wal.append({"op": "flip"})
    finally:
        wal.close()
    with open(wal_path, "r+b") as handle:
        data = bytearray(handle.read())
        data[-2] ^= 0xFF  # flip a byte inside the last payload
        handle.seek(0)
        handle.write(data)
    wal = WriteAheadLog(wal_path)
    try:
        assert [r["op"] for r in wal.replay()] == ["keep"]
    finally:
        wal.close()


def test_garbage_magic_stops_replay(wal_path):
    wal = WriteAheadLog(wal_path)
    try:
        wal.append({"op": "keep"})
    finally:
        wal.close()
    payload = b'{"op": "evil"}'
    with open(wal_path, "ab") as handle:
        handle.write(_RECORD.pack(b"XXXX", len(payload),
                                  zlib.crc32(payload)) + payload)
    wal = WriteAheadLog(wal_path)
    try:
        assert [r["op"] for r in wal.replay()] == ["keep"]
    finally:
        wal.close()


def test_reset_truncates_and_restarts_sequencing(wal_path):
    wal = WriteAheadLog(wal_path)
    try:
        wal.append({"op": "a"})
        assert wal.size_bytes() > 0
        wal.reset()
        assert wal.size_bytes() == 0
        assert wal.append({"op": "b"}) == 1
        assert [r["op"] for r in wal.replay()] == ["b"]
    finally:
        wal.close()


def test_closed_wal_raises_typed_error(wal_path):
    wal = WriteAheadLog(wal_path)
    wal.close()
    with pytest.raises(StorageError, match="closed"):
        wal.append({"op": "late"})
    wal.close()  # idempotent
