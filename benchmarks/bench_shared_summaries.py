"""Ablation: shared summaries for percentage-query batches (the paper's
Section 6 future work) versus evaluating each query separately.

Expected shape: the batch scans F once for the whole set, so it wins
by roughly the number of queries sharing the summary (modulo the
summary's own size).
"""

import pytest

from benchmarks.conftest import TL_N, run_once
from repro import Database
from repro.core import run_percentage_query
from repro.core.shared import run_percentage_batch
from repro.datagen import load_transaction_line

BATCH = [
    "SELECT regionid, dayofweekno, Vpct(salesamt BY dayofweekno) "
    "FROM transactionline GROUP BY regionid, dayofweekno",
    "SELECT regionid, Hpct(salesamt BY monthno) FROM transactionline "
    "GROUP BY regionid",
    "SELECT monthno, sum(salesamt BY regionid) FROM transactionline "
    "GROUP BY monthno",
    "SELECT yearno, Vpct(salesamt BY yearno) FROM transactionline "
    "GROUP BY yearno",
]


@pytest.fixture(scope="module")
def batch_db():
    db = Database()
    load_transaction_line(db, TL_N)
    return db


def test_separate_queries(benchmark, batch_db):
    def run():
        return [run_percentage_query(batch_db, sql) for sql in BATCH]

    results = run_once(benchmark, run)
    assert len(results) == len(BATCH)


def test_shared_summary_batch(benchmark, batch_db):
    def run():
        return run_percentage_batch(batch_db, BATCH)

    report = run_once(benchmark, run)
    assert report.shared_groups == 1
