"""Property-based invariants for column naming and vertical
partitioning."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.naming import NamingPolicy, combo_column_name, sanitize
from repro.core.partitioning import split_result_columns

VALUES = st.one_of(
    st.none(),
    st.integers(-10**6, 10**6),
    st.text(max_size=30),
    st.floats(allow_nan=False, allow_infinity=False))


@given(VALUES)
@settings(max_examples=150, deadline=None)
def test_sanitize_yields_identifier_fragment(value):
    fragment = sanitize(value)
    assert fragment
    assert all(ch.isalnum() or ch == "_" for ch in fragment)


@given(st.lists(st.tuples(VALUES, VALUES), min_size=1, max_size=30),
       st.sampled_from(["values", "full"]),
       st.integers(min_value=8, max_value=40))
@settings(max_examples=80, deadline=None)
def test_combo_names_unique_and_bounded(combos, style, limit):
    used: set[str] = set()
    names = [combo_column_name(["colx", "coly"], values,
                               NamingPolicy(style), limit, used)
             for values in combos]
    assert len({n.lower() for n in names}) == len(names)
    for name in names:
        assert len(name) <= limit
        assert name[0].isalpha() or name[0] == "_"


@given(st.lists(VALUES, min_size=1, max_size=20),
       st.sampled_from(["values", "full"]))
@settings(max_examples=80, deadline=None)
def test_combo_name_deterministic(values, style):
    first = combo_column_name(["c"] * len(values), values,
                              NamingPolicy(style), 32, set())
    second = combo_column_name(["c"] * len(values), values,
                               NamingPolicy(style), 32, set())
    assert first == second


@given(st.integers(0, 5),
       st.lists(st.integers(), min_size=0, max_size=200),
       st.integers(2, 50))
@settings(max_examples=100, deadline=None)
def test_partitions_cover_everything_within_limit(n_keys, columns,
                                                  max_columns):
    from repro.errors import PercentageQueryError
    if max_columns - n_keys < 1:
        try:
            split_result_columns(n_keys, columns, max_columns)
        except PercentageQueryError:
            return
        assert not columns  # only an empty list can "fit"
        return
    partitions = split_result_columns(n_keys, columns, max_columns)
    flattened = [c for p in partitions for c in p]
    assert flattened == list(columns)
    for partition in partitions[:-1] if len(partitions) > 1 else []:
        assert n_keys + len(partition) <= max_columns
    for partition in partitions:
        assert n_keys + len(partition) <= max_columns
