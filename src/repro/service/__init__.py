"""The concurrent query service: sessions, snapshot isolation and a
parallel worker pool.

The paper closes by observing that percentage queries are interactive,
OLAP-style workloads: many analysts submitting Vpct/Hpct queries over
shared fact tables while batch loads refresh them.  This package is
that deployment story for the repro engine:

* :class:`~repro.service.session.Session` -- per-client handles with
  their own DB-API cursor state and per-session execution defaults;
* :class:`~repro.service.snapshots.SnapshotDatabase` -- snapshot
  isolation built on the copy-on-write catalog: readers run whole
  multi-statement percentage plans against a pinned, immutable view,
  never blocking and never seeing a torn script;
* :class:`~repro.service.scheduler.Scheduler` -- a bounded worker pool
  with admission control (global queue depth, per-session in-flight
  caps) layered on the per-query resource governor; every query
  resolves to a typed :class:`~repro.service.scheduler.ServiceReport`.

Typical use::

    from repro.service import QueryService

    with QueryService(db, workers=4) as service:
        with service.create_session() as session:
            future = session.submit("SELECT d1, Vpct(a) FROM f")
            report = future.result()
            rows = report.rows()

Writes serialize through one writer lock with all-or-nothing script
semantics; reads scale out across the pool and, within a query, across
the partition-parallel operators (``parallel_workers``).
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.api.database import Database
from repro.service.scheduler import Scheduler, ServiceReport
from repro.service.session import Session, SessionDefaults, SessionManager
from repro.service.snapshots import (Snapshot, SnapshotDatabase,
                                     SnapshotManager)

__all__ = [
    "QueryService",
    "ServiceReport",
    "Session",
    "SessionDefaults",
    "Snapshot",
    "SnapshotDatabase",
]


class QueryService:
    """The façade wiring sessions, snapshots and the scheduler over one
    :class:`~repro.api.database.Database`.

    Args:
        db: the shared database (a fresh one is built when omitted;
            extra keyword arguments are passed to its constructor).
        workers: query worker-pool size.
        max_queue_depth: admitted-but-waiting queries allowed beyond
            the pool before submissions raise
            :class:`~repro.errors.AdmissionRejected`.
        session_inflight_cap: per-session concurrent-query ceiling.
        shed_enabled / breaker_threshold / breaker_cooldown_seconds /
            brownout_fraction: overload-protection knobs forwarded to
            the :class:`~repro.service.scheduler.Scheduler` (load
            shedding, per-session circuit breaker, brownout).

    Usable as a context manager; :meth:`shutdown` closes every session
    and drains the pool.
    """

    def __init__(self, db: Optional[Database] = None, workers: int = 4,
                 max_queue_depth: int = 16,
                 session_inflight_cap: int = 4,
                 shed_enabled: bool = True,
                 breaker_threshold: int = 5,
                 breaker_cooldown_seconds: float = 1.0,
                 brownout_fraction: float = 0.75, **db_options):
        if db is not None and db_options:
            raise ValueError(
                "pass database options or an existing database, not both")
        self.db = db if db is not None else Database(**db_options)
        #: The single writer lock: write scripts hold it end to end;
        #: snapshot acquisition takes it for an instant, so reads
        #: serialize only against whole scripts, never statements.
        self.write_lock = threading.RLock()
        self.snapshots = SnapshotManager(self.db, self.write_lock)
        self.sessions = SessionManager()
        self.scheduler = Scheduler(
            self, workers=workers, max_queue_depth=max_queue_depth,
            session_inflight_cap=session_inflight_cap,
            shed_enabled=shed_enabled,
            breaker_threshold=breaker_threshold,
            breaker_cooldown_seconds=breaker_cooldown_seconds,
            brownout_fraction=brownout_fraction)

    # ------------------------------------------------------------------
    def create_session(self,
                       defaults: Optional[SessionDefaults] = None
                       ) -> Session:
        """A new client session (close it, or use it as a context
        manager)."""
        return self.sessions.create(self, defaults)

    def execute(self, sql: str,
                defaults: Optional[SessionDefaults] = None
                ) -> ServiceReport:
        """One-shot convenience: run ``sql`` in a throwaway session and
        wait for its report."""
        with self.create_session(defaults) as session:
            return session.execute(sql)

    # ------------------------------------------------------------------
    def snapshot(self) -> Snapshot:
        """The current committed state (see
        :meth:`~repro.service.snapshots.SnapshotManager.acquire`)."""
        return self.snapshots.acquire()

    def fingerprint(self) -> tuple:
        """The base catalog's structural fingerprint, captured between
        write scripts (the stress suite's integrity probe)."""
        with self.write_lock:
            return self.db.catalog.fingerprint()

    def quiesce(self) -> None:
        """Block until every admitted query has finished (new
        submissions remain allowed; useful for integrity checks)."""
        import time as _time
        while self.scheduler.admitted:
            _time.sleep(0.001)

    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Close all sessions and shut the scheduler down.  Queries
        already admitted complete when ``wait`` is true."""
        self.sessions.close_all()
        self.scheduler.shutdown(wait=wait)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
