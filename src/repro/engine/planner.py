"""FROM-clause planning: turning sources, joins and WHERE predicates
into a sequence of hash-join steps.

The paper's generated SQL writes joins in the classic comma form::

    FROM Fj, Fk WHERE Fj.D1 = Fk.D1 AND ... AND Fj.Dj = Fk.Dj

so the planner must recover equi-join keys from the WHERE conjunction.
Explicit ``[LEFT OUTER] JOIN ... ON`` clauses (used by the SPJ strategy
of the companion paper) are planned directly from their ON condition.

The planner produces a :class:`FromPlan`: an ordered list of sources
and, for each source after the first, the join kind plus key pairs
linking it to the already-accumulated sources; predicates that are not
equi-join keys are returned as residual filters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import PlanningError
from repro.sql import ast


@dataclass
class PlannedSource:
    """One FROM source with its binding name."""

    source: ast.FromSource
    binding: str


@dataclass
class PlannedJoin:
    """How to attach one source to the accumulated left side.

    ``left_keys``/``right_keys`` are parallel column references; empty
    keys mean a cartesian product (only reasonable for tiny tables).
    ``null_safe`` flags (parallel to the keys) mark pairs written as
    ``a = b OR (a IS NULL AND b IS NULL)``, where NULL joins NULL.
    ``residual`` holds non-equi parts of an explicit ON condition.
    """

    kind: str                       # "inner" | "left"
    source: PlannedSource
    left_keys: list[ast.ColumnRef] = field(default_factory=list)
    right_keys: list[ast.ColumnRef] = field(default_factory=list)
    null_safe: list[bool] = field(default_factory=list)
    residual: Optional[ast.Expr] = None


@dataclass
class FromPlan:
    first: PlannedSource
    joins: list[PlannedJoin]
    residual_where: Optional[ast.Expr]


def split_conjuncts(expr: Optional[ast.Expr]) -> list[ast.Expr]:
    """Flatten a tree of ANDs into a list of conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def join_conjuncts(conjuncts: list[ast.Expr]) -> Optional[ast.Expr]:
    """Rebuild an AND tree (None for an empty list)."""
    result: Optional[ast.Expr] = None
    for conjunct in conjuncts:
        result = conjunct if result is None \
            else ast.BinaryOp("AND", result, conjunct)
    return result


def plan_from(from_clause: ast.FromClause,
              where: Optional[ast.Expr],
              resolve_binding) -> FromPlan:
    """Plan the FROM clause.

    ``resolve_binding(column_ref, candidate_bindings)`` must return the
    binding name owning the reference, or None when it cannot be
    resolved among the candidates (the executor supplies a callback
    with schema knowledge).
    """
    first = PlannedSource(from_clause.first, from_clause.first.binding)
    joins: list[PlannedJoin] = []
    conjuncts = split_conjuncts(where)
    used = [False] * len(conjuncts)
    accumulated = [first.binding.lower()]

    for step in from_clause.joins:
        source = PlannedSource(step.source, step.source.binding)
        new_binding = source.binding.lower()
        if step.kind in ("inner", "left"):
            planned = _plan_explicit_join(step, source, accumulated,
                                          new_binding, resolve_binding)
        else:
            planned = _plan_comma_join(source, accumulated, new_binding,
                                       conjuncts, used, resolve_binding)
        joins.append(planned)
        accumulated.append(new_binding)

    leftovers = [c for c, u in zip(conjuncts, used) if not u]
    return FromPlan(first, joins, join_conjuncts(leftovers))


def _plan_explicit_join(step: ast.JoinStep, source: PlannedSource,
                        accumulated: list[str], new_binding: str,
                        resolve_binding) -> PlannedJoin:
    left_keys: list[ast.ColumnRef] = []
    right_keys: list[ast.ColumnRef] = []
    null_safe: list[bool] = []
    residual: list[ast.Expr] = []
    for conjunct in split_conjuncts(step.on):
        pair = _equi_key_pair(conjunct, accumulated, new_binding,
                              resolve_binding)
        if pair is not None:
            left_keys.append(pair[0])
            right_keys.append(pair[1])
            null_safe.append(pair[2])
        else:
            residual.append(conjunct)
    if step.kind == "left" and residual:
        raise PlanningError(
            "LEFT OUTER JOIN supports only conjunctions of column "
            "equalities in ON")
    if not left_keys:
        raise PlanningError("JOIN ... ON requires at least one "
                            "equality between the two sides")
    return PlannedJoin(step.kind, source, left_keys, right_keys,
                       null_safe, join_conjuncts(residual))


def _plan_comma_join(source: PlannedSource, accumulated: list[str],
                     new_binding: str, conjuncts: list[ast.Expr],
                     used: list[bool], resolve_binding) -> PlannedJoin:
    left_keys: list[ast.ColumnRef] = []
    right_keys: list[ast.ColumnRef] = []
    null_safe: list[bool] = []
    for i, conjunct in enumerate(conjuncts):
        if used[i]:
            continue
        pair = _equi_key_pair(conjunct, accumulated, new_binding,
                              resolve_binding)
        if pair is not None:
            left_keys.append(pair[0])
            right_keys.append(pair[1])
            null_safe.append(pair[2])
            used[i] = True
    return PlannedJoin("inner", source, left_keys, right_keys,
                       null_safe, None)


def null_safe_equality(expr: ast.Expr
                       ) -> Optional[tuple[ast.ColumnRef, ast.ColumnRef]]:
    """The ``(a, b)`` of ``a = b OR (a IS NULL AND b IS NULL)`` (either
    disjunct order), or None when ``expr`` is not that pattern."""
    if not (isinstance(expr, ast.BinaryOp) and expr.op == "OR"):
        return None
    eq, both_null = expr.left, expr.right
    if not (isinstance(eq, ast.BinaryOp) and eq.op == "="):
        eq, both_null = both_null, eq
    if not (isinstance(eq, ast.BinaryOp) and eq.op == "="
            and isinstance(eq.left, ast.ColumnRef)
            and isinstance(eq.right, ast.ColumnRef)):
        return None
    if not (isinstance(both_null, ast.BinaryOp)
            and both_null.op == "AND"):
        return None
    checks = (both_null.left, both_null.right)
    if not all(isinstance(c, ast.IsNull) and not c.negated
               and isinstance(c.operand, ast.ColumnRef)
               for c in checks):
        return None
    checked = {c.operand.key() for c in checks}
    if checked != {eq.left.key(), eq.right.key()}:
        return None
    return eq.left, eq.right


def _equi_key_pair(conjunct: ast.Expr, accumulated: list[str],
                   new_binding: str, resolve_binding
                   ) -> Optional[tuple[ast.ColumnRef, ast.ColumnRef,
                                       bool]]:
    """``(left_key, right_key, null_safe)`` when ``conjunct`` equates a
    column of the accumulated side with a column of the new source
    (plain ``=`` or the null-safe OR form)."""
    null_safe = False
    if isinstance(conjunct, ast.BinaryOp) and conjunct.op == "=":
        left, right = conjunct.left, conjunct.right
        if not (isinstance(left, ast.ColumnRef)
                and isinstance(right, ast.ColumnRef)):
            return None
    else:
        pair = null_safe_equality(conjunct)
        if pair is None:
            return None
        left, right = pair
        null_safe = True
    left_owner = resolve_binding(left, accumulated + [new_binding])
    right_owner = resolve_binding(right, accumulated + [new_binding])
    if left_owner is None or right_owner is None:
        return None
    if left_owner in accumulated and right_owner == new_binding:
        return left, right, null_safe
    if right_owner in accumulated and left_owner == new_binding:
        return right, left, null_safe
    return None
