"""Materialized percentage views end to end: creation, bit-identical
serving, delta maintenance under DML, REFRESH/DROP, rejection of
unsupported shapes, EXPLAIN surfacing, metrics, the ``use_views``
bypass, the service read path, and disk persistence (checkpointed
reopen and pure WAL-replay recovery)."""

from __future__ import annotations

import pytest

from repro.api.database import Database
from repro.core.execute import (generate_plan, run_percentage_query,
                                run_resilient)
from repro.core.horizontal import HorizontalStrategy
from repro.core.vertical import VerticalStrategy
from repro.errors import CatalogError, MaterializedViewError
from repro.fuzz.views import table_diff

VPCT = "SELECT d1, d2, Vpct(a BY d2) FROM f GROUP BY d1, d2"
HPCT = "SELECT d1, Hpct(a BY d2) FROM f GROUP BY d1"
PLAIN = "SELECT d1, sum(a), count(*) FROM f GROUP BY d1"

#: Mixed DML exercising group birth, measure drift and group death.
DML = (
    "INSERT INTO f VALUES (4, 'z', 5.0), (1, 'x', NULL)",
    "UPDATE f SET a = 2.0 WHERE d1 = 2",
    "UPDATE f SET d2 = 'y' WHERE d1 = 3",
    "DELETE FROM f WHERE d1 = 1",
)


def _recompute(db, sql):
    if "Vpct" in sql:
        return run_percentage_query(db, sql,
                                    strategy=VerticalStrategy(),
                                    use_views=False)
    if "Hpct" in sql:
        return run_percentage_query(
            db, sql, strategy=HorizontalStrategy(source="F"),
            use_views=False)
    return db.execute(sql, use_views=False)


def _assert_served(db, sql):
    difference = table_diff(_recompute(db, sql), db.execute(sql))
    assert difference is None, difference


class TestCreateAndServe:
    @pytest.mark.parametrize("sql", (VPCT, HPCT, PLAIN))
    def test_served_bit_identical(self, db, sql):
        rows = db.execute(f"CREATE MATERIALIZED VIEW v AS {sql}")
        assert rows == db.execute(sql).n_rows
        assert db.catalog.has_matview("v")
        _assert_served(db, sql)

    @pytest.mark.parametrize("sql", (VPCT, HPCT, PLAIN))
    def test_delta_maintenance_under_dml(self, db, sql):
        db.execute(f"CREATE MATERIALIZED VIEW v AS {sql}")
        for dml in DML:
            db.execute(dml)
            _assert_served(db, sql)
        assert db.stats.registry.value("view_refreshes_total",
                                       view="v", mode="delta") \
            == len(DML)

    def test_from_name_scan_serves_the_view(self, db):
        db.execute(f"CREATE MATERIALIZED VIEW v AS {VPCT}")
        assert db.query("SELECT * FROM v") == \
            [tuple(r) for r in db.execute(VPCT).to_rows()]

    def test_duplicate_name_rejected(self, db):
        db.execute(f"CREATE MATERIALIZED VIEW v AS {PLAIN}")
        with pytest.raises(CatalogError):
            db.execute(f"CREATE MATERIALIZED VIEW v AS {PLAIN}")

    @pytest.mark.parametrize("sql", (
        "SELECT count(*) FROM f",            # no GROUP BY
        "SELECT d1, sum(a) FROM missing GROUP BY d1",
        "SELECT f.d1, count(*) FROM f, f AS g GROUP BY f.d1",
    ))
    def test_unsupported_shapes_rejected(self, db, sql):
        with pytest.raises((MaterializedViewError, CatalogError)):
            db.execute(f"CREATE MATERIALIZED VIEW v AS {sql}")
        assert not db.catalog.has_matview("v")


class TestRefreshAndDrop:
    def test_refresh_statement(self, db):
        db.execute(f"CREATE MATERIALIZED VIEW v AS {PLAIN}")
        rows = db.execute("REFRESH MATERIALIZED VIEW v")
        assert rows == db.execute(PLAIN).n_rows
        assert db.stats.registry.value("view_refreshes_total",
                                       view="v", mode="full") == 1
        _assert_served(db, PLAIN)

    def test_drop_and_if_exists(self, db):
        db.execute(f"CREATE MATERIALIZED VIEW v AS {PLAIN}")
        db.execute("DROP MATERIALIZED VIEW v")
        assert not db.catalog.has_matview("v")
        with pytest.raises(CatalogError):
            db.execute("DROP MATERIALIZED VIEW v")
        db.execute("DROP MATERIALIZED VIEW IF EXISTS v")


class TestPlannerAndExplain:
    def test_explain_shows_view_line(self, db):
        db.execute(f"CREATE MATERIALIZED VIEW v AS {VPCT}")
        version = db.catalog.table("f").version
        (line,), *_ = db.query(f"EXPLAIN {VPCT}")
        assert line == f"view: v (fresh@v{version})"

    def test_explain_from_name_shows_matview_scan(self, db):
        db.execute(f"CREATE MATERIALIZED VIEW v AS {VPCT}")
        (line,), *_ = db.query("EXPLAIN SELECT * FROM v")
        assert line.startswith("materialized view scan v (fresh@")

    def test_generated_plan_is_the_view(self, db):
        db.execute(f"CREATE MATERIALIZED VIEW v AS {VPCT}")
        plan = generate_plan(db, VPCT)
        assert plan.description.startswith("view: v (fresh@")
        assert not plan.steps
        report = run_resilient(db, VPCT)
        difference = table_diff(_recompute(db, VPCT), report.result)
        assert difference is None, difference

    def test_pinned_strategy_bypasses_view(self, db):
        db.execute(f"CREATE MATERIALIZED VIEW v AS {VPCT}")
        plan = generate_plan(db, VPCT, strategy=VerticalStrategy())
        assert not plan.description.startswith("view:")
        assert plan.steps


class TestMetricsAndBypass:
    def test_hit_counter_and_staleness_gauge(self, db):
        db.execute(f"CREATE MATERIALIZED VIEW v AS {VPCT}")
        db.execute(VPCT)
        db.execute(VPCT)
        registry = db.stats.registry
        assert registry.value("view_hits_total", view="v") == 2
        assert registry.gauge("view_staleness_lag",
                              view="v").value == 0.0

    def test_use_views_false_bypasses_the_view(self, db):
        db.execute(f"CREATE MATERIALIZED VIEW v AS {PLAIN}")
        db.execute(PLAIN, use_views=False)
        assert db.stats.registry.value("view_hits_total",
                                       view="v") == 0


class TestServiceReadPath:
    def test_service_answers_from_the_view(self, db):
        from repro.service import QueryService

        db.execute(f"CREATE MATERIALIZED VIEW v AS {VPCT}")
        with QueryService(db) as service:
            report = service.execute(VPCT)
        difference = table_diff(_recompute(db, VPCT), report.result)
        assert difference is None, difference
        assert db.stats.registry.value("view_hits_total",
                                       view="v") >= 1


class TestDiskPersistence:
    def _open(self, path) -> Database:
        return Database(storage="disk", storage_path=str(path),
                        pool_pages=32)

    def _seed(self, db) -> None:
        db.execute_script("""
            CREATE TABLE f (d1 INT, d2 VARCHAR, a REAL);
            INSERT INTO f VALUES (1, 'x', 10.0), (1, 'y', 30.0),
                                 (2, 'x', 60.0), (2, 'y', 0.25)
        """)

    def test_view_survives_checkpointed_reopen(self, tmp_path):
        db = self._open(tmp_path)
        self._seed(db)
        db.execute(f"CREATE MATERIALIZED VIEW v AS {VPCT}")
        db.execute("INSERT INTO f VALUES (3, 'x', 7.0)")
        expected = db.execute(VPCT)
        db.close()

        db = self._open(tmp_path)
        assert db.catalog.has_matview("v")
        mv = db.catalog.matview("v")
        assert mv.fresh(db.catalog.table("f"))
        difference = table_diff(expected, db.execute(VPCT))
        assert difference is None, difference
        assert db.stats.registry.value("view_hits_total",
                                       view="v") == 1
        db.close()

    def test_view_rebuilt_from_wal_replay(self, tmp_path):
        # abandon() releases handles without checkpointing -- the
        # on-disk state is what a kill would leave; recovery must
        # replay the WAL's create_matview record and rebuild state.
        db = self._open(tmp_path)
        self._seed(db)
        db.execute(f"CREATE MATERIALIZED VIEW v AS {VPCT}")
        db.execute("DELETE FROM f WHERE d1 = 1")
        expected = db.execute(VPCT)
        db.storage_engine.abandon()

        db = self._open(tmp_path)
        assert db.catalog.has_matview("v")
        difference = table_diff(expected, db.execute(VPCT))
        assert difference is None, difference
        db.close()

    def test_dropped_view_stays_dropped_after_replay(self, tmp_path):
        db = self._open(tmp_path)
        self._seed(db)
        db.execute(f"CREATE MATERIALIZED VIEW v AS {PLAIN}")
        db.execute("DROP MATERIALIZED VIEW v")
        db.storage_engine.abandon()

        db = self._open(tmp_path)
        assert not db.catalog.has_matview("v")
        db.close()
