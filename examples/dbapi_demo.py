"""Using the engine through the DB-API 2.0 driver.

The paper's experiments drove Teradata from a Java program over JDBC;
this is the Python equivalent: a PEP 249 connection/cursor pair, with
the percentage-query generator producing the SQL that flows through
it.

Run:  python examples/dbapi_demo.py
"""

import repro.api.dbapi as dbapi
from repro.core import generate_plan


def main() -> None:
    conn = dbapi.connect()
    cur = conn.cursor()

    cur.execute("CREATE TABLE orders (region VARCHAR, product VARCHAR,"
                " amount REAL)")
    cur.executemany(
        "INSERT INTO orders VALUES (?, ?, ?)",
        [("north", "widget", 120.0), ("north", "gadget", 80.0),
         ("south", "widget", 45.0), ("south", "gadget", 30.0),
         ("south", "gizmo", 25.0)])

    cur.execute("SELECT region, count(*), sum(amount) FROM orders "
                "GROUP BY region ORDER BY region")
    print("Plain SQL through the cursor:")
    for row in cur:
        print(f"  {row}")

    # Percentage queries go through the generator, which emits
    # standard SQL the same cursor could replay.
    query = ("SELECT region, product, Vpct(amount BY product) "
             "FROM orders GROUP BY region, product")
    plan = generate_plan(conn.database, query)
    print(f"\nGenerated plan for:\n  {query}\n")
    print(plan.sql_script())

    print("\nReplaying the plan through the DB-API cursor:")
    for step in plan.steps:
        cur.execute(step.sql)
    cur.execute(plan.result_select)
    print(f"  columns: {[d[0] for d in cur.description]}")
    for row in cur.fetchall():
        print(f"  {row}")

    for table in reversed(plan.temp_tables):
        cur.execute(f"DROP TABLE IF EXISTS {table}")
    conn.close()


if __name__ == "__main__":
    main()
