"""Differential sweep for incrementally-maintained percentage views.

For each fuzz case the sweep creates a materialized view over the
case's query, then runs a deterministic script of interleaved INSERT /
UPDATE / DELETE statements against the base table.  After the build
and again after **every** DML statement it asserts the central
contract of :mod:`repro.views`:

* the view-served answer (``db.execute(sql)``, rewritten to the view)
  is **bit-identical** -- column names, SQL types, null masks, row
  order, and the raw IEEE-754 payload of every live value, NaNs and
  signed zeros included -- to recomputing the query from scratch on
  the current base table with the family's pinned strategy and views
  disabled;
* the script deliberately exercises group birth (new key values),
  group death (deletes and key-migrating updates that empty a group),
  NULL keys and NULL/zero denominators, because the generator's value
  pools are shared with the differential fuzzer's adversarial data.

Variants mirror the cancel sweep: serial/thread/process parallel
backends crossed with the memory/disk substrates, with the same leak
oracles (live shared-memory segments after a process variant, stray
store files after a disk variant are findings, not warnings).

``inject_bug`` wires :data:`repro.views.maintenance.INJECT_BUG` for
the duration -- the harness self-test: a deliberately broken
maintenance path must produce at least one finding, otherwise the
sweep is blind.
"""

from __future__ import annotations

import random
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.core.execute import run_percentage_query
from repro.core.horizontal import HorizontalStrategy
from repro.core.vertical import VerticalStrategy
from repro.engine import shm
from repro.engine.table import Table
from repro.errors import ReproError
from repro.fuzz.generator import FuzzCase
from repro.fuzz.runner import (_BACKEND_KW, _STORAGE_POOL_PAGES,
                               _load_db)
from repro.storage import engine as storage_engine
from repro.views import maintenance

#: Parallel backends the sweep crosses with each storage substrate.
BACKENDS = ("serial", "thread", "process")

#: Table substrates.
STORAGES = ("memory", "disk")

#: DML statements interleaved per case-variant run (each one followed
#: by a full bitwise check).
SCRIPT_LENGTH = 6

#: The materialized view every run creates and drops.
VIEW_NAME = "v_fuzz"

#: Value pools for generated DML.  The dimension pools deliberately
#: include values the base data never contains ("z", 7), so inserts
#: and key-migrating updates give birth to brand-new groups.
_DML_VALUES = {
    "varchar": ("a", "b", "c", "z"),
    "int": (0, 1, 2, 7, -3),
    "real": (0.0, 1.0, 2.5, -1.5, 10.0),
}


@dataclass
class ViewFinding:
    """One broken invariant observed during a views sweep."""

    case: FuzzCase
    variant: str
    step: str               # "build" | "dml#<i>" | "-"
    problem: str
    detail: str = ""

    def describe(self) -> str:
        text = (f"seed={self.case.seed} case={self.case.index} "
                f"({self.case.family}) [{self.variant} {self.step}]: "
                f"{self.problem}")
        if self.detail:
            text += f" -- {self.detail}"
        return text


@dataclass
class ViewSweepStats:
    """Aggregate outcome of a views sweep."""

    cases: int = 0
    #: (case, variant) runs where the view was accepted and swept.
    variants: int = 0
    #: (case, variant) runs the view subsystem rejected (unsupported
    #: query shape); rejection is an outcome, not a failure.
    rejected: int = 0
    #: Individual bitwise view-vs-recompute comparisons performed.
    checks: int = 0
    findings: list[ViewFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        return (f"swept {self.cases} case(s): {self.variants} view "
                f"run(s), {self.rejected} rejected, {self.checks} "
                f"bitwise check(s), {len(self.findings)} finding(s)")


# ----------------------------------------------------------------------
def sweep_case_views(case: FuzzCase, stats: ViewSweepStats,
                     backends=BACKENDS, storages=STORAGES,
                     inject_bug: Optional[str] = None) -> None:
    """Sweep one case across every backend x storage variant."""
    if inject_bug is not None \
            and inject_bug not in maintenance.VIEWS_BUGS:
        raise ValueError(
            f"unknown views bug {inject_bug!r}; known: "
            f"{', '.join(maintenance.VIEWS_BUGS)}")
    stats.cases += 1
    saved = maintenance.INJECT_BUG
    maintenance.INJECT_BUG = inject_bug
    try:
        for storage in storages:
            for backend in backends:
                _sweep_variant(case, stats, backend, storage)
    finally:
        maintenance.INJECT_BUG = saved


def sweep_cases_views(cases, stats: Optional[ViewSweepStats] = None,
                      backends=BACKENDS, storages=STORAGES,
                      inject_bug: Optional[str] = None
                      ) -> ViewSweepStats:
    """Sweep an iterable of cases; returns the (given) stats."""
    stats = stats or ViewSweepStats()
    for case in cases:
        sweep_case_views(case, stats, backends=backends,
                         storages=storages, inject_bug=inject_bug)
    return stats


def _sweep_variant(case: FuzzCase, stats: ViewSweepStats,
                   backend: str, storage: str) -> None:
    variant = f"{storage}/{backend}"
    kwargs: dict[str, Any] = dict(_BACKEND_KW[backend])
    tmp: Optional[str] = None
    if storage == "disk":
        tmp = tempfile.mkdtemp(prefix="repro-views-store-")
        kwargs.update(storage="disk", storage_path=tmp,
                      pool_pages=_STORAGE_POOL_PAGES)
    try:
        db = _load_db(case, **kwargs)
        try:
            _sweep_db(case, stats, db, variant)
        finally:
            db.close()
        if backend == "process":
            segments = shm.live_segment_names()
            if segments:
                shm.force_unlink_all()
                stats.findings.append(ViewFinding(
                    case, variant, "-",
                    "shared-memory segments leaked",
                    ", ".join(segments)))
        if tmp is not None:
            stray = storage_engine.stray_files(tmp)
            if stray:
                stats.findings.append(ViewFinding(
                    case, variant, "-", "stray store files leaked",
                    ", ".join(stray)))
    finally:
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)


def _sweep_db(case: FuzzCase, stats: ViewSweepStats, db,
              variant: str) -> None:
    sql = case.query_sql()
    try:
        db.execute(f"CREATE MATERIALIZED VIEW {VIEW_NAME} AS {sql}")
    except ReproError:
        # Unsupported shape (no GROUP BY, ...): rejection is the
        # subsystem doing its job, not a sweep failure.
        stats.rejected += 1
        return
    stats.variants += 1
    _check(case, stats, db, variant, sql, "build")
    rng = random.Random(f"views:{case.seed}:{case.index}")
    for i, dml in enumerate(_dml_script(rng, case)):
        step = f"dml#{i}"
        try:
            db.execute(dml)
        except ReproError as exc:
            stats.findings.append(ViewFinding(
                case, variant, step, "generated DML failed",
                f"{dml!r}: {type(exc).__name__}: {exc}"))
            continue
        _check(case, stats, db, variant, sql, step)
    db.execute(f"DROP MATERIALIZED VIEW {VIEW_NAME}")


def _check(case: FuzzCase, stats: ViewSweepStats, db, variant: str,
           sql: str, step: str) -> None:
    stats.checks += 1
    try:
        served = db.execute(sql)
    except ReproError as exc:
        stats.findings.append(ViewFinding(
            case, variant, step, "view-served read failed",
            f"{type(exc).__name__}: {exc}"))
        return
    try:
        expected = _recompute(case, db, sql)
    except ReproError as exc:
        stats.findings.append(ViewFinding(
            case, variant, step, "recompute baseline failed",
            f"{type(exc).__name__}: {exc}"))
        return
    difference = table_diff(expected, served)
    if difference is not None:
        stats.findings.append(ViewFinding(
            case, variant, step,
            "view-served result diverges from recompute", difference))


def _recompute(case: FuzzCase, db, sql: str) -> Table:
    """The from-scratch answer on the current base table, views off.

    The strategy is pinned per family (the same generators the smoke
    of the views package was proven bit-identical against), so the
    baseline is deterministic: the optimizer cannot switch routes
    mid-script as the table's statistics drift."""
    if case.family == "vpct":
        return run_percentage_query(db, sql,
                                    strategy=VerticalStrategy(),
                                    use_views=False)
    if case.family in ("hpct", "hagg"):
        return run_percentage_query(
            db, sql, strategy=HorizontalStrategy(source="F"),
            use_views=False)
    result = db.execute(sql, use_views=False)
    assert isinstance(result, Table)
    return result


# ----------------------------------------------------------------------
def table_diff(expected: Table, actual: Table) -> Optional[str]:
    """First bitwise difference between two result tables, or None.

    Stricter than row comparison: SQL types, null masks, row order and
    the raw bytes of the live values must all match, so NaN payloads
    and signed zeros count."""
    if expected.column_names() != actual.column_names():
        return (f"column names differ: {expected.column_names()} != "
                f"{actual.column_names()}")
    for name in expected.column_names():
        left, right = expected.column(name), actual.column(name)
        if left.sql_type != right.sql_type:
            return (f"column {name!r}: type {left.sql_type.name} != "
                    f"{right.sql_type.name}")
        if len(left.values) != len(right.values):
            return (f"column {name!r}: {len(left.values)} vs "
                    f"{len(right.values)} rows")
        if not np.array_equal(left.nulls, right.nulls):
            return f"column {name!r}: null masks differ"
        live = ~np.asarray(left.nulls, dtype=bool)
        lv = np.asarray(left.values)[live]
        rv = np.asarray(right.values)[live]
        if lv.size == 0:
            # All-NULL column: the backing array under the mask is an
            # implementation detail with no observable value bits.
            continue
        if lv.dtype != rv.dtype:
            return (f"column {name!r}: dtype {lv.dtype} != "
                    f"{rv.dtype}")
        if lv.dtype == object:
            if any(x != y for x, y in zip(lv, rv)):
                return f"column {name!r}: values differ"
        elif lv.tobytes() != rv.tobytes():
            return f"column {name!r}: values differ bitwise"
    return None


# ----------------------------------------------------------------------
def _dml_script(rng: random.Random, case: FuzzCase) -> list[str]:
    """A deterministic interleaving of inserts, measure updates,
    key-migrating updates and deletes against the case's table."""
    dims = [(n, t) for n, t in case.columns if n.startswith("d")]
    measures = [(n, t) for n, t in case.columns if n.startswith("m")]
    ops = ["insert", "insert", "update-measure", "delete"]
    if dims:
        ops.append("update-key")
    statements = []
    for _ in range(SCRIPT_LENGTH):
        op = rng.choice(ops)
        if op == "insert":
            statements.append(_insert(rng, case))
        elif op == "update-measure" and measures:
            name, type_name = rng.choice(measures)
            statements.append(
                f"UPDATE {case.table} SET {name} = "
                f"{_literal(_dml_value(rng, type_name))}"
                f"{_where(rng, case)}")
        elif op == "update-key" and dims:
            name, type_name = rng.choice(dims)
            statements.append(
                f"UPDATE {case.table} SET {name} = "
                f"{_literal(_dml_value(rng, type_name))}"
                f"{_where(rng, case)}")
        else:
            # An unfiltered DELETE (rare) kills every group at once.
            where = _where(rng, case) if rng.random() < 0.85 else ""
            statements.append(f"DELETE FROM {case.table}{where}")
    return statements


def _insert(rng: random.Random, case: FuzzCase) -> str:
    rows = []
    for _ in range(rng.randint(1, 2)):
        values = []
        for _, type_name in case.columns:
            value = None if rng.random() < 0.2 \
                else _dml_value(rng, type_name)
            values.append(_literal(value))
        rows.append("(" + ", ".join(values) + ")")
    return f"INSERT INTO {case.table} VALUES {', '.join(rows)}"


def _where(rng: random.Random, case: FuzzCase) -> str:
    name, type_name = rng.choice(case.columns)
    if rng.random() < 0.25:
        return f" WHERE {name} IS NULL"
    return f" WHERE {name} = {_literal(_dml_value(rng, type_name))}"


def _dml_value(rng: random.Random, type_name: str):
    return rng.choice(_DML_VALUES[type_name])


def _literal(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)
