"""Unit tests for the fault-injection registry."""

import threading

import pytest

from repro.engine import faults
from repro.engine.faults import FaultInjector, FaultSpec
from repro.errors import (ResourceExhausted, SimulatedCrash,
                          TransientError)


class TestFaultSpec:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec("no-such-site")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("statement", error="meltdown")

    def test_every_kind_maps_to_a_typed_error(self):
        assert faults.ERROR_KINDS["transient"] is TransientError
        assert faults.ERROR_KINDS["resource"] is ResourceExhausted
        assert faults.ERROR_KINDS["crash"] is SimulatedCrash


class TestFiring:
    def test_fires_at_hit_index(self):
        injector = FaultInjector([FaultSpec("statement", at=2)])
        injector.fire("statement")
        injector.fire("statement")
        with pytest.raises(TransientError, match="statement#2"):
            injector.fire("statement")

    def test_one_shot_then_quiet(self):
        injector = FaultInjector([FaultSpec("statement", at=0,
                                            times=1)])
        with pytest.raises(TransientError):
            injector.fire("statement")
        injector.fire("statement")  # spent: no further fault
        assert injector.faults_raised == 1

    def test_permanent_fault_fires_forever(self):
        injector = FaultInjector([FaultSpec("pivot", error="crash",
                                            times=None)])
        for _ in range(3):
            with pytest.raises(SimulatedCrash):
                injector.fire("pivot")

    def test_sites_count_independently(self):
        injector = FaultInjector([FaultSpec("join-build", at=1)])
        injector.fire("group-by")
        injector.fire("group-by")
        injector.fire("join-build")      # hit 0: below at
        with pytest.raises(TransientError):
            injector.fire("join-build")  # hit 1

    def test_hits_counted_even_without_specs(self):
        injector = FaultInjector()
        injector.fire("statement")
        injector.fire("statement")
        injector.fire("group-by")
        assert injector.hits == {"statement": 2, "group-by": 1}


class TestChaosMode:
    def test_seed_replayable(self):
        def run(seed):
            injector = FaultInjector(seed=seed, rate=0.5)
            fired = []
            for i in range(50):
                try:
                    injector.fire("statement")
                    fired.append(False)
                except TransientError:
                    fired.append(True)
            return fired

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_chaos_respects_site_filter(self):
        injector = FaultInjector(seed=0, rate=1.0,
                                 chaos_sites=("pivot",))
        injector.fire("statement")  # not a chaos site: never fires
        with pytest.raises(TransientError):
            injector.fire("pivot")


class TestActivation:
    def test_module_fire_is_noop_without_injector(self):
        faults.fire("statement")  # must not raise

    def test_active_installs_and_restores(self):
        injector = FaultInjector()
        assert faults.current() is None
        with faults.active(injector):
            assert faults.current() is injector
            faults.fire("statement")
        assert faults.current() is None
        assert injector.hits == {"statement": 1}

    def test_active_nests(self):
        outer, inner = FaultInjector(), FaultInjector()
        with faults.active(outer):
            with faults.active(inner):
                assert faults.current() is inner
            assert faults.current() is outer

    def test_injectors_are_thread_local(self):
        injector = FaultInjector([FaultSpec("statement", at=0,
                                            times=None)])
        seen = {}

        def other_thread():
            # No injector active here: fire() must be a no-op.
            try:
                faults.fire("statement")
                seen["raised"] = False
            except TransientError:
                seen["raised"] = True

        with faults.active(injector):
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
            with pytest.raises(TransientError):
                faults.fire("statement")
        assert seen["raised"] is False
