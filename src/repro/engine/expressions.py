"""Vectorized, NULL-aware evaluation of expression ASTs.

Expressions are evaluated against a :class:`Frame`, which binds column
names (bare and table-qualified) to :class:`ColumnData` vectors of a
common length.  Evaluation follows SQL three-valued logic:

* any arithmetic or comparison with a NULL operand yields NULL;
* ``AND``/``OR`` use Kleene logic;
* division by zero yields NULL (rather than an error) -- the paper's
  generated code guards divisions with CASE anyway, and a vectorized
  evaluator computes both CASE branches before masking, so the unguarded
  lanes must not trap;
* CASE returns the first matching branch, NULL when nothing matches and
  there is no ELSE.

The evaluator charges :class:`~repro.engine.stats.StatsCollector`
``case_evaluations`` with ``n_whens * n_rows`` per CASE expression,
which is exactly the cost model the paper uses when it argues the
optimizer wastes ``O(N)`` comparisons per row on horizontal-aggregation
queries (DMKD Section 3.5).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.engine.column import ColumnData
from repro.engine.stats import StatsCollector
from repro.engine.table import Table
from repro.engine.types import (SQLType, coerce_scalar, infer_type,
                                type_from_name)
from repro.errors import PlanningError, TypeMismatchError
from repro.sql import ast


class Frame:
    """Name-resolution scope for expression evaluation.

    Columns are registered under their bare name and, when the source
    has a binding (table name or alias), under ``binding.name``.  Bare
    lookups that match several distinct registrations are ambiguous.
    """

    def __init__(self, n_rows: int):
        self.n_rows = n_rows
        self._qualified: dict[str, ColumnData] = {}
        self._bare: dict[str, list[str]] = {}
        self._bindings: list[str] = []

    # ------------------------------------------------------------------
    def add_column(self, name: str, data: ColumnData,
                   binding: Optional[str] = None) -> None:
        if len(data) != self.n_rows:
            raise PlanningError(
                f"column {name!r} has {len(data)} rows; frame has "
                f"{self.n_rows}")
        if binding:
            key = f"{binding.lower()}.{name.lower()}"
        else:
            key = name.lower()
        self._qualified[key] = data
        self._bare.setdefault(name.lower(), []).append(key)

    def add_table(self, binding: str, table: Table) -> None:
        self._bindings.append(binding.lower())
        for col in table.schema.columns:
            self.add_column(col.name, table.column(col.name),
                            binding=binding)

    def bindings(self) -> list[str]:
        return list(self._bindings)

    def has(self, ref: ast.ColumnRef) -> bool:
        try:
            self.resolve(ref)
        except PlanningError:
            return False
        return True

    def resolve(self, ref: ast.ColumnRef) -> ColumnData:
        if ref.table:
            key = f"{ref.table.lower()}.{ref.name.lower()}"
            data = self._qualified.get(key)
            if data is None:
                raise PlanningError(f"unknown column {ref.table}.{ref.name}")
            return data
        keys = self._bare.get(ref.name.lower(), [])
        if not keys:
            raise PlanningError(f"unknown column {ref.name}")
        if len(keys) > 1:
            # Re-registrations of the same underlying array are fine
            # (a column added bare and qualified); different arrays clash.
            arrays = {id(self._qualified[k]) for k in keys}
            if len(arrays) > 1:
                raise PlanningError(f"ambiguous column reference {ref.name}")
        return self._qualified[keys[0]]


#: Pseudo-type for an all-NULL column whose type is not yet known
#: (the NULL literal).  Combining rules coerce it to the other side.
_UNTYPED = None


def untyped_null(length: int) -> ColumnData:
    """An all-NULL column with no committed type."""
    data = ColumnData.all_null(SQLType.VARCHAR, length)
    data.sql_type = _UNTYPED  # type: ignore[assignment]
    return data


def _is_untyped(col: ColumnData) -> bool:
    return col.sql_type is _UNTYPED


def _commit(col: ColumnData, target: SQLType) -> ColumnData:
    """Give an untyped NULL column a concrete type, or cast numerics."""
    if _is_untyped(col):
        return ColumnData.all_null(target, len(col))
    if col.sql_type == target:
        return col
    return col.cast(target)


def _unify(left: ColumnData, right: ColumnData
           ) -> tuple[ColumnData, ColumnData, SQLType]:
    """Coerce two columns to a common type for comparison/merging."""
    if _is_untyped(left) and _is_untyped(right):
        both = SQLType.REAL
        return _commit(left, both), _commit(right, both), both
    if _is_untyped(left):
        return _commit(left, right.sql_type), right, right.sql_type
    if _is_untyped(right):
        return left, _commit(right, left.sql_type), left.sql_type
    if left.sql_type == right.sql_type:
        return left, right, left.sql_type
    if left.sql_type.is_numeric and right.sql_type.is_numeric:
        return (left.cast(SQLType.REAL), right.cast(SQLType.REAL),
                SQLType.REAL)
    raise TypeMismatchError(
        f"incompatible types: {left.sql_type} and {right.sql_type}")


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def evaluate(expr: ast.Expr, frame: Frame,
             stats: Optional[StatsCollector] = None) -> ColumnData:
    """Evaluate ``expr`` over every row of ``frame``."""
    if isinstance(expr, ast.Literal):
        return _eval_literal(expr, frame.n_rows)
    if isinstance(expr, ast.ColumnRef):
        return frame.resolve(expr)
    if isinstance(expr, ast.UnaryOp):
        return _eval_unary(expr, frame, stats)
    if isinstance(expr, ast.BinaryOp):
        return _eval_binary(expr, frame, stats)
    if isinstance(expr, ast.IsNull):
        return _eval_is_null(expr, frame, stats)
    if isinstance(expr, ast.InList):
        return _eval_in_list(expr, frame, stats)
    if isinstance(expr, ast.CaseWhen):
        return _eval_case(expr, frame, stats)
    if isinstance(expr, ast.Cast):
        return _eval_cast(expr, frame, stats)
    if isinstance(expr, ast.FuncCall):
        return _eval_scalar_func(expr, frame, stats)
    if isinstance(expr, ast.Star):
        raise PlanningError("'*' is only valid in a select list or count(*)")
    raise PlanningError(f"cannot evaluate expression node {expr!r}")


def evaluate_scalar(expr: ast.Expr) -> Any:
    """Evaluate a constant expression to one Python value."""
    frame = Frame(n_rows=1)
    result = evaluate(expr, frame)
    return result[0]


# ----------------------------------------------------------------------
# Node handlers
# ----------------------------------------------------------------------
def _eval_literal(expr: ast.Literal, n_rows: int) -> ColumnData:
    if expr.value is None:
        return untyped_null(n_rows)
    sql_type = infer_type(expr.value)
    return ColumnData.constant(sql_type, expr.value, n_rows)


def _eval_unary(expr: ast.UnaryOp, frame: Frame,
                stats: Optional[StatsCollector]) -> ColumnData:
    operand = evaluate(expr.operand, frame, stats)
    if expr.op == "-":
        operand = _commit(operand, operand.sql_type or SQLType.REAL)
        if not operand.sql_type.is_numeric:
            raise TypeMismatchError(
                f"unary '-' requires a numeric operand, got "
                f"{operand.sql_type}")
        return ColumnData(operand.sql_type, -operand.values,
                          operand.nulls.copy())
    if expr.op == "NOT":
        operand = _commit(operand, SQLType.BOOLEAN)
        return ColumnData(SQLType.BOOLEAN, ~operand.values,
                          operand.nulls.copy())
    raise PlanningError(f"unknown unary operator {expr.op!r}")


_COMPARISONS = {"=", "<>", "<", "<=", ">", ">="}
_ARITHMETIC = {"+", "-", "*", "/"}


def _eval_binary(expr: ast.BinaryOp, frame: Frame,
                 stats: Optional[StatsCollector]) -> ColumnData:
    op = expr.op
    if op in ("AND", "OR"):
        left = _commit(evaluate(expr.left, frame, stats), SQLType.BOOLEAN)
        right = _commit(evaluate(expr.right, frame, stats), SQLType.BOOLEAN)
        return _kleene(op, left, right)

    if op in _COMPARISONS:
        # Fast path: comparison against a literal avoids materializing
        # a constant column (this is the inner loop of the paper's
        # CASE-heavy horizontal aggregation statements).
        if isinstance(expr.right, ast.Literal) \
                and expr.right.value is not None:
            left = evaluate(expr.left, frame, stats)
            return _compare_scalar(op, left, expr.right.value)
        if isinstance(expr.left, ast.Literal) \
                and expr.left.value is not None:
            right = evaluate(expr.right, frame, stats)
            return _compare_scalar(_FLIPPED[op], right, expr.left.value)

    left = evaluate(expr.left, frame, stats)
    right = evaluate(expr.right, frame, stats)

    if op in _ARITHMETIC:
        return _arithmetic(op, left, right)
    if op in _COMPARISONS:
        return _comparison(op, left, right)
    raise PlanningError(f"unknown binary operator {op!r}")


def _arithmetic(op: str, left: ColumnData,
                right: ColumnData) -> ColumnData:
    left, right, common = _unify(left, right)
    if not common.is_numeric:
        raise TypeMismatchError(
            f"arithmetic '{op}' requires numeric operands, got {common}")
    nulls = left.nulls | right.nulls
    if op == "/":
        lhs = left.values.astype(np.float64)
        rhs = right.values.astype(np.float64)
        zero = rhs == 0.0
        with np.errstate(divide="ignore", invalid="ignore"):
            values = np.where(zero, 0.0, lhs / np.where(zero, 1.0, rhs))
        return ColumnData(SQLType.REAL, values, nulls | zero)
    if op == "+":
        values = left.values + right.values
    elif op == "-":
        values = left.values - right.values
    else:
        values = left.values * right.values
    return ColumnData(common, values, nulls)


_FLIPPED = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<",
            ">=": "<="}


def _compare_scalar(op: str, left: ColumnData, value) -> ColumnData:
    """``column op scalar`` without materializing a constant column."""
    value_type = infer_type(value)
    if left.sql_type is _UNTYPED:
        return ColumnData.all_null(SQLType.BOOLEAN, len(left))
    if left.sql_type != value_type and not (
            left.sql_type.is_numeric and value_type.is_numeric):
        raise TypeMismatchError(
            f"incompatible types: {left.sql_type} and {value_type}")
    lhs = left.values
    if left.sql_type == SQLType.VARCHAR and left.nulls.any():
        lhs = np.where(left.nulls, "", lhs)
    if op == "=":
        values = lhs == value
    elif op == "<>":
        values = lhs != value
    elif op == "<":
        values = lhs < value
    elif op == "<=":
        values = lhs <= value
    elif op == ">":
        values = lhs > value
    else:
        values = lhs >= value
    return ColumnData(SQLType.BOOLEAN, np.asarray(values, dtype=bool),
                      left.nulls)


def _comparison(op: str, left: ColumnData,
                right: ColumnData) -> ColumnData:
    left, right, common = _unify(left, right)
    nulls = left.nulls | right.nulls
    lhs, rhs = left.values, right.values
    if common == SQLType.VARCHAR:
        # Object arrays: make NULL lanes comparable before vector ops.
        lhs = np.where(left.nulls, "", lhs)
        rhs = np.where(right.nulls, "", rhs)
    if op == "=":
        values = lhs == rhs
    elif op == "<>":
        values = lhs != rhs
    elif op == "<":
        values = lhs < rhs
    elif op == "<=":
        values = lhs <= rhs
    elif op == ">":
        values = lhs > rhs
    else:
        values = lhs >= rhs
    return ColumnData(SQLType.BOOLEAN, np.asarray(values, dtype=bool),
                      nulls)


def _kleene(op: str, left: ColumnData, right: ColumnData) -> ColumnData:
    """Three-valued AND/OR."""
    lv = left.values & ~left.nulls
    rv = right.values & ~right.nulls
    if op == "AND":
        false_somewhere = (~left.values & ~left.nulls) | \
                          (~right.values & ~right.nulls)
        values = lv & rv
        nulls = (left.nulls | right.nulls) & ~false_somewhere
    else:
        true_somewhere = lv | rv
        values = true_somewhere
        nulls = (left.nulls | right.nulls) & ~true_somewhere
    return ColumnData(SQLType.BOOLEAN, values, nulls)


def _eval_is_null(expr: ast.IsNull, frame: Frame,
                  stats: Optional[StatsCollector]) -> ColumnData:
    operand = evaluate(expr.operand, frame, stats)
    values = ~operand.nulls if expr.negated else operand.nulls.copy()
    return ColumnData(SQLType.BOOLEAN, values,
                      np.zeros(len(operand), dtype=bool))


def _eval_in_list(expr: ast.InList, frame: Frame,
                  stats: Optional[StatsCollector]) -> ColumnData:
    """``x IN (a, b, ...)`` as a fold of ``=`` over OR (Kleene)."""
    operand = evaluate(expr.operand, frame, stats)
    result: Optional[ColumnData] = None
    for item in expr.items:
        eq = _comparison("=", operand, evaluate(item, frame, stats))
        result = eq if result is None else _kleene("OR", result, eq)
    if result is None:
        result = ColumnData.constant(SQLType.BOOLEAN, False, frame.n_rows)
    if expr.negated:
        result = ColumnData(SQLType.BOOLEAN, ~result.values,
                            result.nulls.copy())
    return result


def _eval_case(expr: ast.CaseWhen, frame: Frame,
               stats: Optional[StatsCollector]) -> ColumnData:
    """Searched CASE: first matching WHEN wins; charge N*rows to stats."""
    n = frame.n_rows
    if stats is not None:
        stats.add(case_evaluations=len(expr.whens) * n)

    branches: list[tuple[np.ndarray, ColumnData]] = []
    unmatched = np.ones(n, dtype=bool)
    for cond_expr, result_expr in expr.whens:
        cond = _commit(evaluate(cond_expr, frame, stats), SQLType.BOOLEAN)
        fires = cond.values & ~cond.nulls & unmatched
        branches.append((fires, evaluate(result_expr, frame, stats)))
        unmatched = unmatched & ~fires
    else_is_null = expr.else_ is None or (
        isinstance(expr.else_, ast.Literal) and expr.else_.value is None)
    if not else_is_null:
        branches.append((unmatched, evaluate(expr.else_, frame, stats)))
    # A missing (or literal-NULL) ELSE needs no branch: the output
    # starts out all-NULL, so unmatched rows are already correct.

    # Determine the common result type across branches.
    result_type: Optional[SQLType] = None
    for _, col in branches:
        if _is_untyped(col):
            continue
        if result_type is None:
            result_type = col.sql_type
        elif result_type != col.sql_type:
            if result_type.is_numeric and col.sql_type.is_numeric:
                result_type = SQLType.REAL
            else:
                raise TypeMismatchError(
                    f"CASE branches mix {result_type} and {col.sql_type}")
    if result_type is None:
        result_type = SQLType.REAL

    out = ColumnData.all_null(result_type, n)
    for fires, col in branches:
        col = _commit(col, result_type)
        out.values[fires] = col.values[fires]
        out.nulls[fires] = col.nulls[fires]
    return out


def _eval_cast(expr: ast.Cast, frame: Frame,
               stats: Optional[StatsCollector]) -> ColumnData:
    operand = evaluate(expr.operand, frame, stats)
    target = type_from_name(expr.type_name)
    if _is_untyped(operand):
        return ColumnData.all_null(target, len(operand))
    if operand.sql_type == target:
        return operand
    if operand.sql_type.is_numeric and target == SQLType.VARCHAR:
        values = np.array([_number_to_str(v) for v in operand.values],
                          dtype=object)
        return ColumnData(target, values, operand.nulls.copy())
    if operand.sql_type == SQLType.REAL and target == SQLType.INTEGER:
        return ColumnData(target, operand.values.astype(np.int64),
                          operand.nulls.copy())
    return operand.cast(target)


def _number_to_str(value: Any) -> str:
    if isinstance(value, (float, np.floating)) and float(value).is_integer():
        return str(int(value))
    return str(value)


_SCALAR_FUNCS = {"abs", "round", "floor", "ceil", "coalesce", "nullif"}


def _eval_scalar_func(expr: ast.FuncCall, frame: Frame,
                      stats: Optional[StatsCollector]) -> ColumnData:
    name = expr.name
    if expr.is_extended:
        raise PlanningError(
            f"{name}() with a BY clause is an extended aggregation; it "
            f"must be rewritten by the percentage-query code generator "
            f"before execution (see repro.core)")
    if name in ast.AGGREGATE_NAMES:
        raise PlanningError(
            f"aggregate {name}() is not allowed in this context")
    if name not in _SCALAR_FUNCS:
        raise PlanningError(f"unknown function {name}()")

    if name == "coalesce":
        if not expr.args:
            raise PlanningError("coalesce() requires arguments")
        result = evaluate(expr.args[0], frame, stats)
        for arg in expr.args[1:]:
            nxt = evaluate(arg, frame, stats)
            result, nxt, common = _unify(result, nxt)
            values = np.where(result.nulls, nxt.values, result.values)
            if common == SQLType.VARCHAR:
                values = values.astype(object)
            nulls = result.nulls & nxt.nulls
            result = ColumnData(common, values, nulls)
        return result
    if name == "nullif":
        if len(expr.args) != 2:
            raise PlanningError("nullif() requires two arguments")
        left = evaluate(expr.args[0], frame, stats)
        right = evaluate(expr.args[1], frame, stats)
        eq = _comparison("=", left, right)
        hit = eq.values & ~eq.nulls
        return ColumnData(left.sql_type, left.values.copy(),
                          left.nulls | hit)

    if len(expr.args) != 1:
        raise PlanningError(f"{name}() requires one argument")
    operand = evaluate(expr.args[0], frame, stats)
    operand = _commit(operand, operand.sql_type or SQLType.REAL)
    if not operand.sql_type.is_numeric:
        raise TypeMismatchError(f"{name}() requires a numeric argument")
    values = operand.values
    if name == "abs":
        out, out_type = np.abs(values), operand.sql_type
    elif name == "round":
        out, out_type = np.round(values.astype(np.float64)), SQLType.REAL
    elif name == "floor":
        out, out_type = np.floor(values.astype(np.float64)), SQLType.REAL
    else:  # ceil
        out, out_type = np.ceil(values.astype(np.float64)), SQLType.REAL
    return ColumnData(out_type, out.astype(out_type.numpy_dtype),
                      operand.nulls.copy())
