"""Logical cost accounting for executed statements.

The paper explains its timings in terms of logical work: how many scans
of ``F`` a strategy needs, how large the intermediates are, how much an
UPDATE writes versus an INSERT, and how many CASE terms are evaluated
per row.  :class:`StatsCollector` counts exactly those quantities so
benchmarks can report them next to wall-clock time.

Counters (all cumulative until :meth:`reset`):

* ``rows_scanned``   -- rows read by table scans.
* ``rows_written``   -- rows materialized into tables (INSERT/CREATE).
* ``rows_updated``   -- rows rewritten in place by UPDATE.
* ``rows_joined``    -- rows produced by join operators.
* ``case_evaluations`` -- WHEN-branch evaluations performed by CASE
  expressions (the paper's ``N`` comparisons-per-row cost).
* ``statements``     -- SQL statements executed.
* ``index_lookups``  -- probes served by a hash index.
* ``encode_cache_hits`` / ``encode_cache_misses`` /
  ``encode_cache_evictions`` -- dictionary-encoding cache traffic.
  These are deliberately **not** part of :meth:`StatementStats.
  logical_io`: the cache saves wall-clock work, not logical I/O, so
  the paper's cost shapes are bit-identical with the cache on or off.

Thread safety: one collector is shared by every session of a
:class:`~repro.api.database.Database` -- and, under the concurrent
query service, by every scheduler worker.  A bare ``counter += n`` is
a read-modify-write that silently drops increments when two threads
interleave, so all engine code charges counters through :meth:`add`,
which holds the collector's lock across the whole update.  Reads
(``snapshot``/``diff_since``) take the same lock so a snapshot is a
consistent cut across all counters.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

#: The integer counters StatsCollector maintains (everything
#: :meth:`StatsCollector.add` accepts).
COUNTER_NAMES = (
    "rows_scanned", "rows_written", "rows_updated", "rows_joined",
    "case_evaluations", "index_lookups", "encode_cache_hits",
    "encode_cache_misses", "encode_cache_evictions", "statements",
)


@dataclass
class StatementStats:
    """Per-statement snapshot of the counters."""

    sql: str = ""
    rows_scanned: int = 0
    rows_written: int = 0
    rows_updated: int = 0
    rows_joined: int = 0
    case_evaluations: int = 0
    index_lookups: int = 0
    encode_cache_hits: int = 0
    encode_cache_misses: int = 0
    encode_cache_evictions: int = 0
    elapsed_seconds: float = 0.0

    def logical_io(self) -> int:
        """A single blended number: reads + writes (updates write twice,
        mirroring the read-modify-write the paper observed dominating)."""
        return (self.rows_scanned + self.rows_written
                + 2 * self.rows_updated)


@dataclass
class StatsCollector:
    """Accumulates engine counters; owned by the Database.

    Mutate only through :meth:`add` / :meth:`record_statement` /
    :meth:`reset` -- direct ``collector.counter += n`` is not safe
    under the worker pool (lost updates).  Plain attribute *reads*
    remain supported for compatibility; use :meth:`snapshot` when a
    consistent multi-counter cut matters.
    """

    rows_scanned: int = 0
    rows_written: int = 0
    rows_updated: int = 0
    rows_joined: int = 0
    case_evaluations: int = 0
    index_lookups: int = 0
    encode_cache_hits: int = 0
    encode_cache_misses: int = 0
    encode_cache_evictions: int = 0
    statements: int = 0
    history: list[StatementStats] = field(default_factory=list)
    keep_history: bool = False

    def __post_init__(self) -> None:
        # Not a dataclass field: the lock is identity state, never
        # compared or copied.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def add(self, **counts: int) -> None:
        """Atomically add ``counts`` to the named counters.

        All increments land under one lock acquisition, so concurrent
        statements never drop each other's charges and a
        :meth:`snapshot` taken by another thread sees either all of a
        call's increments or none of them.
        """
        with self._lock:
            for name, n in counts.items():
                if name not in COUNTER_NAMES:
                    raise AttributeError(
                        f"unknown stats counter {name!r}")
                setattr(self, name, getattr(self, name) + int(n))

    def reset(self) -> None:
        with self._lock:
            for name in COUNTER_NAMES:
                setattr(self, name, 0)
            self.history.clear()

    def snapshot(self) -> StatementStats:
        """Current totals as a StatementStats value (consistent cut)."""
        with self._lock:
            return StatementStats(
                rows_scanned=self.rows_scanned,
                rows_written=self.rows_written,
                rows_updated=self.rows_updated,
                rows_joined=self.rows_joined,
                case_evaluations=self.case_evaluations,
                index_lookups=self.index_lookups,
                encode_cache_hits=self.encode_cache_hits,
                encode_cache_misses=self.encode_cache_misses,
                encode_cache_evictions=self.encode_cache_evictions)

    def diff_since(self, before: StatementStats) -> StatementStats:
        """Counters accumulated since ``before`` was snapshotted."""
        now = self.snapshot()
        return StatementStats(
            rows_scanned=now.rows_scanned - before.rows_scanned,
            rows_written=now.rows_written - before.rows_written,
            rows_updated=now.rows_updated - before.rows_updated,
            rows_joined=now.rows_joined - before.rows_joined,
            case_evaluations=(now.case_evaluations
                              - before.case_evaluations),
            index_lookups=now.index_lookups - before.index_lookups,
            encode_cache_hits=(now.encode_cache_hits
                               - before.encode_cache_hits),
            encode_cache_misses=(now.encode_cache_misses
                                 - before.encode_cache_misses),
            encode_cache_evictions=(now.encode_cache_evictions
                                    - before.encode_cache_evictions))

    # ------------------------------------------------------------------
    def record_statement(self, stats: StatementStats) -> None:
        with self._lock:
            self.statements += 1
            if self.keep_history:
                self.history.append(stats)
