"""Code generation for vertical percentage queries (Section 3.1).

Given a percentage query with ``Vpct()`` terms, this module emits the
standard-SQL statement sequence of the paper's evaluation strategy:

1. aggregate ``F`` at the fine level into ``Fk``
   (``GROUP BY D1, ..., Dk``; the only level computable from ``F``);
2. per Vpct term, aggregate the totals into ``Fj`` -- either from
   ``Fk`` (the partial-aggregate optimization, sum() is distributive)
   or from ``F``;
3. optionally create identical indexes on the common subkey of ``Fj``
   and ``Fk``;
4. divide: either INSERT the percentages into a fresh ``FV`` joining
   ``Fk`` with the ``Fj`` tables, or UPDATE ``Fk`` in place
   (``FV = Fk``), both guarding division by zero with CASE;
5. optionally repair missing rows by post-processing ``FV`` (or
   pre-processing ``F``).

Every knob in :class:`VerticalStrategy` corresponds to one column of
the paper's Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.api.database import Database
from repro.core import common, model, plan as plan_mod
from repro.core.plan import GeneratedPlan
from repro.errors import PercentageQueryError
from repro.sql.formatter import quote_ident


@dataclass(frozen=True)
class VerticalStrategy:
    """Evaluation knobs for Vpct queries (Table 4 columns).

    Attributes:
        fj_from_fk: compute the coarse aggregate from the partial
            aggregate ``Fk`` rather than rescanning ``F`` (Table 4
            column (4) turns this *off*).
        use_update: produce ``FV`` by updating ``Fk`` in place instead
            of inserting into a third table (column (3)); saves the
            third temp table at the cost the paper measured.
        create_indexes: create indexes on the common subkey of ``Fj``
            and ``Fk`` before the division join.
        matching_indexes: make those indexes identical; when False only
            ``Fk`` is indexed (on a key the join cannot use as the
            build side), reproducing column (2)'s mismatched setup.
        single_statement: emit the derived-table rephrasal (one SELECT
            with two subqueries) -- "a rephrasal of the first
            strategy"; only valid for one Vpct term and no UPDATE.
        missing_rows: ``"none"`` (default; the paper notes users may
            not want insertion), ``"post"`` (insert zero-percentage
            rows into ``FV``), or ``"pre"`` (insert zero-measure rows
            into ``F`` itself -- mutates ``F``!).
    """

    fj_from_fk: bool = True
    use_update: bool = False
    create_indexes: bool = True
    matching_indexes: bool = True
    single_statement: bool = False
    missing_rows: str = "none"

    def __post_init__(self) -> None:
        if self.missing_rows not in ("none", "post", "pre"):
            raise ValueError("missing_rows must be none|post|pre")

    def describe(self) -> str:
        parts = ["vertical"]
        parts.append("Fj<-Fk" if self.fj_from_fk else "Fj<-F")
        parts.append("update" if self.use_update else "insert")
        if not self.create_indexes:
            parts.append("no-index")
        elif not self.matching_indexes:
            parts.append("mismatched-index")
        if self.single_statement:
            parts.append("single-statement")
        if self.missing_rows != "none":
            parts.append(f"missing-rows={self.missing_rows}")
        return " ".join(parts)


@dataclass
class _TermPlan:
    """Resolved layout for one aggregate term inside Fk/FV."""

    term: model.AggregateTerm
    column: str                  # storage/result column name
    totals: tuple[str, ...] = ()  # D1..Dj for Vpct terms
    fj_table: str = ""


def generate_vertical(db: Database, query: model.PercentageQuery,
                      strategy: Optional[VerticalStrategy] = None
                      ) -> GeneratedPlan:
    """Generate the statement sequence for a Vpct query."""
    strategy = strategy or VerticalStrategy()
    if not query.vertical_pct_terms():
        raise PercentageQueryError("the query has no Vpct() term")
    if query.has_horizontal:
        raise PercentageQueryError(
            "vertical generation cannot handle horizontal terms")

    prefix = plan_mod.fresh_prefix("vp")
    result = GeneratedPlan(strategy=strategy,
                           description=strategy.describe())

    table = _materialize_if_needed(db, query, prefix, result)
    fact = replace_table(query, table)

    if strategy.missing_rows == "pre":
        _preprocess_missing_rows(db, fact, prefix, result)

    used: set[str] = set(c.lower() for c in fact.group_by)
    term_plans = [
        _TermPlan(term=t, column=common.vertical_term_name(t, used),
                  totals=_totals_of(t, fact))
        for t in fact.terms]

    if strategy.single_statement:
        _generate_single_statement(db, fact, term_plans, result)
        return result

    fk = f"{prefix}_fk"
    _generate_fk(db, fact, term_plans, fk, result)
    vpct_plans = [t for t in term_plans if t.term.kind == model.VPCT]
    for i, tp in enumerate(vpct_plans):
        tp.fj_table = f"{prefix}_fj{i + 1}"
    # Bottom-up over the dimension lattice (Section 3.1: "partial
    # aggregations need to be computed bottom-up based on the
    # dimension lattice"): generate finer totals first so coarser ones
    # can re-aggregate them instead of rescanning Fk.
    generated: list[_TermPlan] = []
    for tp in sorted(vpct_plans, key=lambda t: -len(t.totals)):
        source = _lattice_source(tp, generated) \
            if strategy.fj_from_fk else None
        _generate_fj(db, fact, tp, fk, strategy, result,
                     lattice_source=source)
        generated.append(tp)
    _generate_indexes(fact, term_plans, fk, strategy, result)

    if strategy.use_update:
        _generate_update_division(db, fact, term_plans, fk, result)
        result.result_table = fk
    else:
        fv = f"{prefix}_fv"
        _generate_insert_division(db, fact, term_plans, fk, fv, result)
        result.result_table = fv

    if strategy.missing_rows == "post":
        _postprocess_missing_rows(db, fact, term_plans,
                                  result.result_table, prefix, result)

    order = common.column_list(fact.group_by)
    result.result_select = (f"SELECT * FROM {result.result_table}"
                            + (f" ORDER BY {order}" if order else ""))
    return result


# ----------------------------------------------------------------------
def replace_table(query: model.PercentageQuery,
                  table: str) -> model.PercentageQuery:
    """The query rebased onto a (possibly materialized) fact table."""
    if table == query.table:
        return query
    return model.PercentageQuery(
        table=table, group_by=query.group_by,
        dimensions=query.dimensions, terms=query.terms,
        where=None if query.source_select is not None else query.where,
        source_select=None, sql=query.sql)


def _materialize_if_needed(db: Database, query: model.PercentageQuery,
                           prefix: str, result: GeneratedPlan) -> str:
    """Materialize a multi-table FROM clause into a temp fact table.

    The statement is executed *now*: downstream generation needs the
    table's schema (and, for horizontal queries, its distinct values).
    The step is still recorded in the plan, but the runner skips
    MATERIALIZE steps because they already ran.
    """
    if query.source_select is None:
        if db.catalog.has_view(query.table):
            # F is a view: snapshot it so downstream statements (and
            # schema inference) see a plain table.
            view = f"{prefix}_f"
            sql = (f"CREATE TABLE {view} AS SELECT * "
                   f"FROM {query.table}")
            result.add(sql, plan_mod.MATERIALIZE)
            result.temp_tables.append(view)
            db.execute(sql)
            return view
        return query.table
    view = f"{prefix}_f"
    sql = f"CREATE TABLE {view} AS {common.materialization_select(query)}"
    result.add(sql, plan_mod.MATERIALIZE)
    result.temp_tables.append(view)
    db.execute(sql)
    return view


def _totals_of(term: model.AggregateTerm,
               query: model.PercentageQuery) -> tuple[str, ...]:
    """D1..Dj for a Vpct term: GROUP BY minus the BY columns; no BY
    clause means global totals (empty tuple)."""
    if term.kind != model.VPCT:
        return ()
    if not term.by_columns:
        return ()
    by = set(term.by_columns)
    return tuple(c for c in query.group_by if c not in by)


# ----------------------------------------------------------------------
# Step generators
# ----------------------------------------------------------------------
def _generate_fk(db: Database, query: model.PercentageQuery,
                 term_plans: list[_TermPlan], fk: str,
                 result: GeneratedPlan) -> None:
    """CREATE + INSERT the fine-level aggregate Fk (from F only; the
    finest level "can only be computed from F")."""
    columns = common.typed_columns_sql(db, query.table, query.group_by)
    for tp in term_plans:
        sql_type = _storage_type_of(db, query.table, tp.term)
        columns.append(f"{quote_ident(tp.column)} "
                       f"{common.column_type_name(sql_type)}")
    key = common.column_list(query.group_by)
    result.add(f"CREATE TABLE {fk} (" + ", ".join(columns)
               + (f") PRIMARY KEY ({key})" if key else ")"),
               plan_mod.CREATE_TEMP)
    result.temp_tables.append(fk)

    selects = [common.column_list(query.group_by)] if query.group_by \
        else []
    for tp in term_plans:
        selects.append(_fk_aggregate_sql(tp.term))
    result.add(
        f"INSERT INTO {fk} SELECT " + ", ".join(selects)
        + f" FROM {query.table}" + common.where_suffix(query.where)
        + (f" GROUP BY {key}" if key else ""),
        plan_mod.AGGREGATE_FK)


def _fk_aggregate_sql(term: model.AggregateTerm) -> str:
    """The base aggregate stored in Fk for one term (Vpct stores the
    sum to be divided; other terms store their own aggregate)."""
    if term.kind == model.VPCT:
        return f"sum({common.argument_sql(term)})"
    distinct = "DISTINCT " if term.distinct else ""
    return f"{term.func}({distinct}{common.argument_sql(term)})"


def _storage_type_of(db: Database, table: str,
                     term: model.AggregateTerm):
    func = "sum" if term.kind == model.VPCT else term.func
    arg_type = common.infer_expr_type(db, table, term.argument) \
        if term.argument is not None else None
    return common.storage_type(func, arg_type) if arg_type is not None \
        else common.storage_type("count", None)


def _lattice_source(tp: _TermPlan,
                    generated: list[_TermPlan]) -> Optional[_TermPlan]:
    """A finer, already-generated totals table this term can
    re-aggregate (same argument, strictly coarser grouping)."""
    mine = set(tp.totals)
    best: Optional[_TermPlan] = None
    for candidate in generated:
        if candidate.term.argument != tp.term.argument:
            continue
        theirs = set(candidate.totals)
        if mine < theirs:
            if best is None or len(candidate.totals) < len(best.totals):
                best = candidate
    return best


def _generate_fj(db: Database, query: model.PercentageQuery,
                 tp: _TermPlan, fk: str, strategy: VerticalStrategy,
                 result: GeneratedPlan,
                 lattice_source: Optional[_TermPlan] = None) -> None:
    """CREATE + INSERT one totals table Fj: from a finer Fj when the
    lattice allows, else from Fk (partial aggregates), else from F."""
    columns = common.typed_columns_sql(db, query.table, tp.totals)
    columns.append("total REAL")
    key = common.column_list(tp.totals)
    result.add(f"CREATE TABLE {tp.fj_table} (" + ", ".join(columns)
               + (f") PRIMARY KEY ({key})" if key else ")"),
               plan_mod.CREATE_TEMP)
    result.temp_tables.append(tp.fj_table)

    prefix = f"{key}, " if key else ""
    if lattice_source is not None:
        body = (f"SELECT {prefix}sum(total) "
                f"FROM {lattice_source.fj_table}"
                + (f" GROUP BY {key}" if key else ""))
    elif strategy.fj_from_fk:
        body = (f"SELECT {prefix}sum({quote_ident(tp.column)}) FROM {fk}"
                + (f" GROUP BY {key}" if key else ""))
    else:
        body = (f"SELECT {prefix}sum({common.argument_sql(tp.term)}) "
                f"FROM {query.table}" + common.where_suffix(query.where)
                + (f" GROUP BY {key}" if key else ""))
    result.add(f"INSERT INTO {tp.fj_table} {body}", plan_mod.AGGREGATE_FJ)


def _generate_indexes(query: model.PercentageQuery,
                      term_plans: list[_TermPlan], fk: str,
                      strategy: VerticalStrategy,
                      result: GeneratedPlan) -> None:
    if not strategy.create_indexes:
        return
    for i, tp in enumerate(term_plans):
        if tp.term.kind != model.VPCT or not tp.totals:
            continue
        key = common.column_list(tp.totals)
        if strategy.matching_indexes:
            result.add(f"CREATE INDEX {tp.fj_table}_ix ON "
                       f"{tp.fj_table} ({key})", plan_mod.INDEX)
        result.add(f"CREATE INDEX {fk}_ix{i + 1} ON {fk} ({key})",
                   plan_mod.INDEX)


def _division_case(fk: str, tp: _TermPlan) -> str:
    """The guarded division for one Vpct term."""
    fj = tp.fj_table
    return (f"CASE WHEN {fj}.total <> 0 THEN "
            f"{fk}.{quote_ident(tp.column)} / {fj}.total "
            f"ELSE NULL END")


def _generate_insert_division(db: Database,
                              query: model.PercentageQuery,
                              term_plans: list[_TermPlan], fk: str,
                              fv: str, result: GeneratedPlan) -> None:
    columns = common.typed_columns_sql(db, query.table, query.group_by)
    for tp in term_plans:
        if tp.term.kind == model.VPCT:
            columns.append(f"{quote_ident(tp.column)} REAL")
        else:
            sql_type = _storage_type_of(db, query.table, tp.term)
            columns.append(f"{quote_ident(tp.column)} "
                           f"{common.column_type_name(sql_type)}")
    key = common.column_list(query.group_by)
    result.add(f"CREATE TABLE {fv} (" + ", ".join(columns)
               + (f") PRIMARY KEY ({key})" if key else ")"),
               plan_mod.CREATE_TEMP)
    result.temp_tables.append(fv)

    selects = [common.column_list(query.group_by, prefix=fk)] \
        if query.group_by else []
    sources = [fk]
    join_conditions: list[str] = []
    for tp in term_plans:
        if tp.term.kind == model.VPCT:
            selects.append(_division_case(fk, tp))
            sources.append(tp.fj_table)
            if tp.totals:
                # Null-safe: a NULL totals key is a group like any
                # other, and plain = would drop its rows from FV.
                join_conditions.append(
                    common.null_safe_equality_join(tp.fj_table, fk,
                                                   tp.totals))
        else:
            selects.append(f"{fk}.{quote_ident(tp.column)}")
    where = f" WHERE {' AND '.join(join_conditions)}" \
        if join_conditions else ""
    result.add(f"INSERT INTO {fv} SELECT " + ", ".join(selects)
               + " FROM " + ", ".join(sources) + where,
               plan_mod.DIVIDE)


def _generate_update_division(db: Database,
                              query: model.PercentageQuery,
                              term_plans: list[_TermPlan], fk: str,
                              result: GeneratedPlan) -> None:
    """UPDATE Fk in place; FV = Fk.  Global-total terms (empty D1..Dj)
    have no join key, so the generator fetches the scalar total itself
    and emits a literal division -- part of the "feedback process" the
    architecture already requires."""
    for tp in term_plans:
        if tp.term.kind != model.VPCT:
            continue
        column = quote_ident(tp.column)
        if tp.totals:
            condition = common.null_safe_equality_join(fk, tp.fj_table,
                                                       tp.totals)
            result.add(
                f"UPDATE {fk} SET {column} = "
                f"{_division_case(fk, tp)} "
                f"FROM {tp.fj_table} WHERE {condition}",
                plan_mod.UPDATE_DIVIDE)
        else:
            if not db.has_table(query.table):
                raise PercentageQueryError(
                    "the UPDATE strategy with global totals needs to "
                    "read the total at generation time, which is not "
                    "possible for a materialized view; use the INSERT "
                    "strategy instead")
            total = db.query(
                f"SELECT sum({common.argument_sql(tp.term)}) "
                f"FROM {query.table}"
                + common.where_suffix(query.where))[0][0]
            if total in (None, 0):
                result.add(f"UPDATE {fk} SET {column} = NULL",
                           plan_mod.UPDATE_DIVIDE)
            else:
                result.add(
                    f"UPDATE {fk} SET {column} = {column} / "
                    f"{common.literal_sql(float(total))}",
                    plan_mod.UPDATE_DIVIDE)


def _generate_single_statement(db: Database,
                               query: model.PercentageQuery,
                               term_plans: list[_TermPlan],
                               result: GeneratedPlan) -> None:
    vpct_plans = [tp for tp in term_plans
                  if tp.term.kind == model.VPCT]
    if len(vpct_plans) != 1:
        raise PercentageQueryError(
            "the single-statement rephrasal supports exactly one "
            "Vpct() term")
    tp = vpct_plans[0]
    tp.fj_table = "Fj"
    key = common.column_list(query.group_by)
    fk_select = (f"SELECT {key}{', ' if key else ''}"
                 + ", ".join(
                     f"{_fk_aggregate_sql(p.term)} AS "
                     f"{quote_ident(p.column)}"
                     for p in term_plans)
                 + f" FROM {query.table}"
                 + common.where_suffix(query.where)
                 + (f" GROUP BY {key}" if key else ""))
    totals_key = common.column_list(tp.totals)
    fj_select = (f"SELECT {totals_key}{', ' if totals_key else ''}"
                 f"sum({common.argument_sql(tp.term)}) AS total"
                 f" FROM {query.table}"
                 + common.where_suffix(query.where)
                 + (f" GROUP BY {totals_key}" if totals_key else ""))
    selects = [common.column_list(query.group_by, prefix="Fk")] \
        if query.group_by else []
    for p in term_plans:
        if p.term.kind == model.VPCT:
            selects.append(_division_case("Fk", p)
                           + f" AS {quote_ident(p.column)}")
        else:
            selects.append(f"Fk.{quote_ident(p.column)}")
    where = (f" WHERE "
             f"{common.null_safe_equality_join('Fj', 'Fk', tp.totals)}"
             if tp.totals else "")
    order = f" ORDER BY {common.column_list(query.group_by)}" \
        if query.group_by else ""
    result.result_select = (
        "SELECT " + ", ".join(selects)
        + f" FROM ({fk_select}) Fk, ({fj_select}) Fj{where}{order}")
    result.description += " (derived tables)"


# ----------------------------------------------------------------------
# Missing rows (Section 3.1, "Issues with vertical percentages")
# ----------------------------------------------------------------------
def _single_vpct_with_cells(query: model.PercentageQuery,
                            what: str) -> model.AggregateTerm:
    terms = query.vertical_pct_terms()
    if len(terms) != 1:
        raise PercentageQueryError(
            f"{what} missing-row handling supports exactly one Vpct() "
            f"term")
    term = terms[0]
    if not term.by_columns:
        raise PercentageQueryError(
            f"{what} missing-row handling needs a BY clause (cells are "
            f"defined by the BY columns)")
    return term


def _preprocess_missing_rows(db: Database,
                             query: model.PercentageQuery, prefix: str,
                             result: GeneratedPlan) -> None:
    """Insert zero-measure rows into F for every absent
    (totals x BY-combination) cell.  Mutates F, and -- as the paper
    warns -- silently corrupts row-count percentages like Vpct(1)."""
    from repro.sql import ast

    term = _single_vpct_with_cells(query, "pre")
    totals = _totals_of(term, query)
    by_cols = list(term.by_columns)
    if not isinstance(term.argument, ast.ColumnRef):
        raise PercentageQueryError(
            "pre-processing requires the Vpct argument to be a plain "
            "measure column")
    measure = term.argument.name

    schema = db.table(query.table).schema
    select_values = []
    for column in schema.column_names():
        lowered = column.lower()
        if lowered in totals:
            select_values.append(f"g.{quote_ident(column)}")
        elif lowered in by_cols:
            select_values.append(f"c.{quote_ident(column)}")
        elif lowered == measure.lower():
            select_values.append("0")
        else:
            select_values.append("NULL")
    combos_select = f"SELECT DISTINCT {common.column_list(by_cols)} " \
                    f"FROM {query.table}"
    if totals:
        totals_select = (f"SELECT DISTINCT {common.column_list(totals)} "
                         f"FROM {query.table}")
        sources = f"({totals_select}) g, ({combos_select}) c"
        probe = (common.equality_join("f", "g", totals) + " AND "
                 + common.equality_join("f", "c", by_cols))
    else:
        sources = f"({combos_select}) c"
        probe = common.equality_join("f", "c", by_cols)
    first_dim = quote_ident(query.group_by[0])
    result.add(
        f"INSERT INTO {query.table} SELECT "
        + ", ".join(select_values)
        + f" FROM {sources}"
        f" LEFT OUTER JOIN {query.table} f ON {probe}"
        f" WHERE f.{first_dim} IS NULL",
        plan_mod.MISSING_ROWS)


def _postprocess_missing_rows(db: Database,
                              query: model.PercentageQuery,
                              term_plans: list[_TermPlan],
                              fv: str, prefix: str,
                              result: GeneratedPlan) -> None:
    """Insert zero-percentage rows into FV for absent cells."""
    term = _single_vpct_with_cells(query, "post")
    tp = next(p for p in term_plans if p.term is term)
    totals = tp.totals
    by_cols = list(term.by_columns)

    select_values = []
    for column in query.group_by:
        if column in totals:
            select_values.append(f"g.{quote_ident(column)}")
        else:
            select_values.append(f"c.{quote_ident(column)}")
    for p in term_plans:
        select_values.append("0" if p.term is term else "NULL")

    combos_select = f"SELECT DISTINCT {common.column_list(by_cols)} " \
                    f"FROM {query.table}"
    if totals:
        totals_select = (f"SELECT DISTINCT {common.column_list(totals)} "
                         f"FROM {fv}")
        sources = f"({totals_select}) g, ({combos_select}) c"
        probe = common.equality_join("v", "g", totals) + " AND " + \
            common.equality_join("v", "c", by_cols)
    else:
        sources = f"({combos_select}) c"
        probe = common.equality_join("v", "c", by_cols)
    first_dim = quote_ident(query.group_by[0])
    result.add(
        f"INSERT INTO {fv} SELECT " + ", ".join(select_values)
        + f" FROM {sources} LEFT OUTER JOIN {fv} v ON {probe}"
        f" WHERE v.{first_dim} IS NULL",
        plan_mod.MISSING_ROWS)
