"""In-memory columnar tables.

A :class:`Table` owns one :class:`~repro.engine.column.ColumnData` per
schema column, all of equal length.  Tables are the engine's only data
container: base tables live in the catalog, while query execution
passes intermediate ``Table`` objects between operators.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from repro.engine.column import ColumnData
from repro.engine.schema import ColumnDef, TableSchema
from repro.engine.types import SQLType
from repro.errors import ExecutionError


#: Globally unique, monotonically increasing table versions.  Every
#: Table instance gets a fresh version (DML always swaps in a new
#: instance via the catalog), so a ``(table, version, column)`` cache
#: token can never outlive the column content it was minted for.
_VERSION_COUNTER = itertools.count(1)


class Table:
    """A named, schema-typed collection of equal-length columns."""

    def __init__(self, schema: TableSchema,
                 columns: dict[str, ColumnData] | None = None):
        self.schema = schema
        self.version = next(_VERSION_COUNTER)
        if columns is None:
            columns = {c.name: ColumnData.empty(c.sql_type)
                       for c in schema.columns}
        self._columns: dict[str, ColumnData] = {}
        n_rows = None
        for col_def in schema.columns:
            try:
                data = _lookup_ci(columns, col_def.name)
            except KeyError:
                raise ExecutionError(
                    f"missing data for column {col_def.name!r}") from None
            if data.sql_type != col_def.sql_type:
                raise ExecutionError(
                    f"column {col_def.name!r}: declared {col_def.sql_type} "
                    f"but data is {data.sql_type}")
            if n_rows is None:
                n_rows = len(data)
            elif len(data) != n_rows:
                raise ExecutionError(
                    f"column {col_def.name!r} has {len(data)} rows, "
                    f"expected {n_rows}")
            self._columns[col_def.name] = data

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def n_rows(self) -> int:
        if not self.schema.columns:
            return 0
        first = self.schema.columns[0].name
        return len(self._columns[first])

    def identity(self) -> tuple[str, int]:
        """A hashable ``(name, version)`` identity for this table
        state.  Versions are globally unique and every DML publishes a
        new Table, so equal identities imply byte-identical content --
        the key the service's snapshot bookkeeping and the stress
        suite's shadow model are built on."""
        return (self.name.lower(), self.version)

    def column(self, name: str) -> ColumnData:
        """The column data for ``name`` (case-insensitive)."""
        try:
            return _lookup_ci(self._columns, name)
        except KeyError:
            raise ExecutionError(
                f"no column {name!r} in table {self.name!r}") from None

    def column_names(self) -> list[str]:
        return self.schema.column_names()

    def rows(self) -> Iterator[tuple[Any, ...]]:
        """Iterate rows as tuples of Python values (None for NULL)."""
        cols = [self._columns[c.name] for c in self.schema.columns]
        for i in range(self.n_rows):
            yield tuple(col[i] for col in cols)

    def to_rows(self) -> list[tuple[Any, ...]]:
        """Materialize all rows (bulk path: one ``to_pylist`` per
        column, zipped, instead of a per-cell Python loop)."""
        if not self.schema.columns or self.n_rows == 0:
            return []
        lists = [self._columns[c.name].to_pylist()
                 for c in self.schema.columns]
        return list(zip(*lists))

    def row(self, i: int) -> tuple[Any, ...]:
        return tuple(self._columns[c.name][i] for c in self.schema.columns)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, schema: TableSchema,
                  rows: Iterable[Sequence[Any]]) -> "Table":
        """Build a table from an iterable of row sequences."""
        rows = [tuple(r) for r in rows]
        width = schema.width()
        for r in rows:
            if len(r) != width:
                raise ExecutionError(
                    f"row has {len(r)} values, table {schema.name!r} "
                    f"has {width} columns")
        columns = {}
        for i, col_def in enumerate(schema.columns):
            columns[col_def.name] = ColumnData.from_values(
                col_def.sql_type, (r[i] for r in rows))
        return cls(schema, columns)

    @classmethod
    def from_columns(cls, name: str,
                     named: Sequence[tuple[str, ColumnData]],
                     primary_key: Sequence[str] = ()) -> "Table":
        """Build a table (and its schema) from named column data."""
        schema = TableSchema(
            name=name,
            columns=[ColumnDef(n, c.sql_type) for n, c in named],
            primary_key=tuple(primary_key))
        return cls(schema, dict(named))

    # ------------------------------------------------------------------
    # Row-set transformations
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "Table":
        """Gather rows by position into a new table."""
        columns = {n: c.take(indices) for n, c in self._columns.items()}
        return Table(self.schema, columns)

    def filter(self, mask: np.ndarray) -> "Table":
        """Keep rows where ``mask`` is True."""
        columns = {n: c.filter(mask) for n, c in self._columns.items()}
        return Table(self.schema, columns)

    def append(self, other: "Table") -> "Table":
        """A new table with ``other``'s rows appended (schemas must align
        positionally by type)."""
        if other.schema.width() != self.schema.width():
            raise ExecutionError(
                f"cannot append {other.schema.width()}-column rows to "
                f"{self.schema.width()}-column table {self.name!r}")
        columns = {}
        for mine, theirs in zip(self.schema.columns, other.schema.columns):
            if mine.sql_type != theirs.sql_type:
                raise ExecutionError(
                    f"column {mine.name!r}: cannot append {theirs.sql_type} "
                    f"to {mine.sql_type}")
            columns[mine.name] = ColumnData.concat(
                [self._columns[mine.name], other._columns[theirs.name]])
        return Table(self.schema, columns)

    def replace_column(self, name: str, data: ColumnData) -> "Table":
        """A new table with one column's data replaced (same type)."""
        col_def = self.schema.column(name)
        if data.sql_type != col_def.sql_type:
            raise ExecutionError(
                f"column {name!r}: cannot replace {col_def.sql_type} "
                f"with {data.sql_type}")
        if len(data) != self.n_rows:
            raise ExecutionError(
                f"replacement column has {len(data)} rows, "
                f"table has {self.n_rows}")
        columns = dict(self._columns)
        columns[col_def.name] = data
        return Table(self.schema, columns)

    def renamed(self, new_name: str) -> "Table":
        """The same data under a different table name."""
        schema = TableSchema(name=new_name,
                             columns=list(self.schema.columns),
                             primary_key=self.schema.primary_key)
        renamed = Table(schema, self._columns)
        renamed.version = self.version  # identical content
        return renamed

    # ------------------------------------------------------------------
    # Encoding-cache provenance
    # ------------------------------------------------------------------
    def seal_cache_tokens(self) -> None:
        """Stamp every column with a ``(table, version, column)`` cache
        token.  Called by the catalog when this table becomes (or
        replaces) a base table; intermediate result tables are never
        sealed, so only base-table encodings enter the cache."""
        table_key = self.name.lower()
        for col_def in self.schema.columns:
            self._columns[col_def.name].cache_token = (
                table_key, self.version, col_def.name.lower())

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(str(c) for c in self.schema.columns)
        return f"<Table {self.name} [{cols}] rows={self.n_rows}>"


def _lookup_ci(mapping: dict[str, ColumnData], name: str) -> ColumnData:
    """Case-insensitive dict lookup for column names."""
    if name in mapping:
        return mapping[name]
    lowered = name.lower()
    for key, value in mapping.items():
        if key.lower() == lowered:
            return value
    raise KeyError(name)
