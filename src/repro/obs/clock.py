"""Injectable time sources.

Every timing-bearing code path (statement elapsed, span start/end,
queue-wait histograms) reads time through a clock object instead of
calling :func:`time.perf_counter` directly.  That one indirection is
what makes the golden-trace tests possible: under a
:class:`ManualClock` every reading is a deterministic function of how
many readings came before it, so a span tree rendered with durations
is byte-stable across runs, machines, and CI.
"""

from __future__ import annotations

import threading
import time


class Clock:
    """Interface: a monotonically non-decreasing ``now()`` in seconds."""

    def now(self) -> float:
        raise NotImplementedError


class MonotonicClock(Clock):
    """Real time via :func:`time.perf_counter` (the default)."""

    __slots__ = ()

    def now(self) -> float:
        return time.perf_counter()


class ManualClock(Clock):
    """A deterministic clock for tests: each reading returns the
    current value, then advances it by ``step``.

    With the default step of 1ms, the Nth reading anywhere in the
    process observes exactly ``start + (N-1) * step`` -- so as long as
    the *sequence* of clock reads is deterministic (serial execution),
    every span duration is too.  Thread-safe so parallel-partition
    tests can share one instance without torn updates, though the
    read ordering (and thus the durations) is only deterministic when
    execution is serial.
    """

    __slots__ = ("_value", "_step", "_lock")

    def __init__(self, start: float = 0.0, step: float = 0.001):
        self._value = float(start)
        self._step = float(step)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            value = self._value
            self._value += self._step
            return value

    def advance(self, seconds: float) -> None:
        """Jump forward without consuming a reading."""
        with self._lock:
            self._value += float(seconds)
