"""The StatsCollector -> MetricsRegistry migration: backward
compatibility, the Prometheus view of engine counters, and the
stale-counters-on-reopen regression the per-database registry fixes."""

from repro import Database
from repro.engine.stats import (COUNTER_NAMES, METRIC_NAMES,
                                StatsCollector)


class TestBackwardCompatibility:
    def test_counter_attribute_reads_still_work(self):
        stats = StatsCollector()
        stats.add(rows_scanned=4, rows_joined=2)
        assert stats.rows_scanned == 4
        assert stats.rows_joined == 2
        assert stats.rows_written == 0

    def test_every_documented_counter_exists(self):
        stats = StatsCollector()
        for name in COUNTER_NAMES:
            assert getattr(stats, name) == 0

    def test_snapshot_diff_round_trip(self):
        stats = StatsCollector()
        stats.add(rows_scanned=10)
        before = stats.snapshot()
        stats.add(rows_scanned=5, rows_written=3)
        diff = stats.diff_since(before)
        assert diff.rows_scanned == 5
        assert diff.rows_written == 3


class TestRegistryView:
    def test_engine_counters_visible_in_registry(self, sales_db):
        sales_db.execute("SELECT * FROM sales")
        scanned = sales_db.metrics.value(
            METRIC_NAMES["rows_scanned"])
        assert scanned == sales_db.stats.rows_scanned > 0

    def test_prometheus_scrape_carries_engine_counters(self, sales_db):
        sales_db.execute("SELECT * FROM sales")
        text = sales_db.metrics.render_prometheus()
        assert "engine_rows_scanned_total" in text
        assert "engine_statements_total" in text


class TestReopenRegression:
    """A reopened database must start its counters at zero -- with
    module-level counter state, the second instance inherited the
    first one's totals."""

    def _scan_some_rows(self) -> Database:
        db = Database()
        db.load_table("t", [("a", "int")], [(1,), (2,), (3,)])
        db.execute("SELECT * FROM t")
        return db

    def test_fresh_database_starts_at_zero(self):
        first = self._scan_some_rows()
        assert first.stats.rows_scanned > 0
        second = Database()
        assert second.stats.rows_scanned == 0
        assert second.stats.statements == 0

    def test_databases_count_independently(self):
        first = self._scan_some_rows()
        before = first.stats.rows_scanned
        self._scan_some_rows()  # a second database doing its own work
        assert first.stats.rows_scanned == before

    def test_reset_zeroes_registry_too(self, sales_db):
        sales_db.execute("SELECT * FROM sales")
        sales_db.stats.reset()
        assert sales_db.stats.rows_scanned == 0
        assert sales_db.metrics.value(
            METRIC_NAMES["rows_scanned"]) == 0
