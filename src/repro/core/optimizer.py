"""Strategy selection: the paper's optimization recommendations as
executable rules.

Vertical (Section 4.1): "we recommend creating indexes on the common
subkey of Fk and Fj, using INSERT instead of UPDATE to compute FV,
specially when |FV| ~ |F|, and computing Fj from Fk."

Horizontal (Section 4.1, Table 5): "we recommend computing FH directly
from F when there are no more than two columns in the list
Dj+1, ..., Dk and each of them has low selectivity, and computing FH
from FV using Vpct() when there are three or more grouping columns or
when the grouping columns have high selectivity."

Selectivity is measured with ``count(DISTINCT column)`` probes against
the fact table (cheap in the columnar engine, and the kind of statistic
a real optimizer keeps anyway).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Union

from repro.api.database import Database
from repro.core import model
from repro.core.hagg import HorizontalAggStrategy
from repro.core.horizontal import HorizontalStrategy
from repro.core.naming import NamingPolicy
from repro.core.vertical import VerticalStrategy
from repro.sql.formatter import quote_ident


#: A BY column with more distinct values than this counts as
#: high-selectivity (dweek=7 and monthNo=12 are low; dept=100,
#: store=100 and age=100 are high in the paper's data sets).
DEFAULT_SELECTIVITY_THRESHOLD = 50


def choose_vertical_strategy(db: Database,
                             query: model.PercentageQuery
                             ) -> VerticalStrategy:
    """The paper's recommended vertical strategy (Table 4 column (1))."""
    return VerticalStrategy(fj_from_fk=True, use_update=False,
                            create_indexes=True, matching_indexes=True)


def choose_horizontal_strategy(
        db: Database, query: model.PercentageQuery,
        threshold: int = DEFAULT_SELECTIVITY_THRESHOLD,
        naming: NamingPolicy | None = None) -> HorizontalStrategy:
    """Pick direct-from-F versus indirect-via-FV per the paper's rule."""
    naming = naming or NamingPolicy()
    by_columns: set[str] = set()
    for term in query.horizontal_terms():
        by_columns.update(term.by_columns)
    distinct_ok = not any(
        t.distinct or t.func in ("var", "stdev")
        for t in query.terms)

    use_direct = True
    if len(by_columns) > 2:
        use_direct = False
    else:
        for column in by_columns:
            if column_cardinality(db, query, column) > threshold:
                use_direct = False
                break
    if not use_direct and not distinct_ok:
        # count(DISTINCT ...) is not distributive; FV cannot serve it.
        use_direct = True
    return HorizontalStrategy(source="F" if use_direct else "FV",
                              vertical=choose_vertical_strategy(db,
                                                                query),
                              naming=naming)


def alternate_strategy(
        db: Database, query: model.PercentageQuery,
        strategy: Union[VerticalStrategy, HorizontalStrategy,
                        HorizontalAggStrategy],
) -> Optional[Union[VerticalStrategy, HorizontalStrategy,
                    HorizontalAggStrategy]]:
    """The paper's *other* evaluation route for the same query.

    Used by the resilient runner when a plan dies with a
    fallback-eligible resource error: the horizontal strategies flip
    between direct-from-F and indirect-via-FV (Table 5's two columns),
    and a vertical strategy falls back to the recommended knobs -- or,
    if those already failed, to the UPDATE form that materializes one
    fewer temp table (Table 4 column (3)).  Knobs that change the
    *result* (``missing_rows``, naming) are preserved; only execution
    routes change.  Returns None when no alternate route can serve the
    query (e.g. FV cannot evaluate DISTINCT/var/stdev terms).
    """
    distributive = not any(t.distinct or t.func in ("var", "stdev")
                           for t in query.terms)
    if isinstance(strategy, HorizontalAggStrategy):
        if strategy.source == "F":
            if not distributive:
                return None
            return replace(strategy, source="FV")
        return replace(strategy, source="F")
    if isinstance(strategy, HorizontalStrategy):
        if strategy.source == "F":
            if not distributive:
                return None
            return replace(strategy, source="FV")
        return replace(strategy, source="F")
    if isinstance(strategy, VerticalStrategy):
        recommended = replace(choose_vertical_strategy(db, query),
                              missing_rows=strategy.missing_rows)
        if strategy != recommended:
            return recommended
        return replace(recommended, use_update=True,
                       single_statement=False)
    return None


def recommended_parallel_degree(db: Database,
                                query: model.PercentageQuery) -> int:
    """The intra-query fan-out the optimizer would admit for this
    query's fact-table aggregations.

    Applies the same rule the executor uses at run time
    (:func:`repro.core.partitioning.choose_parallel_degree`) to the
    fact table's row count, sizing the request by the configured
    ``parallel_degree`` -- or, when the engine is serial, by the
    shared operator pool so callers can preview what enabling
    parallelism would do.  EXPLAIN's ``parallel:`` line reflects the
    configured degree; this is the per-query admission decision.
    """
    from repro.core.partitioning import (choose_parallel_degree,
                                         operator_pool_size)
    if not db.has_table(query.table):
        return 1
    n_rows = db.table(query.table).n_rows
    requested = db.options.parallel_degree
    if requested <= 1:
        requested = operator_pool_size()
    return choose_parallel_degree(n_rows, requested,
                                  db.options.parallel_row_threshold)


def column_cardinality(db: Database, query: model.PercentageQuery,
                       column: str) -> int:
    """``count(DISTINCT column)`` over the fact table (the optimizer's
    selectivity probe)."""
    if not db.has_table(query.table):
        return 0
    rows = db.query(f"SELECT count(DISTINCT {quote_ident(column)}) "
                    f"FROM {query.table}")
    return int(rows[0][0])
