"""Unit tests for the per-query resource governor."""

import pytest

from repro import Database
from repro.engine.governor import ResourceBudget, ResourceGovernor
from repro.errors import (QueryTimeout, ResourceExhausted,
                          RowBudgetExceeded, WidthBudgetExceeded)


class TestBudget:
    def test_unlimited_describes_as_off(self):
        assert ResourceBudget().unlimited
        assert ResourceBudget().describe() == "off"

    def test_describe_lists_set_limits(self):
        budget = ResourceBudget(max_seconds=1.5, max_rows=100)
        assert budget.describe() == "timeout=1.5s rows=100"
        assert ResourceBudget(max_result_width=16).describe() \
            == "width=16"


class TestWindows:
    def test_checks_are_noops_outside_a_window(self):
        governor = ResourceGovernor(ResourceBudget(max_seconds=0.0,
                                                   max_rows=0,
                                                   max_result_width=0))
        governor.check_time()
        governor.charge_rows(10)
        governor.check_width(10)

    def test_timeout_fires_inside_a_window(self):
        governor = ResourceGovernor(ResourceBudget(max_seconds=0.0))
        with governor.window():
            with pytest.raises(QueryTimeout):
                governor.check_time("unit test")

    def test_row_budget_accumulates(self):
        governor = ResourceGovernor(ResourceBudget(max_rows=10))
        with governor.window():
            governor.charge_rows(6)
            with pytest.raises(RowBudgetExceeded, match="budget"):
                governor.charge_rows(6)

    def test_width_budget(self):
        governor = ResourceGovernor(ResourceBudget(max_result_width=4))
        with governor.window():
            governor.check_width(4)
            with pytest.raises(WidthBudgetExceeded):
                governor.check_width(5)

    def test_nested_windows_share_the_meter(self):
        governor = ResourceGovernor(ResourceBudget(max_rows=10))
        with governor.window():
            with governor.window():
                governor.charge_rows(6)
            # the inner exit must not reset the outer window's meter
            with governor.window():
                with pytest.raises(RowBudgetExceeded):
                    governor.charge_rows(6)

    def test_outermost_window_resets(self):
        governor = ResourceGovernor(ResourceBudget(max_rows=10))
        with governor.window():
            governor.charge_rows(8)
        with governor.window():
            governor.charge_rows(8)  # fresh window: no overrun

    def test_last_usage_snapshot(self):
        governor = ResourceGovernor()
        with governor.window():
            governor.charge_rows(5)
        assert governor.last_usage["rows_charged"] == 5
        assert not governor.last_usage["active"]


class TestDatabaseIntegration:
    def test_row_budget_stops_a_statement(self):
        db = Database(max_query_rows=3)
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        # loading counted 3 rows written; a scan of 3 more overruns
        with pytest.raises(ResourceExhausted):
            db.execute("SELECT * FROM t WHERE a > 0 ORDER BY a")

    def test_budgets_off_by_default(self):
        assert Database().resource_budget().unlimited

    def test_set_resource_budget_round_trip(self):
        db = Database()
        db.set_resource_budget(max_seconds=2.0, max_rows=100)
        assert db.resource_budget() == ResourceBudget(max_seconds=2.0,
                                                      max_rows=100)
        db.set_resource_budget()
        assert db.resource_budget().unlimited

    def test_width_budget_blocks_create_table(self):
        db = Database(max_result_width=2)
        with pytest.raises(WidthBudgetExceeded):
            db.execute("CREATE TABLE wide (a INT, b INT, c INT)")

    def test_explain_reports_the_budget_before_the_cache_line(self):
        db = Database(max_query_seconds=5.0)
        db.execute("CREATE TABLE t (a INT)")
        lines = [row[0] for row in
                 db.execute("EXPLAIN SELECT * FROM t").to_rows()]
        assert lines[-2] == "governor: timeout=5s"
        assert lines[-1].startswith("encoding cache:")

    def test_explain_reports_off_when_unlimited(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT)")
        lines = [row[0] for row in
                 db.execute("EXPLAIN SELECT * FROM t").to_rows()]
        assert "governor: off" in lines
