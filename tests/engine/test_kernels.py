"""The executor-neutral kernel layer: numerical correctness against
plain-numpy references, the morsel planner's alignment invariants, and
the bit-identity of a morsel-split + slice-merge against one serial
kernel call (the property the process backend's correctness rests on)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import kernels
from repro.engine.types import SQLType
from repro.errors import PlanningError, TypeMismatchError


def _grouping(seed: int = 0, n_rows: int = 500, n_groups: int = 13):
    rng = np.random.default_rng(seed)
    group_ids = rng.integers(0, n_groups, size=n_rows)
    # Dense ranks: make sure every group occurs at least once.
    group_ids[:n_groups] = np.arange(n_groups)
    return group_ids.astype(np.int64), n_groups


def _numeric(seed: int = 1, n_rows: int = 500):
    rng = np.random.default_rng(seed)
    # Mixed magnitudes so float addition order actually matters.
    values = rng.normal(scale=1e3, size=n_rows) \
        + rng.normal(scale=1e-3, size=n_rows)
    nulls = rng.random(n_rows) < 0.15
    return values, nulls


class TestKernelCorrectness:
    def test_count_star(self):
        group_ids, n_groups = _grouping()
        state = kernels.kernel_count_star(group_ids, n_groups)
        expected = np.bincount(group_ids, minlength=n_groups)
        assert state.values.tolist() == expected.tolist()
        assert not state.nulls.any()
        assert state.sql_type == SQLType.INTEGER

    def test_count_skips_nulls(self):
        group_ids, n_groups = _grouping()
        _, nulls = _numeric()
        state = kernels.kernel_count(nulls, group_ids, n_groups)
        for g in range(n_groups):
            assert state.values[g] == int(
                np.sum((group_ids == g) & ~nulls))

    def test_count_distinct_matches_sets(self):
        group_ids, n_groups = _grouping()
        rng = np.random.default_rng(7)
        # Codes follow the EncodedColumn convention: 0 means NULL.
        codes = rng.integers(0, 6, size=len(group_ids)).astype(np.int64)
        state = kernels.kernel_count_distinct(codes, 6, group_ids,
                                              n_groups)
        for g in range(n_groups):
            present = codes[(group_ids == g) & (codes != 0)]
            assert state.values[g] == len(set(present.tolist()))

    def test_count_distinct_all_null(self):
        group_ids, n_groups = _grouping()
        codes = np.zeros(len(group_ids), dtype=np.int64)
        state = kernels.kernel_count_distinct(codes, 1, group_ids,
                                              n_groups)
        assert not state.values.any()

    def test_sum_avg_reference(self):
        group_ids, n_groups = _grouping()
        values, nulls = _numeric()
        sums = kernels.kernel_sum(values, nulls, SQLType.REAL,
                                  group_ids, n_groups)
        avgs = kernels.kernel_avg(values, nulls, SQLType.REAL,
                                  group_ids, n_groups)
        for g in range(n_groups):
            mask = (group_ids == g) & ~nulls
            if not mask.any():
                assert sums.nulls[g] and avgs.nulls[g]
                continue
            assert sums.values[g] == pytest.approx(values[mask].sum())
            assert avgs.values[g] == pytest.approx(values[mask].mean())

    def test_var_stdev_sample_semantics(self):
        group_ids = np.array([0, 0, 0, 1, 1, 2], dtype=np.int64)
        values = np.array([1.0, 2.0, 4.0, 5.0, 5.0, 9.0])
        nulls = np.zeros(6, dtype=bool)
        var = kernels.kernel_var_stdev("var", values, nulls,
                                       SQLType.REAL, group_ids, 3)
        std = kernels.kernel_var_stdev("stdev", values, nulls,
                                       SQLType.REAL, group_ids, 3)
        assert var.values[0] == pytest.approx(
            np.var([1.0, 2.0, 4.0], ddof=1))
        assert std.values[1] == pytest.approx(0.0)
        # Fewer than two non-NULL inputs -> NULL, not zero variance.
        assert var.nulls[2] and std.nulls[2]

    def test_min_max_with_empty_group(self):
        group_ids = np.array([0, 0, 2, 2], dtype=np.int64)
        values = np.array([4, -7, 3, 9], dtype=np.int64)
        nulls = np.zeros(4, dtype=bool)
        lo = kernels.kernel_min_max("min", values, nulls,
                                    SQLType.INTEGER, group_ids, 3)
        hi = kernels.kernel_min_max("max", values, nulls,
                                    SQLType.INTEGER, group_ids, 3)
        assert lo.values[0] == -7 and hi.values[0] == 4
        assert lo.nulls[1] and hi.nulls[1]   # group 1 is empty
        assert lo.values[2] == 3 and hi.values[2] == 9

    def test_min_max_sorted_varchar(self):
        group_ids = np.array([0, 0, 1, 1], dtype=np.int64)
        values = np.array(["pear", "apple", "fig", "kiwi"],
                          dtype=object)
        nulls = np.array([False, False, False, True])
        lo = kernels.kernel_min_max_sorted("min", values, nulls,
                                           group_ids, 2)
        hi = kernels.kernel_min_max_sorted("max", values, nulls,
                                           group_ids, 2)
        assert lo.values[0] == "apple" and hi.values[0] == "pear"
        assert lo.values[1] == "fig" and hi.values[1] == "fig"

    def test_numeric_kernels_reject_varchar(self):
        group_ids, n_groups = _grouping(n_rows=4, n_groups=2)
        with pytest.raises(TypeMismatchError):
            kernels.kernel_sum(np.zeros(4), np.zeros(4, dtype=bool),
                               SQLType.VARCHAR, group_ids, n_groups)


class TestResultSqlType:
    @pytest.mark.parametrize("func,arg,expected", [
        ("count", SQLType.VARCHAR, SQLType.INTEGER),
        ("sum", SQLType.INTEGER, SQLType.INTEGER),
        ("sum", SQLType.REAL, SQLType.REAL),
        ("avg", SQLType.INTEGER, SQLType.REAL),
        ("var", SQLType.REAL, SQLType.REAL),
        ("stdev", SQLType.INTEGER, SQLType.REAL),
        ("min", SQLType.VARCHAR, SQLType.VARCHAR),
        ("max", SQLType.INTEGER, SQLType.INTEGER),
    ])
    def test_table(self, func, arg, expected):
        assert kernels.result_sql_type(func, arg) == expected

    def test_unknown_function(self):
        with pytest.raises(PlanningError):
            kernels.result_sql_type("median", SQLType.REAL)


class TestPlanMorsels:
    def test_none_when_too_small(self):
        group_ids, n_groups = _grouping(n_rows=50, n_groups=5)
        assert kernels.plan_morsels(group_ids, n_groups, 50) is None
        assert kernels.plan_morsels(group_ids, n_groups, 0) is None
        assert kernels.plan_morsels(
            np.empty(0, dtype=np.int64), 0, 8) is None

    def test_none_for_single_dominant_group(self):
        # One group swallows everything: unsplittable, stay serial.
        group_ids = np.zeros(100, dtype=np.int64)
        assert kernels.plan_morsels(group_ids, 1, 10) is None

    def test_alignment_invariants(self):
        group_ids, n_groups = _grouping(n_rows=1000, n_groups=37)
        plan = kernels.plan_morsels(group_ids, n_groups, 64)
        assert plan is not None and plan.degree >= 2
        # Every row exactly once, morsels contiguous in rows AND groups.
        assert sorted(plan.order.tolist()) == list(range(1000))
        assert plan.morsels[0].lo == 0 and plan.morsels[0].g_lo == 0
        assert plan.morsels[-1].hi == 1000
        assert plan.morsels[-1].g_hi == n_groups
        for a, b in zip(plan.morsels, plan.morsels[1:]):
            assert a.hi == b.lo and a.g_hi == b.g_lo
        for m in plan.morsels:
            span = plan.sorted_group_ids[m.lo:m.hi]
            # Group-aligned cuts: a morsel holds complete groups only.
            assert span.min() == m.g_lo and span.max() == m.g_hi - 1

    def test_stable_within_group(self):
        group_ids, n_groups = _grouping(n_rows=300, n_groups=7)
        plan = kernels.plan_morsels(group_ids, n_groups, 32)
        for g in range(n_groups):
            rows = plan.order[plan.sorted_group_ids == g]
            # Original relative order preserved -> serial addend order.
            assert rows.tolist() == sorted(rows.tolist())


class TestMorselMergeBitIdentity:
    """Splitting by morsels and slice-merging the partials must equal
    one serial kernel call *bitwise* -- the process backend's whole
    correctness argument in miniature."""

    @pytest.mark.parametrize("func", ["sum", "avg", "var", "stdev"])
    def test_float_aggregates(self, func):
        group_ids, n_groups = _grouping(n_rows=2000, n_groups=19)
        values, nulls = _numeric(n_rows=2000)

        def run(v, n, g, k):
            if func == "sum":
                return kernels.kernel_sum(v, n, SQLType.REAL, g, k)
            if func == "avg":
                return kernels.kernel_avg(v, n, SQLType.REAL, g, k)
            return kernels.kernel_var_stdev(func, v, n, SQLType.REAL,
                                            g, k)

        serial = run(values, nulls, group_ids, n_groups)
        plan = kernels.plan_morsels(group_ids, n_groups, 128)
        assert plan is not None
        merged = np.zeros(n_groups, dtype=np.float64)
        merged_nulls = np.zeros(n_groups, dtype=bool)
        for m in plan.morsels:
            rows = plan.order[m.lo:m.hi]
            local = plan.sorted_group_ids[m.lo:m.hi] - m.g_lo
            state = run(values[rows], nulls[rows], local, m.n_groups)
            merged[m.g_lo:m.g_hi] = state.values
            merged_nulls[m.g_lo:m.g_hi] = state.nulls
        # Bitwise equality, not approx: same addends in same order.
        assert np.array_equal(merged, serial.values)
        assert np.array_equal(merged_nulls, serial.nulls)
