"""Resilient plan execution: savepoints, retry, fallback, and the
error-masking regression fixes."""

import pytest

from repro import Database
from repro.core.execute import (RetryPolicy, cleanup_plan, execute_plan,
                                generate_plan, run_percentage_query,
                                run_resilient)
from repro.core.horizontal import HorizontalStrategy
from repro.core.optimizer import alternate_strategy
from repro.core.vertical import VerticalStrategy
from repro.core.model import parse_percentage_query
from repro.core.hagg import HorizontalAggStrategy
from repro.engine import faults
from repro.engine.faults import FaultInjector, FaultSpec
from repro.errors import (ResourceExhausted, SimulatedCrash,
                          TransientError)

NO_BACKOFF = RetryPolicy(backoff_seconds=0.0)

VQUERY = ("SELECT store, dweek, Vpct(amt BY dweek) FROM sales "
          "GROUP BY store, dweek")
HQUERY = "SELECT store, sum(amt BY dweek) FROM sales GROUP BY store"


@pytest.fixture
def fact_db(db):
    db.load_table(
        "sales",
        [("store", "int"), ("dweek", "varchar"), ("amt", "real")],
        [(1, "mon", 1.0), (1, "tue", 3.0),
         (2, "mon", 2.0), (2, "tue", 2.0)])
    return db


class TestRetry:
    def test_transient_fault_is_retried(self, fact_db):
        reference = run_resilient(fact_db, VQUERY).result.to_rows()
        injector = FaultInjector(
            [FaultSpec("statement", error="transient", at=2, times=1)])
        with faults.active(injector):
            report = run_resilient(fact_db, VQUERY, retry=NO_BACKOFF)
        assert report.attempts == 2
        assert report.result.to_rows() == reference
        assert fact_db.table_names() == ["sales"]

    def test_retry_exhaustion_raises_with_clean_catalog(self, fact_db):
        fingerprint = fact_db.catalog.fingerprint()
        injector = FaultInjector(
            [FaultSpec("statement", error="transient", times=None)])
        with pytest.raises(TransientError):
            with faults.active(injector):
                run_resilient(fact_db, VQUERY, retry=NO_BACKOFF)
        assert injector.faults_raised == NO_BACKOFF.max_attempts
        assert fact_db.catalog.fingerprint() == fingerprint

    def test_crash_is_never_retried(self, fact_db):
        injector = FaultInjector(
            [FaultSpec("statement", error="crash", times=None)])
        with pytest.raises(SimulatedCrash):
            with faults.active(injector):
                run_resilient(fact_db, VQUERY, retry=NO_BACKOFF)
        assert injector.faults_raised == 1
        assert fact_db.table_names() == ["sales"]

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_seconds=-1.0)

    def test_backoff_grows_geometrically(self):
        policy = RetryPolicy(backoff_seconds=0.01, multiplier=2.0)
        assert policy.delay(1) == pytest.approx(0.01)
        assert policy.delay(2) == pytest.approx(0.02)


class TestReport:
    def test_report_carries_governor_usage(self, fact_db):
        report = run_resilient(fact_db, VQUERY)
        assert report.attempts == 1
        assert report.fallback_from is None
        assert report.governor_usage["rows_charged"] > 0

    def test_statements_run_counts_one_attempt(self, fact_db):
        clean = run_resilient(fact_db, VQUERY, retry=NO_BACKOFF)
        injector = FaultInjector(
            [FaultSpec("statement", error="transient", at=0, times=1)])
        with faults.active(injector):
            retried = run_resilient(fact_db, VQUERY, retry=NO_BACKOFF)
        assert retried.statements_run == clean.statements_run


class TestFallback:
    def test_resource_fault_triggers_replan(self, fact_db):
        reference = run_resilient(fact_db, HQUERY).result.to_rows()
        # The FV route's extra pre-aggregation absorbs the one-shot
        # resource fault; the re-plan runs the direct-F route.
        injector = FaultInjector(
            [FaultSpec("group-by", error="resource", at=0, times=1)])
        with faults.active(injector):
            report = run_resilient(
                fact_db, HQUERY,
                strategy=HorizontalStrategy(source="FV"))
        assert report.fallback_from == "horizontal CASE from FV"
        assert "ResourceExhausted" in report.fallback_error
        assert report.result.to_rows() == reference
        assert fact_db.table_names() == ["sales"]

    def test_fallback_disabled_raises(self, fact_db):
        injector = FaultInjector(
            [FaultSpec("group-by", error="resource", at=0, times=1)])
        with pytest.raises(ResourceExhausted):
            with faults.active(injector):
                run_percentage_query(
                    fact_db, HQUERY,
                    strategy=HorizontalStrategy(source="FV"))
        assert fact_db.table_names() == ["sales"]

    def test_timeout_is_not_fallback_eligible(self, fact_db):
        fact_db.set_resource_budget(max_seconds=0.0)
        from repro.errors import QueryTimeout
        with pytest.raises(QueryTimeout):
            run_resilient(fact_db, HQUERY)
        fact_db.set_resource_budget()
        assert fact_db.table_names() == ["sales"]


class TestAlternateStrategy:
    def _query(self, fact_db, sql):
        return parse_percentage_query(sql)

    def test_horizontal_flips_source(self, fact_db):
        query = self._query(fact_db, HQUERY)
        alt = alternate_strategy(fact_db, query,
                                 HorizontalStrategy(source="F"))
        assert alt.source == "FV"
        assert alternate_strategy(fact_db, query, alt).source == "F"

    def test_no_fv_route_for_distinct(self, fact_db):
        query = self._query(
            fact_db, "SELECT store, count(DISTINCT amt BY dweek) "
                     "FROM sales GROUP BY store")
        assert alternate_strategy(
            fact_db, query, HorizontalStrategy(source="F")) is None
        assert alternate_strategy(
            fact_db, query, HorizontalAggStrategy(source="F")) is None

    def test_vertical_falls_back_to_recommended(self, fact_db):
        query = self._query(fact_db, VQUERY)
        worst = VerticalStrategy(create_indexes=False)
        alt = alternate_strategy(fact_db, query, worst)
        assert alt == VerticalStrategy()

    def test_recommended_vertical_falls_back_to_update(self, fact_db):
        query = self._query(fact_db, VQUERY)
        alt = alternate_strategy(fact_db, query, VerticalStrategy())
        assert alt.use_update

    def test_result_shaping_knobs_preserved(self, fact_db):
        query = self._query(fact_db, VQUERY)
        alt = alternate_strategy(
            fact_db, query,
            VerticalStrategy(create_indexes=False,
                             missing_rows="post"))
        assert alt.missing_rows == "post"


class TestErrorMasking:
    def test_cleanup_failure_does_not_mask_execution_error(
            self, fact_db, monkeypatch):
        """Regression: the old ``finally: cleanup_plan(...)`` would
        replace the in-flight execution error with any cleanup
        error."""
        def broken_drop(name, if_exists=False):
            raise RuntimeError("disk on fire")

        monkeypatch.setattr(fact_db, "drop_table", broken_drop)
        injector = FaultInjector(
            [FaultSpec("statement", error="crash", times=None)])
        with pytest.raises(SimulatedCrash) as info:
            with faults.active(injector):
                run_resilient(fact_db, VQUERY, retry=NO_BACKOFF)
        assert isinstance(info.value.__cause__, RuntimeError)

    def test_rollback_failure_does_not_mask_execution_error(
            self, fact_db, monkeypatch):
        def broken_rollback(savepoint):
            raise RuntimeError("rollback exploded")

        monkeypatch.setattr(fact_db.catalog, "rollback",
                            broken_rollback)
        injector = FaultInjector(
            [FaultSpec("statement", error="crash", times=None)])
        with pytest.raises(SimulatedCrash) as info:
            with faults.active(injector):
                run_resilient(fact_db, VQUERY, retry=NO_BACKOFF)
        assert isinstance(info.value.__cause__, RuntimeError)


class TestCleanup:
    def test_cleanup_plan_is_idempotent(self, fact_db):
        plan = generate_plan(fact_db, VQUERY)
        report = execute_plan(fact_db, plan, keep_temps=True)
        assert any(fact_db.has_table(t) for t in plan.temp_tables)
        cleanup_plan(fact_db, plan)
        cleanup_plan(fact_db, plan)  # second call: no error
        assert fact_db.table_names() == ["sales"]
        assert report.result.n_rows > 0

    def test_cleanup_tolerates_never_created_temps(self, fact_db):
        plan = generate_plan(fact_db, VQUERY)
        plan.temp_tables.append("_never_created")
        cleanup_plan(fact_db, plan)

    def test_generation_failure_rolls_back_materialized_temps(
            self, fact_db):
        fact_db.execute("CREATE VIEW v AS SELECT * FROM sales")
        # Hpct over a view materializes a temp *during generation*,
        # then combination discovery (a DISTINCT scan) crashes.
        injector = FaultInjector(
            [FaultSpec("group-by", error="crash", times=None)])
        with pytest.raises(SimulatedCrash):
            with faults.active(injector):
                generate_plan(
                    fact_db,
                    "SELECT store, Hpct(amt BY dweek) FROM v "
                    "GROUP BY store")
        assert fact_db.table_names() == ["sales"]
