"""Result-column naming for horizontal aggregations.

The companion paper (Section 3.6) flags two practical issues: very long
automatically-generated names and non-unique names.  This module
implements the paper's recommendations: readable names derived from the
subgrouping values (``"Dh=vh1 .. Dk=vk1"`` in the paper's CREATE TABLE)
or from the values alone (as in the example tables, whose columns are
``Mon, Tue, ...``), abbreviation by truncation plus a stable suffix
when the DBMS identifier limit would be exceeded, and uniqueness
enforcement.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Optional, Sequence


@dataclass
class NamingPolicy:
    """How horizontal result columns are named.

    ``style``:
        ``"values"`` -- join the combination's values (``Mon``,
        ``2_Mon``); this is what the paper's example tables show.
        ``"full"`` -- ``col=value`` pairs (``dweek=Mon_month=2``); this
        is what the paper's CREATE TABLE sketch shows.
    ``max_length``:
        identifier ceiling (defaults to the catalog's limit at use
        time); longer names are truncated and suffixed with a stable
        4-hex-digit hash, the "abbreviations" option the paper
        recommends over opaque integer identifiers.
    """

    style: str = "values"
    max_length: Optional[int] = None

    def __post_init__(self) -> None:
        if self.style not in ("values", "full"):
            raise ValueError("naming style must be 'values' or 'full'")


def sanitize(value: Any) -> str:
    """One value as an identifier fragment."""
    if value is None:
        return "null"
    text = str(value)
    if isinstance(value, float) and value.is_integer():
        text = str(int(value))
    cleaned = "".join(ch if ch.isalnum() else "_" for ch in text)
    return cleaned or "_"


def combo_column_name(columns: Sequence[str], values: Sequence[Any],
                      policy: NamingPolicy, max_length: int,
                      used: set[str], prefix: str = "") -> str:
    """A unique identifier for one BY-combination result column.

    ``used`` accumulates names already taken in the result table (the
    caller shares one set across terms); the returned name is added to
    it.
    """
    if policy.style == "full":
        body = "_".join(f"{c}_{sanitize(v)}"
                        for c, v in zip(columns, values))
    else:
        body = "_".join(sanitize(v) for v in values)
    name = f"{prefix}{body}" if prefix else body
    # A leading digit is the common case, but sanitize() keeps any
    # alphanumeric -- including characters like '¼' that are isalnum()
    # yet not a valid identifier start -- so guard on the positive.
    if name and not (name[0].isalpha() or name[0] == "_"):
        name = "c" + name

    limit = policy.max_length or max_length
    name = _abbreviate(name, limit)
    name = _uniquify(name, used, limit)
    used.add(name.lower())
    return name


def _abbreviate(name: str, limit: int) -> str:
    if len(name) <= limit:
        return name
    digest = hashlib.sha1(name.encode()).hexdigest()[:4]
    keep = max(limit - 5, 1)
    return f"{name[:keep]}_{digest}"


def _uniquify(name: str, used: set[str], limit: int) -> str:
    if name.lower() not in used:
        return name
    for i in range(2, 10_000):
        suffix = f"_{i}"
        candidate = _abbreviate(name, limit - len(suffix)) + suffix
        if candidate.lower() not in used:
            return candidate
    raise ValueError(f"cannot uniquify column name {name!r}")
