"""The Database facade: one object bundling a catalog, a statistics
collector and an executor behind a textual SQL interface.

This plays the role of the Teradata DBMS in the paper's architecture;
:mod:`repro.core` (the code generator) and :mod:`repro.api.dbapi` (the
JDBC stand-in) both talk to it.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from typing import Any, Iterable, Optional, Sequence

import numpy as np

from repro.engine import cancel as cancel_mod
from repro.engine.cancel import CancelToken
from repro.engine.catalog import Catalog
from repro.engine.column import ColumnData
from repro.engine.encoding_cache import DEFAULT_ENCODING_CACHE_BYTES
from repro.engine.executor import (DEFAULT_MORSEL_ROWS,
                                   DEFAULT_PARALLEL_ROW_THRESHOLD,
                                   PARALLEL_BACKENDS, Executor,
                                   ExecutorOptions)
from repro.engine.governor import ResourceBudget, ResourceGovernor
from repro.engine.schema import (DEFAULT_MAX_COLUMNS,
                                 DEFAULT_MAX_NAME_LENGTH, TableSchema)
from repro.engine.stats import StatementStats, StatsCollector
from repro.engine.table import Table
from repro.engine.types import SQLType, type_from_name
from repro.obs import tracer as tracer_mod
from repro.obs.clock import Clock, MonotonicClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.sql import ast
from repro.sql.parser import parse_script, parse_statement
from repro.storage.engine import StorageEngine
from repro.storage.pool import DEFAULT_POOL_PAGES

#: Table storage backends: heap-resident (the original engine) or
#: page-based durable storage behind a buffer pool (docs/storage.md).
STORAGE_BACKENDS = ("memory", "disk")


class Database:
    """An in-memory SQL database.

    Args:
        max_columns: per-table column ceiling (the DBMS limit the
            paper's vertical partitioning works around).
        max_name_length: identifier length ceiling.
        case_dispatch: ``"linear"`` (faithful DBMS behavior) or
            ``"hash"`` (the paper's proposed O(1) CASE dispatch).
        use_indexes: let joins reuse covering hash indexes.
        use_encoding_cache: serve base-table dictionary encodings from
            the table-versioned cache (wall-clock only; results and
            logical I/O are identical with it off).
        encoding_cache_bytes: LRU byte budget for that cache.
        max_query_seconds / max_query_rows / max_result_width:
            per-query resource budgets enforced cooperatively by the
            :class:`~repro.engine.governor.ResourceGovernor` (``None``
            = unlimited).  A generated percentage plan counts as one
            query: its whole multi-statement script shares one budget
            window.
        parallel_workers / parallel_row_threshold:
            intra-query parallelism: aggregations over at least
            ``parallel_row_threshold`` input rows fan out across up to
            ``parallel_workers`` workers.  Bit-identical to serial
            execution; wall-clock only.
        parallel_backend / morsel_rows:
            the parallel substrate -- ``"thread"`` (default, shared
            operator thread pool), ``"process"`` (GIL-free worker
            processes over shared-memory column blocks; see
            docs/parallelism.md) or ``"serial"`` (parallelism off
            regardless of ``parallel_workers``).  ``morsel_rows``
            tunes the process backend's work-unit size.
        keep_history: record per-statement stats in
            ``db.stats.history``.
        tracing: start with the span tracer enabled (it can also be
            toggled later via ``db.tracer.enable()``).  Disabled
            tracing costs one branch per instrumentation point.
        clock: time source for statement timing and span boundaries;
            tests inject a :class:`~repro.obs.clock.ManualClock` to
            make every duration deterministic.
        metrics: the :class:`~repro.obs.metrics.MetricsRegistry`
            backing ``db.stats`` and the service histograms.  Each
            database owns a fresh registry by default, so a reopened
            database starts from zero (no stale-counter carryover).
        storage: ``"memory"`` (default, tables live on the heap) or
            ``"disk"`` (tables live on checksummed pages behind an LRU
            buffer pool, with write-ahead-logged catalog mutations and
            crash recovery -- see docs/storage.md).
        storage_path: directory of the disk store (required for --
            and only valid with -- ``storage="disk"``).  Opening an
            existing store recovers its committed state.
        pool_pages / page_size: buffer-pool capacity (in pages) and
            on-disk page size for the disk backend.
    """

    def __init__(self, max_columns: int = DEFAULT_MAX_COLUMNS,
                 max_name_length: int = DEFAULT_MAX_NAME_LENGTH,
                 case_dispatch: str = "linear",
                 use_indexes: bool = True,
                 use_encoding_cache: bool = True,
                 encoding_cache_bytes: int = DEFAULT_ENCODING_CACHE_BYTES,
                 max_query_seconds: Optional[float] = None,
                 max_query_rows: Optional[int] = None,
                 max_result_width: Optional[int] = None,
                 parallel_workers: int = 1,
                 parallel_row_threshold: int =
                 DEFAULT_PARALLEL_ROW_THRESHOLD,
                 parallel_backend: str = "thread",
                 morsel_rows: int = DEFAULT_MORSEL_ROWS,
                 keep_history: bool = False,
                 tracing: bool = False,
                 clock: Optional[Clock] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 storage: str = "memory",
                 storage_path: Optional[str] = None,
                 pool_pages: Optional[int] = None,
                 page_size: Optional[int] = None,
                 default_deadline_seconds: Optional[float] = None):
        if case_dispatch not in ("linear", "hash"):
            raise ValueError("case_dispatch must be 'linear' or 'hash'")
        if storage not in STORAGE_BACKENDS:
            raise ValueError(
                f"storage must be one of {', '.join(STORAGE_BACKENDS)}")
        if storage == "disk" and storage_path is None:
            raise ValueError("storage='disk' requires storage_path")
        if storage == "memory" and storage_path is not None:
            raise ValueError(
                "storage_path is only valid with storage='disk'")
        if pool_pages is not None and pool_pages < 1:
            raise ValueError("pool_pages must be >= 1")
        if parallel_workers < 1:
            raise ValueError("parallel_workers must be >= 1")
        if parallel_backend not in PARALLEL_BACKENDS:
            raise ValueError(
                f"parallel_backend must be one of "
                f"{', '.join(PARALLEL_BACKENDS)}")
        if morsel_rows < 1:
            raise ValueError("morsel_rows must be >= 1")
        if default_deadline_seconds is not None \
                and default_deadline_seconds <= 0:
            raise ValueError("default_deadline_seconds must be > 0")
        self.default_deadline_seconds = default_deadline_seconds
        self.clock = clock if clock is not None else MonotonicClock()
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry()
        self.tracer = Tracer(clock=self.clock, enabled=tracing)
        self.catalog = Catalog(max_columns=max_columns,
                               max_name_length=max_name_length,
                               encoding_cache_bytes=encoding_cache_bytes)
        self.stats = StatsCollector(keep_history=keep_history,
                                    registry=self.metrics)
        self.storage_backend = storage
        self.storage_engine: Optional[StorageEngine] = None
        if storage == "disk":
            engine_kwargs = {}
            if page_size is not None:
                engine_kwargs["page_size"] = page_size
            self.storage_engine = StorageEngine(
                storage_path,
                pool_pages=(pool_pages if pool_pages is not None
                            else DEFAULT_POOL_PAGES),
                registry=self.metrics,
                stats=self.stats,
                **engine_kwargs)
            self.catalog.storage = self.storage_engine
            # Recover whatever a previous incarnation committed; a
            # fresh directory just writes a clean baseline checkpoint.
            # A failed recovery (e.g. a corrupt committed page) must
            # not leak the half-open store.
            try:
                self.storage_engine.open_catalog(self.catalog)
            except BaseException:
                self.storage_engine.abandon()
                raise
        self.options = ExecutorOptions(
            case_dispatch=case_dispatch,
            use_indexes=use_indexes,
            use_encoding_cache=use_encoding_cache,
            parallel_degree=parallel_workers,
            parallel_row_threshold=parallel_row_threshold,
            parallel_backend=parallel_backend,
            morsel_rows=morsel_rows,
            storage=storage)
        self.governor = ResourceGovernor(ResourceBudget(
            max_seconds=max_query_seconds,
            max_rows=max_query_rows,
            max_result_width=max_result_width), clock=self.clock)
        self.executor = Executor(self.catalog, self.stats, self.options,
                                 governor=self.governor,
                                 tracer=self.tracer)
        # Statement-level serialization: concurrent sessions (the
        # paper's closing scenario, "users concurrently submit
        # percentage queries") interleave whole statements safely.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # SQL execution
    # ------------------------------------------------------------------
    def execute(self, sql: str,
                deadline_seconds: Optional[float] = None,
                cancel_token: Optional[CancelToken] = None,
                use_views: bool = True
                ) -> Table | int:
        """Run one SQL statement.

        Returns a :class:`Table` for SELECT, a row count for DML/DDL.
        Per-statement timing and counters are recorded when
        ``keep_history`` is enabled.  ``deadline_seconds`` bounds this
        statement's wall clock (a child of any ambient deadline, so the
        tighter budget wins); ``cancel_token`` attaches a caller-held
        token instead -- ``token.cancel()`` from another thread stops
        the statement at its next safepoint.  ``use_views=False``
        disables materialized-view rewrites for this statement (the
        recompute baseline the differential oracle compares against).
        """
        statement = parse_statement(sql)
        return self._run(statement, sql,
                         deadline_seconds=deadline_seconds,
                         cancel_token=cancel_token,
                         use_views=use_views)

    def execute_statement(self, statement: ast.Statement,
                          sql: str = "",
                          deadline_seconds: Optional[float] = None,
                          cancel_token: Optional[CancelToken] = None,
                          use_views: bool = True
                          ) -> Table | int:
        """Run an already-parsed statement (used by the code generator)."""
        return self._run(statement, sql,
                         deadline_seconds=deadline_seconds,
                         cancel_token=cancel_token,
                         use_views=use_views)

    def execute_script(self, sql: str,
                       deadline_seconds: Optional[float] = None,
                       cancel_token: Optional[CancelToken] = None
                       ) -> list[Table | int]:
        """Run a ';'-separated script, returning one result per
        statement.  A ``deadline_seconds`` here covers the *whole*
        script: one token spans every statement, so remaining time
        shrinks as the script progresses."""
        token = self._statement_token(deadline_seconds, cancel_token)
        ctx = cancel_mod.activate(token) if token is not None \
            else nullcontext()
        with ctx:
            return [self._run(s, sql) for s in parse_script(sql)]

    def query(self, sql: str) -> list[tuple[Any, ...]]:
        """Run a SELECT and return rows as Python tuples."""
        result = self.execute(sql)
        if not isinstance(result, Table):
            raise TypeError("query() requires a SELECT statement")
        return result.to_rows()

    def _statement_token(self, deadline_seconds: Optional[float],
                         cancel_token: Optional[CancelToken]
                         ) -> Optional[CancelToken]:
        """Resolve the token a statement (or script) runs under.

        Precedence: an explicit token wins outright; an explicit
        deadline builds a fresh token as a *child* of any ambient one
        (the tighter deadline fires first); otherwise an ambient token
        (a script's, or the service's) is inherited as-is, and the
        database-wide default deadline applies only at top level."""
        if cancel_token is not None:
            return cancel_token
        ambient = cancel_mod.active_token()
        if deadline_seconds is not None:
            return CancelToken.with_timeout(
                deadline_seconds, clock=self.clock, parent=ambient,
                registry=self.metrics)
        if ambient is not None:
            return None  # already active; nothing to install
        if self.default_deadline_seconds is not None:
            return CancelToken.with_timeout(
                self.default_deadline_seconds, clock=self.clock,
                registry=self.metrics)
        return None

    def _run(self, statement: ast.Statement, sql: str,
             deadline_seconds: Optional[float] = None,
             cancel_token: Optional[CancelToken] = None,
             use_views: bool = True) -> Table | int:
        token = self._statement_token(deadline_seconds, cancel_token)
        cancel_ctx = cancel_mod.activate(token) if token is not None \
            else nullcontext()
        with self._lock, cancel_ctx, self.governor.window():
            # Flipped under the statement lock, so the per-statement
            # override cannot leak into a concurrent session.
            saved_rewrite = self.options.matview_rewrite
            self.options.matview_rewrite = saved_rewrite and use_views
            try:
                return self._run_locked(statement, sql)
            finally:
                self.options.matview_rewrite = saved_rewrite

    def _run_locked(self, statement: ast.Statement,
                    sql: str) -> Table | int:
        tracer = self.tracer
        before = self.stats.snapshot()
        started = self.clock.now()
        with tracer_mod.activate(tracer), \
                tracer.span("statement", kind="statement",
                            sql=sql or type(statement).__name__
                            ) as span:
            result = self.executor.execute(statement)
            record = self.stats.diff_since(before)
            record.sql = sql
            record.elapsed_seconds = self.clock.now() - started
            if span is not None:
                span.attrs["result_rows"] = (
                    result.n_rows if isinstance(result, Table)
                    else int(result))
                # Counter deltas on the span: what this statement
                # charged.  Under concurrency the diff can include
                # other sessions' work (shared counters); the
                # charge audit therefore only runs serially.
                span.attrs.update(record.counters())
        self.stats.record_statement(record)
        return result

    def last_statement_stats(self) -> Optional[StatementStats]:
        if self.stats.history:
            return self.stats.history[-1]
        return None

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------
    def load_table(self, name: str,
                   columns: Sequence[tuple[str, str | SQLType]],
                   data: dict[str, np.ndarray | Sequence[Any]]
                   | Iterable[Sequence[Any]],
                   primary_key: Sequence[str] = (),
                   replace: bool = False) -> Table:
        """Create and populate a table without going through SQL.

        ``columns`` is a list of ``(name, type)`` pairs (types may be
        names like ``"int"`` or :class:`SQLType` values).  ``data`` is
        either a mapping of column name to array/sequence (the bulk
        path: numpy arrays are wrapped without per-value validation) or
        an iterable of row sequences.
        """
        resolved = [(n, t if isinstance(t, SQLType) else type_from_name(t))
                    for n, t in columns]
        schema = TableSchema.build(name, resolved, primary_key)
        if isinstance(data, dict):
            column_data = {}
            for col_name, sql_type in resolved:
                raw = _lookup_ci_dict(data, col_name)
                if isinstance(raw, np.ndarray):
                    column_data[col_name] = ColumnData.from_arrays(
                        sql_type, raw)
                else:
                    column_data[col_name] = ColumnData.from_values(
                        sql_type, raw)
            table = Table(schema, column_data)
        else:
            table = Table.from_rows(schema, data)
        with self._lock:
            if replace:
                self.catalog.drop_table(name, if_exists=True)
            self.catalog.create_table(table)
            self.stats.add(rows_written=table.n_rows)
            # Return the *published* table: on the disk backend the
            # catalog publishes a page-backed StoredTable, not the
            # heap table built above.
            return self.catalog.table(name)

    # ------------------------------------------------------------------
    # Introspection & options
    # ------------------------------------------------------------------
    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    def has_table(self, name: str) -> bool:
        return self.catalog.has_table(name)

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        # The default matches Catalog.drop_table (and SQL DROP TABLE):
        # dropping a missing table is an error unless opted out.
        self.catalog.drop_table(name, if_exists=if_exists)

    def table_names(self) -> list[str]:
        return self.catalog.table_names()

    def set_case_dispatch(self, mode: str) -> None:
        if mode not in ("linear", "hash"):
            raise ValueError("case_dispatch must be 'linear' or 'hash'")
        self.options.case_dispatch = mode

    def set_use_indexes(self, enabled: bool) -> None:
        self.options.use_indexes = bool(enabled)

    def set_use_encoding_cache(self, enabled: bool) -> None:
        self.options.use_encoding_cache = bool(enabled)

    def set_parallel_workers(self, workers: int,
                             row_threshold: Optional[int] = None) -> None:
        """Set the intra-query parallelism budget (1 = serial).

        ``row_threshold`` (optional) adjusts the minimum input size
        that triggers a parallel aggregation.
        """
        if workers < 1:
            raise ValueError("parallel_workers must be >= 1")
        self.options.parallel_degree = int(workers)
        if row_threshold is not None:
            self.options.parallel_row_threshold = int(row_threshold)

    def set_parallel_backend(self, backend: str,
                             morsel_rows: Optional[int] = None) -> None:
        """Choose the parallel substrate: ``"serial"``, ``"thread"``
        or ``"process"`` (see docs/parallelism.md).  ``morsel_rows``
        (optional) tunes the process backend's work-unit size."""
        if backend not in PARALLEL_BACKENDS:
            raise ValueError(
                f"parallel_backend must be one of "
                f"{', '.join(PARALLEL_BACKENDS)}")
        self.options.parallel_backend = backend
        if morsel_rows is not None:
            if morsel_rows < 1:
                raise ValueError("morsel_rows must be >= 1")
            self.options.morsel_rows = int(morsel_rows)

    def encoding_cache_info(self) -> dict[str, Any]:
        """Occupancy and traffic counters of the dictionary-encoding
        cache (hits/misses/evictions, bytes, hit rate)."""
        return self.catalog.encoding_cache.info()

    def set_resource_budget(self,
                            max_seconds: Optional[float] = None,
                            max_rows: Optional[int] = None,
                            max_result_width: Optional[int] = None
                            ) -> None:
        """Replace the per-query resource budgets (None = unlimited).

        Takes effect for the next query window; a window already open
        keeps the budget it started with only for its elapsed clock
        (limits are read at each checkpoint)."""
        self.governor.set_budget(ResourceBudget(
            max_seconds=max_seconds, max_rows=max_rows,
            max_result_width=max_result_width))

    def resource_budget(self) -> ResourceBudget:
        return self.governor.budget

    # ------------------------------------------------------------------
    # Storage lifecycle (disk backend)
    # ------------------------------------------------------------------
    def storage_info(self) -> dict[str, Any]:
        """Backend name plus, on disk, store/pool occupancy."""
        info: dict[str, Any] = {"backend": self.storage_backend}
        if self.storage_engine is not None:
            info.update(self.storage_engine.info())
        return info

    def checkpoint(self) -> None:
        """Persist the full catalog manifest and truncate the WAL.
        A no-op on the memory backend."""
        if self.storage_engine is not None:
            with self._lock:
                self.storage_engine.checkpoint(self.catalog)

    def close(self) -> None:
        """Shut down cleanly: on disk, checkpoint and release the
        store's file handles.  Idempotent; a no-op on memory."""
        if self.storage_engine is not None:
            with self._lock:
                self.storage_engine.close(self.catalog)

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _lookup_ci_dict(mapping: dict, name: str):
    if name in mapping:
        return mapping[name]
    lowered = name.lower()
    for key, value in mapping.items():
        if key.lower() == lowered:
            return value
    raise KeyError(f"no data supplied for column {name!r}")
