"""Shared fixtures: small fact tables from the papers' examples,
plus the temp-table leak guard used by the integration and fuzz
packages (their conftests install it as an autouse fixture)."""

from __future__ import annotations

import pytest

from repro import Database
from repro.engine import shm
from repro.storage import engine as storage_engine


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite the golden trace files under tests/obs/golden "
             "instead of comparing against them")


def install_database_tracker(monkeypatch) -> list:
    """Record every :class:`Database` constructed while active.

    The returned list fills up as tests build databases (directly or
    via fixtures), so a teardown can sweep all of them for leftover
    plan temp tables.
    """
    created: list[Database] = []
    original = Database.__init__

    def tracking(self, *args, **kwargs):
        original(self, *args, **kwargs)
        created.append(self)

    monkeypatch.setattr(Database, "__init__", tracking)
    return created


def assert_no_temp_leaks(databases) -> None:
    """Fail if any tracked database still holds a ``_``-prefixed
    table -- the naming space :func:`repro.core.plan.fresh_prefix`
    reserves for generated plan temps."""
    leaks = []
    for db in databases:
        temps = sorted(n for n in db.table_names()
                       if n.startswith("_"))
        if temps:
            leaks.append(temps)
    assert not leaks, (
        f"temp tables leaked past the plan boundary: {leaks}; either "
        f"the plan's cleanup/rollback is broken or the test wants "
        f"@pytest.mark.allow_temp_leaks")


@pytest.fixture(autouse=True)
def no_shm_leaks(request):
    """Every test must leave zero live shared-memory segments behind:
    the exporter's try/finally (and the registry's force-unlink) are
    the product's cleanup guarantees, and this guard is their oracle.
    Opt out with ``@pytest.mark.allow_shm_leaks``."""
    yield
    if request.node.get_closest_marker("allow_shm_leaks"):
        shm.force_unlink_all()
        return
    leaked = shm.live_segment_names()
    if leaked:
        shm.force_unlink_all()
    assert not leaked, (
        f"shared-memory segments leaked past the test: {leaked}; "
        f"either an exporter skipped its close() or the test wants "
        f"@pytest.mark.allow_shm_leaks")


@pytest.fixture(autouse=True)
def no_storage_leaks(request):
    """Every test must leave zero open page stores behind: a disk
    database's close()/abandon() must always run, and this guard is
    the oracle for that discipline (a leaked store holds open file
    descriptors and undeleted page/WAL files).  Opt out with
    ``@pytest.mark.allow_storage_leaks``."""
    yield
    if request.node.get_closest_marker("allow_storage_leaks"):
        storage_engine.force_close_all()
        return
    leaked = storage_engine.live_store_paths()
    if leaked:
        storage_engine.force_close_all()
    assert not leaked, (
        f"page stores leaked past the test: {leaked}; either a "
        f"database skipped its close() or the test wants "
        f"@pytest.mark.allow_storage_leaks")

#: The SIGMOD paper's Table 1 example fact table.
PAPER_SALES_ROWS = [
    (1, "CA", "San Francisco", 13.0),
    (2, "CA", "San Francisco", 3.0),
    (3, "CA", "San Francisco", 67.0),
    (4, "CA", "Los Angeles", 23.0),
    (5, "TX", "Houston", 5.0),
    (6, "TX", "Houston", 35.0),
    (7, "TX", "Houston", 10.0),
    (8, "TX", "Houston", 14.0),
    (9, "TX", "Dallas", 53.0),
    (10, "TX", "Dallas", 32.0),
]


@pytest.fixture
def db() -> Database:
    return Database(keep_history=True)


@pytest.fixture
def sales_db(db: Database) -> Database:
    """A database holding the paper's Table 1 sales example."""
    db.load_table(
        "sales",
        [("rid", "int"), ("state", "varchar"), ("city", "varchar"),
         ("salesamt", "real")],
        PAPER_SALES_ROWS, primary_key=["rid"])
    return db


@pytest.fixture
def store_db(db: Database) -> Database:
    """A database matching the paper's Table 3 horizontal example:
    three stores with sales per day of week (store 4 has no Monday
    sales -- the 0% cell)."""
    data = {
        2: {"Mo": 175, "Tu": 150, "We": 200, "Th": 225, "Fr": 400,
            "Sa": 600, "Su": 750},
        4: {"Tu": 360, "We": 360, "Th": 360, "Fr": 720, "Sa": 800,
            "Su": 1400},
        7: {"Mo": 128, "Tu": 128, "We": 64, "Th": 64, "Fr": 128,
            "Sa": 560, "Su": 528},
    }
    rows = []
    rid = 0
    for store, per_day in data.items():
        for day, amount in per_day.items():
            rid += 1
            rows.append((rid, store, day, float(amount)))
    db.load_table(
        "sales",
        [("rid", "int"), ("store", "int"), ("dweek", "varchar"),
         ("salesamt", "real")],
        rows, primary_key=["rid"])
    return db


@pytest.fixture
def employee_db(db: Database) -> Database:
    """The companion paper's four-employee example (its Table 2)."""
    rows = [
        (1, "M", "Single", 30000.0),
        (2, "F", "Single", 50000.0),
        (3, "F", "Married", 40000.0),
        (4, "M", "Single", 45000.0),
    ]
    db.load_table(
        "employee",
        [("employeeid", "int"), ("gender", "varchar"),
         ("maritalstatus", "varchar"), ("salary", "real")],
        rows, primary_key=["employeeid"])
    return db
