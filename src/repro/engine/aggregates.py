"""Vectorized aggregate functions over a :class:`Grouping`.

SQL semantics implemented here (and relied on by the paper's Vpct
definition, which "preserves the semantics of sum()"):

* ``sum/avg/min/max`` skip NULL inputs; a group whose inputs are all
  NULL (or empty, for the global group over an empty table) yields NULL.
* ``count(expr)`` counts non-NULL inputs; ``count(*)`` counts rows;
  both yield 0 -- never NULL -- for empty groups.
* ``count(DISTINCT expr)`` counts distinct non-NULL values.
* ``avg`` returns REAL; ``sum``/``min``/``max`` keep the input type
  (INTEGER sums stay INTEGER).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.engine.column import ColumnData
from repro.engine.encoding_cache import EncodingCache
from repro.engine.groupby import PartitionedGrouping, encode_column
from repro.engine.types import SQLType
from repro.errors import PlanningError, TypeMismatchError


def count_star(group_ids: np.ndarray, n_groups: int) -> ColumnData:
    counts = np.bincount(group_ids, minlength=n_groups)
    return ColumnData(SQLType.INTEGER, counts.astype(np.int64),
                      np.zeros(n_groups, dtype=bool))


def count_star_partitioned(pgrouping: PartitionedGrouping) -> ColumnData:
    """``count(*)`` computed per partition and scatter-merged."""
    from repro.core.partitioning import map_partitions

    def count_partition(part):
        return np.bincount(part.group_ids, minlength=part.n_groups)

    results = map_partitions(count_partition, pgrouping.partitions)
    n_groups = pgrouping.grouping.n_groups
    counts = np.zeros(n_groups, dtype=np.int64)
    for part, part_counts in zip(pgrouping.partitions, results):
        counts[part.global_groups] = part_counts
    return ColumnData(SQLType.INTEGER, counts,
                      np.zeros(n_groups, dtype=bool))


def compute_aggregate_partitioned(func: str, arg: ColumnData,
                                  distinct: bool,
                                  pgrouping: PartitionedGrouping
                                  ) -> ColumnData:
    """Partition-parallel :func:`compute_aggregate`.

    Each worker aggregates one hash partition -- which holds *complete*
    groups whose rows keep their original relative order -- so the
    merge is a pure scatter through ``global_groups`` with no partial
    re-aggregation.  That is the bit-identity argument: every group's
    addends are accumulated in exactly the serial order, so even
    floating-point sums match the serial path to the last bit.
    """
    from repro.core.partitioning import map_partitions

    def aggregate_partition(part):
        return compute_aggregate(func, arg.take(part.rows), distinct,
                                 part.group_ids, part.n_groups)

    results = map_partitions(aggregate_partition, pgrouping.partitions)
    n_groups = pgrouping.grouping.n_groups
    # Every partition yields the same result *SQL* type (it depends on
    # func and the argument type, not the data), but not necessarily
    # the same numpy dtype: np.bincount over a partition with no valid
    # rows reverts to int64 no matter what its weights were, so the
    # merge buffer is allocated from the SQL type, never from a
    # partition's array.
    proto = results[0]
    values = np.zeros(n_groups, dtype=proto.sql_type.numpy_dtype)
    nulls = np.zeros(n_groups, dtype=bool)
    for part, part_result in zip(pgrouping.partitions, results):
        values[part.global_groups] = part_result.values
        nulls[part.global_groups] = part_result.nulls
    return ColumnData(proto.sql_type, values, nulls)


def compute_aggregate(func: str, arg: ColumnData, distinct: bool,
                      group_ids: np.ndarray, n_groups: int,
                      cache: Optional[EncodingCache] = None) -> ColumnData:
    """Aggregate ``arg`` per group.

    ``func`` is one of sum/count/avg/min/max; ``count`` honors
    ``distinct`` (and can reuse a cached dictionary encoding of a
    base-table argument via ``cache``).
    """
    if func == "count":
        if distinct:
            return _count_distinct(arg, group_ids, n_groups, cache)
        return _count(arg, group_ids, n_groups)
    if distinct:
        raise PlanningError(f"DISTINCT is only supported with count(), "
                            f"not {func}()")
    if func == "sum":
        return _sum(arg, group_ids, n_groups)
    if func == "avg":
        return _avg(arg, group_ids, n_groups)
    if func in ("min", "max"):
        return _min_max(func, arg, group_ids, n_groups)
    if func in ("var", "stdev"):
        return _var_stdev(func, arg, group_ids, n_groups)
    raise PlanningError(f"unknown aggregate function {func}()")


# ----------------------------------------------------------------------
def _count(arg: ColumnData, group_ids: np.ndarray,
           n_groups: int) -> ColumnData:
    valid = ~arg.nulls
    counts = np.bincount(group_ids[valid], minlength=n_groups)
    return ColumnData(SQLType.INTEGER, counts.astype(np.int64),
                      np.zeros(n_groups, dtype=bool))


def _count_distinct(arg: ColumnData, group_ids: np.ndarray,
                    n_groups: int,
                    cache: Optional[EncodingCache] = None) -> ColumnData:
    encoded = encode_column(arg, cache)
    valid = encoded.codes != 0
    if not valid.any():
        zeros = np.zeros(n_groups, dtype=np.int64)
        return ColumnData(SQLType.INTEGER, zeros,
                          np.zeros(n_groups, dtype=bool))
    pairs = group_ids[valid] * np.int64(encoded.cardinality) \
        + encoded.codes[valid]
    unique_pairs = np.unique(pairs)
    owner = unique_pairs // np.int64(encoded.cardinality)
    counts = np.bincount(owner, minlength=n_groups)
    return ColumnData(SQLType.INTEGER, counts.astype(np.int64),
                      np.zeros(n_groups, dtype=bool))


def _numeric_or_raise(func: str, arg: ColumnData) -> None:
    if arg.sql_type is None or not arg.sql_type.is_numeric:
        raise TypeMismatchError(
            f"{func}() requires a numeric argument, got {arg.sql_type}")


def _sum(arg: ColumnData, group_ids: np.ndarray,
         n_groups: int) -> ColumnData:
    _numeric_or_raise("sum", arg)
    valid = ~arg.nulls
    weights = arg.values.astype(np.float64)
    sums = np.bincount(group_ids[valid], weights=weights[valid],
                       minlength=n_groups)
    non_null = np.bincount(group_ids[valid], minlength=n_groups)
    nulls = non_null == 0
    if arg.sql_type == SQLType.INTEGER:
        values = np.rint(sums).astype(np.int64)
        return ColumnData(SQLType.INTEGER, values, nulls)
    return ColumnData(SQLType.REAL, sums, nulls)


def _avg(arg: ColumnData, group_ids: np.ndarray,
         n_groups: int) -> ColumnData:
    _numeric_or_raise("avg", arg)
    valid = ~arg.nulls
    weights = arg.values.astype(np.float64)
    sums = np.bincount(group_ids[valid], weights=weights[valid],
                       minlength=n_groups)
    non_null = np.bincount(group_ids[valid], minlength=n_groups)
    nulls = non_null == 0
    with np.errstate(divide="ignore", invalid="ignore"):
        values = np.where(nulls, 0.0, sums / np.where(nulls, 1, non_null))
    return ColumnData(SQLType.REAL, values, nulls)


def _var_stdev(func: str, arg: ColumnData, group_ids: np.ndarray,
               n_groups: int) -> ColumnData:
    """Sample variance / standard deviation (n - 1 denominator, as SQL
    VAR_SAMP/STDDEV_SAMP); NULL for groups with fewer than two non-NULL
    inputs.  These are the 'non-standard statistical extensions' the
    companion paper's introduction mentions."""
    _numeric_or_raise(func, arg)
    valid = ~arg.nulls
    values = arg.values.astype(np.float64)
    counts = np.bincount(group_ids[valid], minlength=n_groups)
    sums = np.bincount(group_ids[valid], weights=values[valid],
                       minlength=n_groups)
    squares = np.bincount(group_ids[valid],
                          weights=values[valid] ** 2,
                          minlength=n_groups)
    nulls = counts < 2
    safe_counts = np.where(nulls, 2, counts)
    with np.errstate(divide="ignore", invalid="ignore"):
        variance = (squares - sums ** 2 / safe_counts) \
            / (safe_counts - 1)
    variance = np.maximum(variance, 0.0)  # guard tiny negatives
    if func == "stdev":
        variance = np.sqrt(variance)
    variance = np.where(nulls, 0.0, variance)
    return ColumnData(SQLType.REAL, variance, nulls)


def _min_max(func: str, arg: ColumnData, group_ids: np.ndarray,
             n_groups: int) -> ColumnData:
    valid = ~arg.nulls
    nulls = np.bincount(group_ids[valid], minlength=n_groups) == 0
    if arg.sql_type == SQLType.VARCHAR:
        return _min_max_sorted(func, arg, group_ids, n_groups, valid,
                               nulls)
    values = arg.values
    if func == "min":
        out = np.full(n_groups, _max_sentinel(arg.sql_type),
                      dtype=arg.sql_type.numpy_dtype)
        np.minimum.at(out, group_ids[valid], values[valid])
    else:
        out = np.full(n_groups, _min_sentinel(arg.sql_type),
                      dtype=arg.sql_type.numpy_dtype)
        np.maximum.at(out, group_ids[valid], values[valid])
    out[nulls] = 0
    return ColumnData(arg.sql_type, out, nulls)


def _min_max_sorted(func: str, arg: ColumnData, group_ids: np.ndarray,
                    n_groups: int, valid: np.ndarray,
                    nulls: np.ndarray) -> ColumnData:
    """min/max for VARCHAR via a (group, value) sort."""
    ids = group_ids[valid]
    values = arg.values[valid]
    value_order = np.argsort(values, kind="stable")
    order = value_order[np.argsort(ids[value_order], kind="stable")]
    sorted_ids = ids[order]
    boundaries = np.ones(len(order), dtype=bool)
    if func == "min":
        boundaries[1:] = sorted_ids[1:] != sorted_ids[:-1]
        pick_ids = sorted_ids[boundaries]
        pick_values = values[order][boundaries]
    else:
        boundaries[:-1] = sorted_ids[:-1] != sorted_ids[1:]
        pick_ids = sorted_ids[boundaries]
        pick_values = values[order][boundaries]
    out = np.full(n_groups, "", dtype=object)
    out[pick_ids] = pick_values
    return ColumnData(SQLType.VARCHAR, out, nulls)


def _max_sentinel(sql_type: SQLType):
    if sql_type == SQLType.INTEGER:
        return np.iinfo(np.int64).max
    return np.inf


def _min_sentinel(sql_type: SQLType):
    if sql_type == SQLType.INTEGER:
        return np.iinfo(np.int64).min
    return -np.inf
