"""``python -m repro.fuzz`` -- the differential fuzzing CLI.

Examples::

    python -m repro.fuzz --seed 0 --budget 500
    python -m repro.fuzz --seed 7 --budget 200 --max-seconds 60
    python -m repro.fuzz --replay tests/fuzz/corpus
    python -m repro.fuzz --seed 0 --budget 50 --inject-bug vpct-denominator
    python -m repro.fuzz --fault-sweep --seed 0 --budget 40
    python -m repro.fuzz --seed 0 --budget 200 --case-timeout 10
    python -m repro.fuzz --seed 0 --budget 100 --trace
    python -m repro.fuzz --seed 0 --budget 100 --storage disk
    python -m repro.fuzz --fault-sweep --storage disk --seed 0 --budget 20
    python -m repro.fuzz --cancel-sweep --seed 0 --budget 10
    python -m repro.fuzz --views --seed 0 --budget 20
    python -m repro.fuzz --views --budget 10 --inject-bug views-skip-retraction
    python -m repro.fuzz --list-variants

Exit status 0 means every case was consistent across all strategies
and the sqlite oracle; 1 means at least one divergence (each one is
minimized and written to ``--out`` as a replayable JSON repro).

``--case-timeout`` runs every engine variant under the resource
governor's wall-clock budget so one pathological case cannot stall a
whole run; timed-out variants are excluded from comparison.
``--fault-sweep`` switches to the crash-consistency sweep: instead of
comparing strategies it injects faults at every statement boundary of
every case's plan and verifies recovery (see
:mod:`repro.fuzz.crash`).
``--cancel-sweep`` switches to the cancel-point chaos sweep: it arms a
cancellation at every safepoint each case's query crosses and verifies
the unwind (typed error, no leaks, bit-identical re-run; see
:mod:`repro.fuzz.cancelsweep`).
``--trace`` runs every engine variant on a traced database and
validates the trace after each run (well-formed span trees, charge
audits, statement-count drift against the stats ledger); a malformed
trace surfaces as a divergence.
``--views`` switches to the materialized-view maintenance sweep: each
case's query becomes a materialized view, a deterministic interleaved
DML script mutates the base table, and after every statement the
view-served answer must be bit-identical to a from-scratch recompute
(see :mod:`repro.fuzz.views`).
``--list-variants`` prints the backend x storage x trace variant
matrix the sweeps iterate, with one-line descriptions, and exits.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections import Counter
from pathlib import Path
from typing import Optional

from repro.fuzz.corpus import load_corpus, save_repro
from repro.fuzz.generator import FAMILIES, CaseGenerator, FuzzCase
from repro.fuzz.reducer import reduce_case
from repro.fuzz.runner import INJECTABLE_BUGS, run_case
from repro.views.maintenance import VIEWS_BUGS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential fuzzer: every percentage-query "
                    "strategy vs. the sqlite3 oracle.")
    parser.add_argument("--seed", type=int, default=0,
                        help="generator seed (default 0)")
    parser.add_argument("--budget", type=int, default=200,
                        help="number of cases to run (default 200)")
    parser.add_argument("--max-seconds", type=float, default=None,
                        help="stop early after this wall-clock budget")
    parser.add_argument("--family", action="append",
                        choices=FAMILIES, default=None,
                        metavar="FAMILY",
                        help="restrict generated cases to this query "
                             "family (repeatable; default: all of "
                             f"{', '.join(FAMILIES)}).  e.g. "
                             "--family cube for a grouping-sets-only "
                             "sweep against the UNION ALL oracle")
    parser.add_argument("--replay", metavar="DIR", default=None,
                        help="replay a corpus directory instead of "
                             "generating new cases")
    parser.add_argument("--out", metavar="DIR",
                        default="fuzz-failures",
                        help="where minimized divergences are written "
                             "(default: fuzz-failures/)")
    parser.add_argument("--inject-bug",
                        choices=INJECTABLE_BUGS + VIEWS_BUGS,
                        default=None,
                        help="deliberately mis-compile one variant "
                             "(or, with --views, break one maintenance "
                             "path); the run must diverge (harness "
                             "self-test)")
    parser.add_argument("--stop-on-first", action="store_true",
                        help="exit after minimizing the first "
                             "divergence")
    parser.add_argument("--case-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock budget per engine variant "
                             "(enforced by the resource governor; "
                             "timed-out variants are excluded from "
                             "comparison)")
    parser.add_argument("--parallel", action="store_true",
                        help="add partition-parallel engine variants "
                             "(2 workers, row threshold 0); they must "
                             "match the serial variants bit-for-bit")
    parser.add_argument("--backend", action="append",
                        choices=("serial", "thread", "process"),
                        default=None, metavar="BACKEND",
                        help="add engine variants pinned to this "
                             "parallel backend (repeatable; serial, "
                             "thread or process).  Process variants "
                             "use 2-row morsels so tiny tables still "
                             "fan out over shared memory, and any "
                             "segment leaked after a case counts as "
                             "a divergence")
    parser.add_argument("--storage", action="append",
                        choices=("memory", "disk"), default=None,
                        metavar="BACKEND",
                        help="add engine variants pinned to this table "
                             "substrate (repeatable).  'memory' is the "
                             "baseline every case already runs; 'disk' "
                             "adds page-backed variants with a tiny "
                             "buffer pool that must match the memory "
                             "variants bit-for-bit, with leaked page "
                             "files or live stores counted as "
                             "divergences.  With --fault-sweep, 'disk' "
                             "additionally sweeps the WAL/buffer-pool "
                             "kill points (torn page writes, pre-fsync "
                             "and post-commit crashes) and verifies "
                             "recovery after a simulated kill")
    parser.add_argument("--trace", action="store_true",
                        help="run engine variants on traced databases "
                             "and validate every trace (well-formed "
                             "span trees, charge audits, statement-"
                             "count drift); a malformed trace counts "
                             "as a divergence")
    parser.add_argument("--fault-sweep", action="store_true",
                        help="run the crash-consistency sweep instead "
                             "of differential comparison: inject a "
                             "fault at every statement boundary and "
                             "check recovery invariants")
    parser.add_argument("--cancel-sweep", action="store_true",
                        help="run the cancel-point chaos sweep: arm a "
                             "cancellation at every safepoint the "
                             "query crosses (per backend x storage "
                             "variant; defaults to all combinations, "
                             "narrow with --backend/--storage) and "
                             "check that each shot unwinds as a clean "
                             "typed QueryCancelledError with no "
                             "catalog/shm/store leakage and a "
                             "bit-identical re-run")
    parser.add_argument("--views", action="store_true",
                        help="run the materialized-view maintenance "
                             "sweep: each case's query becomes a "
                             "materialized view, interleaved DML "
                             "mutates its base table, and every "
                             "view-served read must match a "
                             "from-scratch recompute bit-for-bit "
                             "(per backend x storage variant; narrow "
                             "with --backend/--storage)")
    parser.add_argument("--list-variants", action="store_true",
                        help="print the backend x storage x trace "
                             "variant matrix and exit")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress per-divergence detail")
    return parser


#: One-line description per axis value of the variant matrix.
_AXIS_DESCRIPTIONS = {
    "serial": "interpreted engine, one worker (the baseline plans)",
    "thread": "thread pool, 2 workers, row threshold 0 (every "
              "aggregation partitions)",
    "process": "shared-memory process pool, 2 workers, 2-row morsels "
               "(leaked segments are divergences)",
    "memory": "in-memory column store (the default substrate)",
    "disk": "page-backed store, 8-page buffer pool (evictions on "
            "purpose; stray files are divergences)",
    "untraced": "no span capture (fastest)",
    "traced": "span trees validated + charge audits after every run",
}


def _list_variants() -> int:
    print("variant matrix (backend x storage x trace):")
    for backend in ("serial", "thread", "process"):
        for storage in ("memory", "disk"):
            for trace in ("untraced", "traced"):
                name = f"{backend}/{storage}/{trace}"
                print(f"  {name:<24} backend: "
                      f"{_AXIS_DESCRIPTIONS[backend]}")
                print(f"  {'':<24} storage: "
                      f"{_AXIS_DESCRIPTIONS[storage]}")
                print(f"  {'':<24} trace:   "
                      f"{_AXIS_DESCRIPTIONS[trace]}")
    print("sweeps: differential (default), --fault-sweep, "
          "--cancel-sweep, --views; select axes with --backend, "
          "--storage, --trace")
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_variants:
        return _list_variants()
    if sum((args.fault_sweep, args.cancel_sweep, args.views)) > 1:
        print("error: --fault-sweep, --cancel-sweep and --views are "
              "mutually exclusive", file=sys.stderr)
        return 2
    if args.inject_bug in VIEWS_BUGS and not args.views:
        print(f"error: --inject-bug {args.inject_bug} requires "
              f"--views", file=sys.stderr)
        return 2
    if args.views:
        return _views(args)
    if args.cancel_sweep:
        return _cancel_sweep(args)
    if args.fault_sweep:
        return _sweep(args)
    if args.replay:
        return _replay(args)
    return _fuzz(args)


# ----------------------------------------------------------------------
def _fuzz(args: argparse.Namespace) -> int:
    generator = CaseGenerator(seed=args.seed,
                              families=tuple(args.family or FAMILIES))
    started = time.monotonic()
    families: Counter = Counter()
    divergences = 0
    ran = 0
    for case in generator.cases(args.budget):
        if args.max_seconds is not None and \
                time.monotonic() - started > args.max_seconds:
            print(f"time budget reached after {ran} cases")
            break
        ran += 1
        families[case.family] += 1
        result = run_case(case, inject_bug=args.inject_bug,
                          case_timeout=args.case_timeout,
                          parallel=args.parallel, trace=args.trace,
                          backends=tuple(args.backend or ()),
                          storages=tuple(args.storage or ()))
        if result.divergent:
            divergences += 1
            _report(case, result, args)
            if args.stop_on_first:
                break
    elapsed = time.monotonic() - started
    mix = ", ".join(f"{family}={count}"
                    for family, count in sorted(families.items()))
    print(f"ran {ran} cases in {elapsed:.1f}s ({mix}); "
          f"{divergences} divergence(s)")
    if args.inject_bug and divergences == 0:
        print(f"error: --inject-bug {args.inject_bug} produced no "
              f"divergence -- the harness is blind to it", file=sys.stderr)
        return 1
    return 1 if divergences else 0


def _report(case: FuzzCase, result, args: argparse.Namespace) -> None:
    print(f"DIVERGENCE at case {case.index}: {result.explanation}")
    backends = tuple(args.backend or ())
    storages = tuple(args.storage or ())
    minimized = reduce_case(
        case, lambda c: run_case(c, args.inject_bug,
                                 parallel=args.parallel,
                                 trace=args.trace,
                                 backends=backends,
                                 storages=storages).divergent)
    final = run_case(minimized, inject_bug=args.inject_bug,
                     parallel=args.parallel, trace=args.trace,
                     backends=backends, storages=storages)
    path = save_repro(
        minimized, Path(args.out),
        description=f"minimized divergence (seed={case.seed}, "
                    f"case={case.index}): {final.explanation}",
        expect="divergent")
    print(f"  minimized to {len(minimized.rows)} row(s), "
          f"{len(minimized.group_by)} group column(s): "
          f"{minimized.query_sql()}")
    print(f"  repro written to {path}")
    if not args.quiet:
        print(final.divergence_report())


def _sweep(args: argparse.Namespace) -> int:
    from repro.fuzz.crash import (SweepStats, sweep_case,
                                  sweep_case_storage)

    sweep_disk = "disk" in (args.storage or ())
    generator = CaseGenerator(seed=args.seed,
                              families=tuple(args.family or FAMILIES))
    started = time.monotonic()
    stats = SweepStats()
    for case in generator.cases(args.budget):
        if args.max_seconds is not None and \
                time.monotonic() - started > args.max_seconds:
            print(f"time budget reached after {stats.cases} cases")
            break
        if sweep_disk:
            sweep_case_storage(case, stats)
        else:
            sweep_case(case, stats)
    elapsed = time.monotonic() - started
    kind = "storage kill points" if sweep_disk \
        else "statement/operator sites"
    print(f"{stats.summary()} ({kind}) in {elapsed:.1f}s")
    for finding in stats.findings:
        print(f"FINDING: {finding.describe()}", file=sys.stderr)
    return 0 if stats.ok else 1


def _cancel_sweep(args: argparse.Namespace) -> int:
    from repro.fuzz.cancelsweep import (BACKENDS, STORAGES,
                                        CancelSweepStats,
                                        sweep_case_cancel)

    backends = tuple(args.backend or BACKENDS)
    storages = tuple(args.storage or STORAGES)
    generator = CaseGenerator(seed=args.seed,
                              families=tuple(args.family or FAMILIES))
    started = time.monotonic()
    stats = CancelSweepStats()
    for case in generator.cases(args.budget):
        if args.max_seconds is not None and \
                time.monotonic() - started > args.max_seconds:
            print(f"time budget reached after {stats.cases} cases")
            break
        sweep_case_cancel(case, stats, backends=backends,
                          storages=storages)
    elapsed = time.monotonic() - started
    print(f"{stats.summary()} "
          f"(backends: {', '.join(backends)}; "
          f"storages: {', '.join(storages)}) in {elapsed:.1f}s")
    for finding in stats.findings:
        print(f"FINDING: {finding.describe()}", file=sys.stderr)
    return 0 if stats.ok else 1


def _views(args: argparse.Namespace) -> int:
    from repro.fuzz.views import (BACKENDS, STORAGES, ViewSweepStats,
                                  sweep_case_views)

    if args.inject_bug is not None and args.inject_bug not in VIEWS_BUGS:
        print(f"error: --views supports --inject-bug "
              f"{'/'.join(VIEWS_BUGS)} only", file=sys.stderr)
        return 2
    backends = tuple(args.backend or BACKENDS)
    storages = tuple(args.storage or STORAGES)
    generator = CaseGenerator(seed=args.seed,
                              families=tuple(args.family or FAMILIES))
    started = time.monotonic()
    stats = ViewSweepStats()
    for case in generator.cases(args.budget):
        if args.max_seconds is not None and \
                time.monotonic() - started > args.max_seconds:
            print(f"time budget reached after {stats.cases} cases")
            break
        sweep_case_views(case, stats, backends=backends,
                         storages=storages,
                         inject_bug=args.inject_bug)
    elapsed = time.monotonic() - started
    print(f"{stats.summary()} "
          f"(backends: {', '.join(backends)}; "
          f"storages: {', '.join(storages)}) in {elapsed:.1f}s")
    if not args.quiet:
        for finding in stats.findings:
            print(f"FINDING: {finding.describe()}", file=sys.stderr)
    if args.inject_bug and stats.ok:
        print(f"error: --inject-bug {args.inject_bug} produced no "
              f"finding -- the sweep is blind to it", file=sys.stderr)
        return 1
    return 0 if stats.ok else 1


def _replay(args: argparse.Namespace) -> int:
    failures = 0
    total = 0
    for path, case, expect in load_corpus(args.replay):
        total += 1
        result = run_case(case, parallel=args.parallel,
                          trace=args.trace,
                          backends=tuple(args.backend or ()),
                          storages=tuple(args.storage or ()))
        verdict = "divergent" if result.divergent else "consistent"
        ok = verdict == expect
        status = "ok" if ok else f"FAIL (expected {expect}, got {verdict})"
        print(f"{path.name}: {status}")
        if not ok:
            failures += 1
            if not args.quiet and result.divergent:
                print(result.divergence_report())
    print(f"replayed {total} corpus case(s); {failures} failure(s)")
    return 1 if failures else 0
