"""Snapshot isolation for the concurrent query service.

The copy-on-write catalog (:mod:`repro.engine.catalog`) publishes a
fresh generation of its dicts on every mutation and never touches a
published object again.  That makes a *snapshot* an O(1) capture of
references -- no copying, no locking beyond the catalog's publish
lock -- and makes the isolation guarantee structural rather than
scheduled: a reader holding :class:`Snapshot` cannot observe later
writes because the objects it holds are frozen by discipline, not by
blocking writers.

Two pieces live here:

* :class:`Snapshot` -- an immutable capture of the base catalog
  (version, fingerprint, pinned table/view/index objects).
* :class:`SnapshotDatabase` -- a :class:`~repro.api.database.Database`
  whose catalog is a *private overlay* seeded from a snapshot.  It has
  full engine semantics (multi-statement percentage plans create and
  drop temp tables in the overlay) but none of it is visible outside,
  so many readers evaluate concurrently against different -- or the
  same -- versions of the data while writers proceed.

The :class:`SnapshotManager` ties acquisition to the service's writer
lock: snapshots are taken only *between* write scripts, so a reader can
never see the torn middle of a multi-statement plan even though the
statements commit to the catalog one at a time.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass
from typing import Optional

from repro.api.database import Database
from repro.engine.catalog import Catalog, CatalogSnapshot
from repro.engine.executor import Executor, ExecutorOptions


@dataclass(frozen=True)
class Snapshot:
    """One immutable, internally consistent view of the database.

    Cheap to hold (references only) and safe to share across threads.
    """

    catalog: CatalogSnapshot

    @property
    def version(self) -> int:
        """The catalog mutation counter at capture time.  Two snapshots
        with equal versions saw byte-identical catalogs."""
        return self.catalog.version

    @property
    def fingerprint(self) -> tuple:
        """Structural fingerprint of the captured catalog (object
        identities); equal fingerprints imply identical content."""
        return self.catalog.fingerprint

    def table_identities(self) -> dict[str, tuple]:
        """``name -> Table.identity()`` for every captured table (the
        stress harness keys its shadow model on these)."""
        return {name: table.identity()
                for name, table in self.catalog.tables.items()}


class SnapshotDatabase(Database):
    """A Database facade over a private overlay of one snapshot.

    Shares with the base database everything that is thread-safe and
    global by design -- the statistics collector, the resource governor
    and the dictionary-encoding cache (version-keyed, so overlay temps
    and base tables coexist) -- and owns everything that carries
    per-query state: the overlay catalog, the executor options (where
    per-session defaults land) and the executor itself.

    DML against this object mutates only the overlay; the base catalog
    and every published object stay untouched.  That is what lets a
    snapshot reader run the paper's multi-statement Vpct/Hpct plans
    (CREATE temp / INSERT / result SELECT / DROP) with zero
    coordination.
    """

    def __init__(self, base: Database, snapshot: Snapshot,
                 options: Optional[ExecutorOptions] = None):
        # Deliberately no super().__init__(): the overlay borrows the
        # base's shared services instead of building fresh ones.
        base_catalog = base.catalog
        self.catalog = Catalog.from_snapshot(
            snapshot.catalog, base_catalog.max_columns,
            base_catalog.max_name_length, base_catalog.encoding_cache)
        # The stats collector must be the base's: the executor binds it
        # to the shared encoding cache, and a private collector would
        # steal the cache's stats mirror from the base.
        self.stats = base.stats
        self.options = (dataclasses.replace(options) if options is not None
                        else dataclasses.replace(base.options))
        self.governor = base.governor
        # Observability is shared too: overlay statements trace into
        # the base tracer (under whatever script span the scheduler
        # opened) and meter into the base registry, so per-query state
        # stays private while the telemetry view stays whole-service.
        self.clock = base.clock
        self.default_deadline_seconds = base.default_deadline_seconds
        self.tracer = base.tracer
        self.metrics = base.metrics
        self.executor = Executor(self.catalog, self.stats, self.options,
                                 governor=self.governor,
                                 tracer=self.tracer)
        self._lock = threading.RLock()
        self.snapshot = snapshot
        self.base = base


class SnapshotManager:
    """Hands out snapshots and snapshot-isolated readers.

    ``write_lock`` is the service's single writer lock; taking it for
    the (instant) duration of a capture serializes acquisition against
    whole write *scripts*, which is the multi-statement consistency
    guarantee -- the catalog itself would happily hand out a snapshot
    between two statements of one script.
    """

    def __init__(self, db: Database, write_lock: threading.RLock):
        self._db = db
        self._write_lock = write_lock

    def acquire(self) -> Snapshot:
        """Capture the current committed state (waits out any write
        script in flight; never blocks on readers)."""
        with self._write_lock:
            return Snapshot(catalog=self._db.catalog.snapshot())

    def reader(self, snapshot: Optional[Snapshot] = None,
               options: Optional[ExecutorOptions] = None
               ) -> SnapshotDatabase:
        """A private overlay database over ``snapshot`` (a fresh
        capture when none is given), with ``options`` as its executor
        defaults."""
        if snapshot is None:
            snapshot = self.acquire()
        return SnapshotDatabase(self._db, snapshot, options)
