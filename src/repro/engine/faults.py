"""Deterministic fault injection for the execution runtime.

The engine exposes named *injection sites* -- statement boundaries and
the hot operators a real DBMS would consider failure-atomic units
(join build, pivot dispatch, group-by factorization, the encoding
cache).  A test or the crash-consistency sweep activates a
:class:`FaultInjector` for the current thread; every site then counts
its hits and raises a typed error exactly where the injector's specs
say so.  With no injector active the per-site :func:`fire` call is a
thread-local attribute read -- cheap enough to leave in hot paths.

Determinism rules:

* explicit specs fire on *hit indexes* (the N-th time a site is
  reached), so ``FaultSpec("statement", at=3)`` reproduces forever;
* the optional seeded mode draws from ``random.Random(seed)`` per hit,
  so a chaos run is replayable from its seed alone;
* injectors are thread-local: concurrent sessions never see each
  other's faults.

Usage::

    from repro.engine import faults
    from repro.engine.faults import FaultInjector, FaultSpec

    injector = FaultInjector([FaultSpec("statement", error="transient",
                                        at=2)])
    with faults.active(injector):
        execute_plan(db, plan)          # 3rd statement raises once
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.errors import (ResourceExhausted, SimulatedCrash,
                          TransientError)
from repro.obs.metrics import global_registry

#: Injection sites wired into the engine.  ``statement`` fires at every
#: statement boundary of a generated plan (see core.execute); the rest
#: fire inside the named operator.  The three ``storage-*`` sites are
#: the WAL/buffer-pool kill points: ``storage-page-write`` fires
#: between the two halves of a page image (a crash there tears the
#: page), ``storage-wal-fsync`` fires just before a commit record is
#: appended (a crash there loses the mutation cleanly), and
#: ``storage-commit`` fires after the record is durable but before the
#: in-memory publish (a crash there must be redone on reopen).
SITES = ("statement", "join-build", "group-by", "pivot",
         "encoding-cache", "process-worker",
         "storage-page-write", "storage-wal-fsync", "storage-commit")

#: Fault kinds and the exception class each raises.
ERROR_KINDS = {
    "transient": TransientError,
    "resource": ResourceExhausted,
    "crash": SimulatedCrash,
}


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    Attributes:
        site: injection-site name (see :data:`SITES`).
        error: ``"transient"``, ``"resource"`` or ``"crash"``.
        at: 0-based hit index of ``site`` at which the fault starts
            firing (hits are counted per injector, across retries).
        times: how many hits fire once armed; ``None`` means every
            hit from ``at`` onward (a permanent fault).
    """

    site: str
    error: str = "transient"
    at: int = 0
    times: Optional[int] = 1

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}; "
                             f"known: {', '.join(SITES)}")
        if self.error not in ERROR_KINDS:
            raise ValueError(
                f"unknown fault kind {self.error!r}; "
                f"known: {', '.join(ERROR_KINDS)}")


@dataclass
class FaultInjector:
    """A registry of planned faults plus optional seeded chaos.

    Attributes:
        specs: explicit faults (deterministic by hit index).
        seed/rate/chaos_sites/chaos_error: when ``rate > 0``, every
            hit of a chaos site additionally fires with probability
            ``rate`` drawn from ``random.Random(seed)`` -- still fully
            replayable from the seed.
    """

    specs: Sequence[FaultSpec] = ()
    seed: Optional[int] = None
    rate: float = 0.0
    chaos_sites: Sequence[str] = SITES
    chaos_error: str = "transient"

    hits: dict = field(default_factory=dict)
    faults_raised: int = 0

    def __post_init__(self) -> None:
        self._fired = {spec: 0 for spec in self.specs}
        self._rng = random.Random(self.seed)
        if self.chaos_error not in ERROR_KINDS:
            raise ValueError(f"unknown fault kind "
                             f"{self.chaos_error!r}")

    # ------------------------------------------------------------------
    def fire(self, site: str) -> None:
        """Record one hit of ``site``; raise if a fault is due."""
        index = self.hits.get(site, 0)
        self.hits[site] = index + 1
        for spec in self.specs:
            if spec.site != site or index < spec.at:
                continue
            if spec.times is not None and self._fired[spec] >= spec.times:
                continue
            self._fired[spec] += 1
            self.faults_raised += 1
            _count_fault(site, spec.error)
            raise ERROR_KINDS[spec.error](
                f"injected {spec.error} fault at {site}#{index}")
        if self.rate > 0.0 and site in self.chaos_sites \
                and self._rng.random() < self.rate:
            self.faults_raised += 1
            _count_fault(site, self.chaos_error)
            raise ERROR_KINDS[self.chaos_error](
                f"injected {self.chaos_error} chaos fault at "
                f"{site}#{index}")


def _count_fault(site: str, error: str) -> None:
    # Injectors are per-test/per-sweep throwaways, so the durable
    # record of injected faults lives in the process-wide registry.
    global_registry().counter(
        "faults_injected_total",
        help="faults raised by the injection registry",
        site=site, error=error).inc()


# ----------------------------------------------------------------------
# Thread-local activation
# ----------------------------------------------------------------------
_local = threading.local()


def current() -> Optional[FaultInjector]:
    """The injector active on this thread, if any."""
    return getattr(_local, "injector", None)


@contextmanager
def active(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Activate ``injector`` for the current thread."""
    previous = current()
    _local.injector = injector
    try:
        yield injector
    finally:
        _local.injector = previous


def fire(site: str) -> None:
    """Hot-path hook: count a hit of ``site`` on the active injector.

    A no-op (one thread-local read) when no injector is active, so
    operators call it unconditionally.
    """
    injector = current()
    if injector is not None:
        injector.fire(site)
