"""Deriving view results from state, and matching queries to views.

Derivation replicates the engine's own evaluation strategies *column
by column* so a view-answered read is bit-identical to a recompute:

* **plain** group-by -- select items in position order, factorize row
  order (sorted keys, NULL first / NaN last), raw kernel result types.
* **vertical** (``Vpct``) -- the default join-insert strategy: REAL
  fine sums (Fk), denominators accumulated through the fj lattice
  (coarser totals sum the smallest finer total with the same
  argument, in its sorted-key order -- the exact float addend order
  the engine's ``sum(total) FROM fj GROUP BY ...`` consumes), the
  three-way NULL/zero-denominator CASE division, result ordered by the
  full GROUP BY.
* **horizontal** (``Hpct``/``Hagg``) -- the direct (source=F)
  strategy: combinations discovered as sorted DISTINCT BY-tuples of
  WHERE-passing rows, CASE cells (absent combination 0 for Hpct /
  NULL for Hagg, zero-or-NULL denominator nulls the Hpct row, count
  guarded on match existence, DEFAULT coalesce), declared cell types.

:func:`derive_delta` is the selective path: when a DML changes no
group's existence (no births/deaths, and for horizontal views no
combination changes) only the result rows whose numerator group was
touched -- or, for Vpct, whose denominator group changed -- are
re-derived; every other row's column data is reused bit-for-bit.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.core import common, model
from repro.core.naming import NamingPolicy, combo_column_name
from repro.engine.column import ColumnData
from repro.engine.table import Table
from repro.engine.types import SQLType
from repro.sql.formatter import format_select
from repro.views.state import (HORIZONTAL, PLAIN, VERTICAL, DeltaInfo,
                               ViewDefinition, ViewState,
                               normalize_key, sort_key)


# ----------------------------------------------------------------------
# Full derivation
# ----------------------------------------------------------------------
def derive(definition: ViewDefinition, state: ViewState) -> Table:
    """Derive the full result table; refreshes the patch caches."""
    level = state.levels[0]
    order = level.ordered_slots()
    named = _key_columns(definition, state, order)
    if definition.kind == PLAIN:
        named = _interleave_plain(definition, named,
                                  _cells(definition, state, order))
    else:
        if definition.kind == HORIZONTAL:
            state.combos = _discover_combos(definition, state)
        for (_, sql_type, values), name in zip(
                _cells(definition, state, order),
                _cell_names(definition, state)):
            named.append((name, ColumnData.from_values(sql_type,
                                                       values)))
    table = Table.from_columns(definition.name, named)
    state.result = table
    state.row_of_slot = {slot: row for row, slot in enumerate(order)}
    return table


def _key_columns(definition, state, order) -> list:
    level = state.levels[0]
    named = []
    if definition.kind == PLAIN:
        return named
    for i, column in enumerate(definition.group_by):
        values = [level.keys[s][i] for s in order]
        named.append((column, ColumnData.from_values(
            definition.key_types[i], values)))
    return named


def _interleave_plain(definition, named, cells) -> list:
    """Plain views emit keys and aggregates in select-item order."""
    out = list(named)
    for (pos, sql_type, values), name in zip(cells,
                                             definition.plain_names):
        out.append((name, ColumnData.from_values(sql_type, values)))
    return out


# ----------------------------------------------------------------------
# Selective re-derivation
# ----------------------------------------------------------------------
def derive_delta(definition: ViewDefinition, state: ViewState,
                 delta: DeltaInfo) -> Table:
    """Patch only changed rows of the previous result when no group
    was born or retracted; otherwise fall back to a full derive."""
    previous = state.result
    if previous is None or state.row_of_slot is None \
            or not delta.primary_stable():
        return derive(definition, state)
    if definition.kind == HORIZONTAL and not delta.fine_stable():
        return derive(definition, state)
    slots = _patch_slots(definition, state, delta)
    if not slots:
        return previous
    rows = np.array([state.row_of_slot[s] for s in slots],
                    dtype=np.int64)
    patched = {pos: (sql_type, values)
               for pos, sql_type, values in
               _cells(definition, state, slots)}
    named = []
    for pos, col_def in enumerate(previous.schema.columns):
        data = previous.column(col_def.name)
        if pos in patched:
            sql_type, values = patched[pos]
            small = ColumnData.from_values(sql_type, values)
            merged = data.values.copy()
            nulls = data.nulls.copy()
            merged[rows] = small.values
            nulls[rows] = small.nulls
            data = ColumnData(sql_type, merged, nulls)
        named.append((col_def.name, data))
    table = Table.from_columns(definition.name, named)
    state.result = table
    return table


def _patch_slots(definition, state, delta) -> list[int]:
    from repro.views import maintenance

    touched = set(delta.touched[0])
    if definition.kind == VERTICAL and \
            maintenance.INJECT_BUG != "views-stale-denominator":
        # Any row sharing a denominator group with a touched row may
        # see a new percentage; fold those groups in.
        level = state.levels[0]
        group_by = definition.group_by
        for plan in definition.vplans:
            if not plan.is_vpct:
                continue
            pos = [group_by.index(c) for c in plan.totals]
            changed = {normalize_key(tuple(level.keys[s][p]
                                           for p in pos))
                       for s in touched}
            for slot in level.slots.values():
                if normalize_key(tuple(level.keys[slot][p]
                                       for p in pos)) in changed:
                    touched.add(slot)
    return sorted(touched)


# ----------------------------------------------------------------------
# Cell computation (shared by full derive and patching)
# ----------------------------------------------------------------------
def _cells(definition, state, slots
           ) -> list[tuple[int, SQLType, list]]:
    """Non-key cell values for the given primary slots, as
    ``(result column position, type, values)`` triples."""
    if definition.kind == PLAIN:
        return _plain_cells(definition, state, slots)
    if definition.kind == VERTICAL:
        return _vertical_cells(definition, state, slots)
    return _horizontal_cells(definition, state, slots)


def _plain_cells(definition, state, slots):
    level = state.levels[0]
    cells = []
    for pos, (kind, idx) in enumerate(definition.plain_items):
        if kind == "key":
            cells.append((pos, definition.key_types[idx],
                          [level.keys[s][idx] for s in slots]))
        else:
            cells.append((pos, level.measure_types[idx],
                          [level.values[idx][s] for s in slots]))
    return cells


def _vertical_cells(definition, state, slots):
    level = state.levels[0]
    group_by = definition.group_by
    totals = _vertical_totals(definition, state)
    cells = []
    for idx, plan in enumerate(definition.vplans):
        pos = len(group_by) + idx
        if not plan.is_vpct:
            cells.append((pos, plan.out_type,
                          [level.values[idx][s] for s in slots]))
            continue
        projection = [group_by.index(c) for c in plan.totals]
        total_map = totals[idx]
        values: list[Any] = []
        for s in slots:
            raw = level.keys[s]
            total = total_map[normalize_key(
                tuple(raw[p] for p in projection))]
            numerator = level.values[idx][s]
            if total is None or total == 0 or numerator is None:
                values.append(None)
            else:
                values.append(float(numerator) / total)
        cells.append((pos, SQLType.REAL, values))
    return cells


def _vertical_totals(definition, state) -> dict[int, dict]:
    """Denominator sums per Vpct term, via the engine's fj lattice.

    Fine sums are accumulated in sorted fine-key order (the fk table's
    row order); a coarser total that can source a finer one accumulates
    that fj's totals in *its* sorted-key order instead -- replicating
    ``sum(...) FROM <source> GROUP BY <totals>`` addend for addend.
    NULL handling matches SQL ``sum``: NULLs are skipped and an
    all-NULL group's total is NULL.
    """
    level = state.levels[0]
    group_by = definition.group_by
    order = level.ordered_slots()
    entries_by_plan: dict[int, dict] = {}
    for plan_idx, source_idx in definition.lattice:
        plan = definition.vplans[plan_idx]
        entries: dict[tuple, list] = {}
        if source_idx is None:
            projection = [group_by.index(c) for c in plan.totals]
            for s in order:
                raw_key = level.keys[s]
                raw = tuple(raw_key[p] for p in projection)
                value = level.values[plan_idx][s]
                _accumulate(entries, raw,
                            None if value is None else float(value))
        else:
            source = definition.vplans[source_idx]
            projection = [source.totals.index(c)
                          for c in plan.totals]
            source_entries = sorted(
                entries_by_plan[source_idx].values(),
                key=lambda entry: sort_key(entry[0]))
            for raw_source, value in source_entries:
                raw = tuple(raw_source[p] for p in projection)
                _accumulate(entries, raw, value)
        entries_by_plan[plan_idx] = entries
    return {plan_idx: {key: entry[1]
                       for key, entry in entries.items()}
            for plan_idx, entries in entries_by_plan.items()}


def _accumulate(entries: dict, raw: tuple,
                value: Optional[float]) -> None:
    key = normalize_key(raw)
    current = entries.get(key)
    if current is None:
        entries[key] = [raw, value]
    elif value is not None:
        current[1] = value if current[1] is None \
            else current[1] + value


def _discover_combos(definition, state) -> list[list[tuple]]:
    """Distinct BY-tuples among live fine slots, sorted -- the same
    combinations ``SELECT DISTINCT ... ORDER BY ...`` discovers over
    the WHERE-passing rows."""
    n_keys = len(definition.group_by)
    combos = []
    for level in state.levels[1:]:
        seen: dict[tuple, tuple] = {}
        for key, slot in level.slots.items():
            seen.setdefault(key[n_keys:], level.keys[slot][n_keys:])
        combos.append(sorted(seen.values(), key=sort_key))
    return combos


def _horizontal_cells(definition, state, slots):
    coarse = state.levels[0]
    n_keys = len(definition.group_by)
    combos = state.combos
    if combos is None:
        combos = _discover_combos(definition, state)
        state.combos = combos
    cells = []
    pos = n_keys
    for plan in definition.hplans:
        if plan.kind == model.VERTICAL:
            cells.append((pos, plan.out_type,
                          [coarse.values[plan.coarse_measure][s]
                           for s in slots]))
            pos += 1
            continue
        fine = state.levels[plan.level]
        fine_values = fine.values[plan.fine_measure]
        for combo in combos[plan.level - 1]:
            combo_key = normalize_key(combo)
            values: list[Any] = []
            for s in slots:
                slot = fine.slots.get(
                    normalize_key(coarse.keys[s]) + combo_key)
                if plan.kind == model.HPCT:
                    total = coarse.values[plan.coarse_measure][s]
                    if total is None or total == 0:
                        values.append(None)
                    elif slot is None:
                        values.append(0.0)
                    else:
                        numerator = fine_values[slot]
                        values.append(
                            None if numerator is None
                            else float(numerator) / float(total))
                else:
                    value = None if slot is None else fine_values[slot]
                    if value is None and plan.default is not None:
                        value = plan.default
                    values.append(value)
            cells.append((pos, plan.out_type, values))
            pos += 1
    return cells


def _cell_names(definition, state) -> list[str]:
    """Non-key output column names, in cell order.

    Horizontal names interleave plain-term names with per-combination
    names through one shared ``used`` set, exactly as the engine's
    direct strategy builds its FH column list."""
    if definition.kind == VERTICAL:
        return [plan.name for plan in definition.vplans]
    used = {c.lower() for c in definition.group_by}
    policy = NamingPolicy()
    names = []
    for plan in definition.hplans:
        term = definition.query.terms[plan.position]
        if plan.kind == model.VERTICAL:
            names.append(common.vertical_term_name(term, used))
            continue
        label = f"{term.label()}_" if definition.multiple else ""
        for combo in state.combos[plan.level - 1]:
            names.append(combo_column_name(
                term.by_columns, combo, policy,
                definition.max_name_length, used, prefix=label))
    return names


# ----------------------------------------------------------------------
# Query matching
# ----------------------------------------------------------------------
def match_view(catalog, select) -> Optional[object]:
    """The materialized view whose canonical definition text equals
    this SELECT's, if any (whole-statement structural rewrite)."""
    matviews = catalog.matviews()
    if not matviews:
        return None
    try:
        canonical = format_select(select)
    except TypeError:  # pragma: no cover - non-select statements
        return None
    for mv in matviews.values():
        if mv.definition.sql == canonical:
            return mv
    return None
