"""Unit tests for the SQL parser, including the paper's extension
syntax."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sql import ast
from repro.sql.parser import (parse_expression, parse_script,
                              parse_statement)


class TestSelect:
    def test_simple(self):
        stmt = parse_statement("SELECT a, b FROM t")
        assert isinstance(stmt, ast.Select)
        assert len(stmt.items) == 2
        assert stmt.from_.first.name == "t"

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct

    def test_star_and_qualified_star(self):
        stmt = parse_statement("SELECT *, t.* FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)
        assert stmt.items[1].expr.table == "t"

    def test_aliases(self):
        stmt = parse_statement("SELECT a AS x, b y FROM t")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"

    def test_group_by_positions(self):
        stmt = parse_statement(
            "SELECT a, b, count(*) FROM t GROUP BY 1, 2")
        assert stmt.group_by == (ast.Literal(1), ast.Literal(2))

    def test_full_clause_set(self):
        stmt = parse_statement(
            "SELECT a, sum(b) FROM t WHERE a > 0 GROUP BY a "
            "HAVING sum(b) > 10 ORDER BY a DESC LIMIT 5")
        assert stmt.where is not None
        assert stmt.having is not None
        assert stmt.order_by[0].ascending is False
        assert stmt.limit == 5

    def test_comma_join(self):
        stmt = parse_statement("SELECT * FROM a, b WHERE a.x = b.x")
        assert stmt.from_.joins[0].kind == "cross"

    def test_left_outer_join(self):
        stmt = parse_statement(
            "SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x "
            "LEFT JOIN c ON a.x = c.x")
        assert [j.kind for j in stmt.from_.joins] == ["left", "left"]

    def test_inner_join(self):
        stmt = parse_statement("SELECT * FROM a JOIN b ON a.x = b.x")
        assert stmt.from_.joins[0].kind == "inner"

    def test_derived_table(self):
        stmt = parse_statement(
            "SELECT q.a FROM (SELECT a FROM t) q")
        assert isinstance(stmt.from_.first, ast.SubquerySource)
        assert stmt.from_.first.alias == "q"

    def test_derived_table_requires_alias(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELECT a FROM (SELECT a FROM t)")


class TestExtendedSyntax:
    def test_vpct(self):
        stmt = parse_statement(
            "SELECT state, city, Vpct(salesAmt BY city) FROM sales "
            "GROUP BY state, city")
        call = stmt.items[2].expr
        assert call.name == "vpct"
        assert [c.name for c in call.by_columns] == ["city"]

    def test_hpct_multi_by(self):
        call = parse_expression("Hpct(a BY d1, d2)")
        assert call.name == "hpct"
        assert len(call.by_columns) == 2

    def test_hagg_with_default(self):
        call = parse_expression("max(1 BY deptId DEFAULT 0)")
        assert call.name == "max"
        assert call.default == ast.Literal(0)
        assert call.is_extended

    def test_count_distinct_by(self):
        call = parse_expression(
            "count(distinct transactionid BY dayofweekNo)")
        assert call.distinct
        assert call.by_columns[0].name == "dayofweekNo"

    def test_plain_aggregate_not_extended(self):
        assert not parse_expression("sum(a)").is_extended

    def test_window_function(self):
        call = parse_expression("sum(a) OVER (PARTITION BY b, c)")
        assert call.over is not None
        assert len(call.over.partition_by) == 2

    def test_window_empty_over(self):
        call = parse_expression("sum(a) OVER ()")
        assert call.over == ast.WindowSpec(())


class TestExpressions:
    def test_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_and_or_precedence(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_parentheses(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_case(self):
        expr = parse_expression(
            "CASE WHEN a = 1 THEN 'x' WHEN a = 2 THEN 'y' "
            "ELSE 'z' END")
        assert isinstance(expr, ast.CaseWhen)
        assert len(expr.whens) == 2
        assert expr.else_ == ast.Literal("z")

    def test_case_requires_when(self):
        with pytest.raises(SQLSyntaxError):
            parse_expression("CASE ELSE 1 END")

    def test_cast(self):
        expr = parse_expression("CAST(a AS VARCHAR(20))")
        assert isinstance(expr, ast.Cast)
        assert expr.type_name == "VARCHAR"

    def test_not_in_between(self):
        assert isinstance(parse_expression("a NOT IN (1, 2)"),
                          ast.InList)
        between = parse_expression("a BETWEEN 1 AND 2")
        assert between.op == "AND"

    def test_is_null(self):
        assert parse_expression("a IS NOT NULL").negated

    def test_literals(self):
        assert parse_expression("NULL") == ast.Literal(None)
        assert parse_expression("TRUE") == ast.Literal(True)
        # Unary minus on a number folds into a negative literal.
        assert parse_expression("-3") == ast.Literal(-3)
        assert parse_expression("-x").op == "-"


class TestDML:
    def test_insert_values(self):
        stmt = parse_statement(
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert stmt.columns == ("a", "b")
        assert len(stmt.rows) == 2

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t SELECT a FROM u")
        assert isinstance(stmt, ast.InsertSelect)

    def test_update_with_from(self):
        stmt = parse_statement(
            "UPDATE fk SET a = fk.a / fj.t FROM fj "
            "WHERE fk.d = fj.d")
        assert stmt.from_tables[0].name == "fj"
        assert stmt.assignments[0].column == "a"

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, ast.Delete)

    def test_create_table_variants(self):
        inline = parse_statement(
            "CREATE TABLE t (a INT, b REAL, PRIMARY KEY (a))")
        trailing = parse_statement(
            "CREATE TABLE t (a INT, b REAL) PRIMARY KEY (a)")
        assert inline.primary_key == trailing.primary_key == ("a",)

    def test_create_table_as(self):
        stmt = parse_statement("CREATE TABLE t AS SELECT 1")
        assert isinstance(stmt, ast.CreateTableAs)

    def test_create_drop_index(self):
        stmt = parse_statement("CREATE INDEX ix ON t (a, b)")
        assert stmt.columns == ("a", "b")
        assert parse_statement("DROP INDEX IF EXISTS ix").if_exists


class TestScripts:
    def test_multiple_statements(self):
        script = parse_script(
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); "
            "SELECT a FROM t;")
        assert len(script) == 3

    def test_trailing_semicolon_optional(self):
        assert len(parse_script("SELECT 1")) == 1

    def test_garbage_raises(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELEKT 1")

    def test_trailing_junk_raises(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELECT 1 garbage extra tokens ,")


class TestQuotedKeywordColumns:
    """Columns named after keywords stay selectable when quoted."""

    def test_select_column_named_null(self):
        from repro.sql import ast
        stmt = parse_statement('SELECT "null" FROM t')
        expr = stmt.items[0].expr
        assert isinstance(expr, ast.ColumnRef)
        assert expr.name == "null"

    def test_column_named_null_round_trips_with_data(self):
        from repro import Database
        db = Database()
        db.execute('CREATE TABLE t ("null" REAL, "case" INT)')
        db.execute("INSERT INTO t VALUES (2.5, 1), (NULL, 2)")
        assert db.query('SELECT "null", "case" FROM t '
                        'ORDER BY "case"') == [(2.5, 1), (None, 2)]

    def test_quoted_from_is_a_table_name(self):
        stmt = parse_statement('SELECT x FROM "from"')
        assert stmt.from_.first.name == "from"
