"""Hash-dispatch evaluation of disjoint pivot-style CASE aggregations.

Both papers observe that queries of the shape

    sum(CASE WHEN Dh = vh1 AND ... AND Dk = vk1 THEN A ELSE null END),
    ...
    sum(CASE WHEN Dh = vhN AND ... AND Dk = vkN THEN A ELSE null END)

force the evaluator to test ``N`` conjunctions per input row even
though the conditions are disjoint -- each row falls into exactly one
result column -- and propose reducing the per-row cost from ``O(N)`` to
``O(1)`` "using a hash table that maps one conjunction to one result
column" (DMKD Section 3.5).

This module is that proposed optimizer improvement.  When the executor
runs with ``case_dispatch="hash"``, it detects families of aggregate
terms matching the pattern, factorizes the input *once* over
(group keys x pivot columns) -- a vectorized stand-in for the per-row
hash probe -- aggregates each cell once, and scatters cell values into
the per-term result columns.  Only one ``case_evaluations`` charge per
row is recorded, versus ``N`` per row for the linear strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.engine import aggregates as agg_mod
from repro.engine import cancel, faults
from repro.engine.column import ColumnData
from repro.engine.encoding_cache import EncodingCache
from repro.engine.expressions import Frame, evaluate
from repro.engine import groupby as groupby_mod
from repro.engine.groupby import Grouping, factorize
from repro.engine.stats import StatsCollector
from repro.engine.types import SQLType
from repro.sql import ast


@dataclass
class _PivotTerm:
    """One aggregate select term matching the pivot pattern."""

    index: int                      # position in agg_specs
    func: str
    literals: dict[Any, Any]        # column norm-key -> literal value
    else_zero: bool


def compute_pivot_aggregates(agg_specs: list[ast.FuncCall], frame: Frame,
                             grouping: Grouping, group_frame: Frame,
                             stats: Optional[StatsCollector],
                             cache: Optional[EncodingCache] = None,
                             parallel_degree: int = 1,
                             on_parallel=None,
                             process_agg=None) -> set[int]:
    """Compute every pivot-family aggregate, binding ``__aggI`` columns
    into ``group_frame``.  Returns the set of handled spec indexes.

    ``parallel_degree`` > 1 partitions the family's cell factorization
    and aggregation over the operator pool; ``on_parallel`` (if given)
    is called with the degree actually used, so the executor's
    parallel-degree observation covers pivot families too.
    ``process_agg`` is the multiprocess backend's batch hook --
    ``(items, group_ids, n_groups) -> {key: ColumnData}`` -- used for
    the per-cell aggregation instead of thread partitioning when the
    executor runs with ``parallel_backend="process"``.
    """
    families = _detect_families(agg_specs, frame)
    handled: set[int] = set()
    for (column_keys, _result_norm), (terms, columns, result_expr) \
            in families.items():
        if len(terms) < 2:
            continue  # linear evaluation is fine for a single term
        cancel.checkpoint("pivot")
        faults.fire("pivot")
        _compute_family(terms, list(column_keys), columns, result_expr,
                        frame, grouping, group_frame, stats, cache,
                        parallel_degree=parallel_degree,
                        on_parallel=on_parallel,
                        process_agg=process_agg)
        handled.update(t.index for t in terms)
    return handled


# ----------------------------------------------------------------------
def _detect_families(agg_specs: list[ast.FuncCall], frame: Frame):
    """Group pivot-pattern aggregates by (pivot columns, THEN expr)."""
    from repro.engine.executor import _normalize

    families: dict[tuple, tuple[list[_PivotTerm],
                                dict[Any, ast.ColumnRef], ast.Expr]] = {}
    for index, spec in enumerate(agg_specs):
        parsed = _parse_term(index, spec, frame)
        if parsed is None:
            continue
        term, columns, result_expr = parsed
        if term.else_zero and term.func != "sum":
            continue  # ELSE 0 only preserves semantics for sum()
        column_keys = tuple(sorted(term.literals, key=repr))
        key = (column_keys, _normalize(result_expr, frame))
        if key in families:
            families[key][0].append(term)
        else:
            families[key] = ([term], columns, result_expr)
    return families


def _parse_term(index: int, spec: ast.FuncCall, frame: Frame
                ) -> Optional[tuple[_PivotTerm,
                                    dict[Any, ast.ColumnRef], ast.Expr]]:
    from repro.engine.executor import _normalize

    if spec.name not in ("sum", "count", "min", "max", "avg"):
        return None
    if spec.distinct or spec.over is not None or len(spec.args) != 1:
        return None
    case = spec.args[0]
    if not isinstance(case, ast.CaseWhen) or len(case.whens) != 1:
        return None
    else_zero = False
    if case.else_ is not None:
        if isinstance(case.else_, ast.Literal) and case.else_.value == 0:
            else_zero = True
        elif isinstance(case.else_, ast.Literal) \
                and case.else_.value is None:
            else_zero = False
        else:
            return None

    condition, result_expr = case.whens[0]
    literals: dict[Any, Any] = {}
    columns: dict[Any, ast.ColumnRef] = {}
    for conjunct in _split_and(condition):
        pair = _column_equals_literal(conjunct)
        if pair is None:
            return None
        ref, value = pair
        try:
            key = _normalize(ref, frame)
        except Exception:
            return None
        if key in literals:
            return None
        literals[key] = value
        columns[key] = ref
    if not literals:
        return None
    return (_PivotTerm(index, spec.name, literals, else_zero),
            columns, result_expr)


def _split_and(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _split_and(expr.left) + _split_and(expr.right)
    return [expr]


def _column_equals_literal(expr: ast.Expr
                           ) -> Optional[tuple[ast.ColumnRef, Any]]:
    if not (isinstance(expr, ast.BinaryOp) and expr.op == "="):
        return None
    left, right = expr.left, expr.right
    if isinstance(left, ast.ColumnRef) and isinstance(right, ast.Literal):
        return left, right.value
    if isinstance(right, ast.ColumnRef) and isinstance(left, ast.Literal):
        return right, left.value
    return None


# ----------------------------------------------------------------------
def _compute_family(terms: list[_PivotTerm], column_keys: list,
                    columns: dict[Any, ast.ColumnRef],
                    result_expr: ast.Expr, frame: Frame,
                    grouping: Grouping, group_frame: Frame,
                    stats: Optional[StatsCollector],
                    cache: Optional[EncodingCache] = None,
                    parallel_degree: int = 1,
                    on_parallel=None,
                    process_agg=None) -> None:
    n_rows = frame.n_rows
    if stats is not None:
        # One hash probe per input row for the whole family.
        stats.add(case_evaluations=n_rows)

    pivot_columns = [evaluate(columns[k], frame, None)
                     for k in column_keys]
    group_id_column = ColumnData(
        SQLType.INTEGER, grouping.group_ids.astype(np.int64),
        np.zeros(n_rows, dtype=bool))
    # The synthetic group-id column carries no cache token, but the
    # pivot columns themselves are usually base-table references whose
    # encodings the cache serves.
    cell_columns = [group_id_column] + pivot_columns
    pcombined = None
    if parallel_degree > 1:
        pcombined = groupby_mod.factorize_partitioned(
            cell_columns, n_rows, cache, parallel_degree)
    if pcombined is not None:
        combined = pcombined.grouping
        if on_parallel is not None:
            on_parallel(pcombined.degree)
    else:
        combined = factorize(cell_columns, n_rows, cache)

    arg = evaluate(result_expr, frame, None)
    if arg.sql_type is None:
        arg = ColumnData.all_null(SQLType.REAL, len(arg))
    # One aggregation pass per distinct function: terms with different
    # functions share the factorization (the O(1) dispatch) but must
    # not share cell values.
    if process_agg is not None:
        funcs = sorted({t.func for t in terms})
        cells_by_func = process_agg(
            [(func, func, arg, False) for func in funcs],
            combined.group_ids, combined.n_groups)
    elif pcombined is not None:
        cells_by_func = {
            func: agg_mod.compute_aggregate_partitioned(
                func, arg, False, pcombined)
            for func in {t.func for t in terms}}
    else:
        cells_by_func = {
            func: agg_mod.compute_aggregate(func, arg, False,
                                            combined.group_ids,
                                            combined.n_groups)
            for func in {t.func for t in terms}}

    firsts = _first_positions(combined.group_ids, combined.n_groups)
    cell_group = grouping.group_ids[firsts]
    cell_pivot = [col.take(firsts) for col in pivot_columns]

    for term in terms:
        cell_values = cells_by_func[term.func]
        out = ColumnData.all_null(cell_values.sql_type, grouping.n_groups)
        mask = np.ones(combined.n_groups, dtype=bool)
        for key, cell_col in zip(column_keys, cell_pivot):
            literal = term.literals[key]
            if literal is None:
                mask &= cell_col.nulls
            else:
                mask &= ~cell_col.nulls
                mask &= _equals_scalar(cell_col, literal)
        hit = np.nonzero(mask)[0]
        out.values[cell_group[hit]] = cell_values.values[hit]
        out.nulls[cell_group[hit]] = cell_values.nulls[hit]
        if term.else_zero or term.func == "count":
            # count() never returns NULL, and ELSE 0 makes sums of
            # missing cells 0: backfill the untouched groups.
            out.values[out.nulls] = 0
            out.nulls[:] = False
        group_frame.add_column(f"__agg{term.index}", out)


def _equals_scalar(column: ColumnData, literal: Any) -> np.ndarray:
    values = column.values
    if column.sql_type == SQLType.VARCHAR:
        values = np.where(column.nulls, "", values)
        return np.asarray(values == str(literal), dtype=bool) \
            if isinstance(literal, str) else np.zeros(len(values),
                                                      dtype=bool)
    if isinstance(literal, str):
        return np.zeros(len(values), dtype=bool)
    return np.asarray(values == literal, dtype=bool)


def _first_positions(group_ids: np.ndarray, n_groups: int) -> np.ndarray:
    if n_groups == 0 or len(group_ids) == 0:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(group_ids, kind="stable")
    sorted_ids = group_ids[order]
    starts = np.ones(len(order), dtype=bool)
    starts[1:] = sorted_ids[1:] != sorted_ids[:-1]
    return order[starts]