"""Unit tests for the experiment harness, workloads and reporting."""

import pytest

from repro import Database
from repro.bench.harness import (run_hagg_experiment,
                                 run_hpct_experiment,
                                 run_olap_experiment,
                                 run_vpct_experiment)
from repro.bench.report import format_markdown, format_table
from repro.bench.workloads import (DMKD_QUERIES, SIGMOD_QUERIES,
                                   QuerySpec)
from repro.core import HorizontalAggStrategy, HorizontalStrategy
from repro.datagen import load_transaction_line


@pytest.fixture(scope="module")
def bench_db():
    db = Database()
    load_transaction_line(db, 2_000)
    return db


SPEC = QuerySpec("tl region | dow", "transactionline", "salesamt",
                 totals=("regionid",), by=("dayofweekno",))


class TestWorkloadSpecs:
    def test_sigmod_has_eight_rows(self):
        assert len(SIGMOD_QUERIES) == 8

    def test_dmkd_has_eleven_shapes(self):
        assert len(DMKD_QUERIES) == 11

    def test_vpct_sql_shape(self):
        sql = SPEC.vpct_sql()
        assert "Vpct(salesamt BY dayofweekno)" in sql
        assert "GROUP BY regionid, dayofweekno" in sql

    def test_vpct_sql_global(self):
        spec = QuerySpec("x", "t", "m", totals=(), by=("d",))
        assert "Vpct(m)" in spec.vpct_sql()
        assert "GROUP BY d" in spec.vpct_sql()

    def test_hpct_sql_shape(self):
        sql = SPEC.hpct_sql()
        assert "Hpct(salesamt BY dayofweekno)" in sql
        assert "GROUP BY regionid" in sql

    def test_hagg_sql_no_group(self):
        spec = QuerySpec("x", "t", "m", totals=(), by=("d",))
        assert "GROUP BY" not in spec.hagg_sql()

    def test_every_spec_is_runnable(self, bench_db):
        result = run_hagg_experiment(bench_db, SPEC,
                                     HorizontalStrategy(source="F"))
        assert result.result_rows == 4


class TestHarness:
    def test_vpct_experiment_fields(self, bench_db):
        result = run_vpct_experiment(bench_db, SPEC)
        assert result.seconds > 0
        assert result.logical_io > 0
        assert result.statements > 0
        assert result.result_rows == 28
        assert result.strategy.startswith("vertical")

    def test_hpct_experiment(self, bench_db):
        result = run_hpct_experiment(bench_db, SPEC, name="hp")
        assert result.strategy == "hp"
        assert result.result_columns == 8  # key + 7 days

    def test_spj_vs_case_logical_io_order(self, bench_db):
        spj = run_hagg_experiment(bench_db, SPEC,
                                  HorizontalAggStrategy(source="F"))
        case = run_hagg_experiment(bench_db, SPEC,
                                   HorizontalStrategy(source="F"))
        # The SPJ strategy scans F once per BY combination.
        assert spj.logical_io > 3 * case.logical_io

    def test_olap_experiment(self, bench_db):
        result = run_olap_experiment(bench_db, SPEC)
        assert result.result_rows == 28
        assert result.strategy == "OLAP extensions"

    def test_update_strategy_has_more_logical_io(self, bench_db):
        from repro.core import VerticalStrategy
        insert = run_vpct_experiment(bench_db, SPEC,
                                     VerticalStrategy())
        update = run_vpct_experiment(bench_db, SPEC,
                                     VerticalStrategy(use_update=True))
        assert update.logical_io > insert.logical_io


class TestReport:
    @pytest.fixture
    def results(self, bench_db):
        return [
            run_vpct_experiment(bench_db, SPEC, name="best"),
            run_hpct_experiment(bench_db, SPEC, name="hpct"),
        ]

    def test_format_table(self, results):
        text = format_table("My table", results)
        assert "My table" in text
        assert "best" in text and "hpct" in text
        assert SPEC.label in text

    def test_format_markdown(self, results):
        text = format_markdown("My table", results)
        assert text.startswith("### My table")
        assert text.count("|") > 6

    def test_metric_selection(self, results):
        text = format_table("io", results, value="logical_io")
        assert "." not in text.splitlines()[-1].split()[-1]

    def test_missing_cells_dashed(self, bench_db, results):
        other = QuerySpec("other", "transactionline", "salesamt",
                          totals=(), by=("regionid",))
        results.append(run_vpct_experiment(bench_db, other,
                                           name="best"))
        text = format_table("t", results)
        assert "-" in text.splitlines()[-1]


class TestOverloadSuite:
    def test_run_overload_benchmark_smoke(self):
        from repro.bench.overload import run_overload_benchmark
        report = run_overload_benchmark(sales_n=2_000, offered=12,
                                        repeats=1)
        ramp = report["ramp"]
        # every offered query is accounted for at admission
        for leg in (ramp["shed_on"], ramp["shed_off"]):
            assert leg["offered"] == leg["accepted"] + leg["shed"] \
                + leg["queue_full"]
            assert leg["accepted"] == leg["completed"] \
                + leg["deadline_cancelled"]
        assert ramp["shed_off"]["shed"] == 0
        summary = report["summary"]
        assert summary["goodput_shed_on_qps"] > 0
        assert isinstance(summary["accepted_p99_under_2x_unloaded"],
                          bool)
        assert isinstance(summary["deadline_overhead_within_5pct"],
                          bool)


class TestObsSuite:
    def test_run_obs_benchmark_smoke(self):
        from repro.bench.obs import run_obs_benchmark
        report = run_obs_benchmark(sales_n=2_000, repeats=1)
        summary = report["summary"]
        assert report["trace_ops_per_run"] > 0
        assert summary["tracing_off_seconds"] > 0
        assert summary["tracing_on_seconds"] > 0
        assert isinstance(
            summary["tracing_off_overhead_under_5pct"], bool)
        # the estimate is a fraction derived from positive quantities
        assert summary["estimated_tracing_off_overhead_fraction"] >= 0
