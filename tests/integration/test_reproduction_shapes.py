"""The qualitative findings of both evaluation sections, asserted as
tests (so the reproduction's claims are enforced, not just benchmarked).

Wall-clock comparisons would be flaky at test scale; the assertions use
the engine's logical cost counters, which are what carry the papers'
factors in this reproduction (see EXPERIMENTS.md).
"""

import pytest

from repro import Database
from repro.bench.harness import (run_hagg_experiment,
                                 run_hpct_experiment,
                                 run_olap_experiment,
                                 run_vpct_experiment)
from repro.bench.workloads import QuerySpec
from repro.core import (HorizontalAggStrategy, HorizontalStrategy,
                        VerticalStrategy)
from repro.datagen import load_sales


@pytest.fixture(scope="module")
def db():
    database = Database()
    load_sales(database, 20_000)
    return database


#: A |FV| ~ |F| query (the paper's blow-up row, scaled down).
WIDE = QuerySpec("sales dept,store | dweek,monthNo", "sales",
                 "salesamt", totals=("dweek", "monthno"),
                 by=("dept", "store"))

#: A |Fk| << |F| query.
NARROW = QuerySpec("sales monthNo | dweek", "sales", "salesamt",
                   totals=("dweek",), by=("monthno",))


class TestTable4Findings:
    def test_update_costs_more_where_fv_is_large(self, db):
        """'Doing insertion instead of update ... reduces time ... when
        FV has comparable size to F.'"""
        insert = run_vpct_experiment(db, WIDE, VerticalStrategy())
        update = run_vpct_experiment(db, WIDE,
                                     VerticalStrategy(use_update=True))
        assert update.logical_io > insert.logical_io

    def test_update_penalty_grows_with_fv_size(self, db):
        narrow_insert = run_vpct_experiment(db, NARROW,
                                            VerticalStrategy())
        narrow_update = run_vpct_experiment(
            db, NARROW, VerticalStrategy(use_update=True))
        wide_insert = run_vpct_experiment(db, WIDE, VerticalStrategy())
        wide_update = run_vpct_experiment(
            db, WIDE, VerticalStrategy(use_update=True))
        narrow_ratio = narrow_update.logical_io / \
            narrow_insert.logical_io
        wide_ratio = wide_update.logical_io / wide_insert.logical_io
        assert wide_ratio > narrow_ratio

    def test_partial_aggregate_saves_a_scan(self, db):
        """'Computing Fj from Fk saves significant time, particularly
        when |Fk| << |F|.'"""
        with_partial = run_vpct_experiment(db, NARROW,
                                           VerticalStrategy())
        without = run_vpct_experiment(
            db, NARROW, VerticalStrategy(fj_from_fk=False))
        assert without.logical_io >= \
            with_partial.logical_io + db.table("sales").n_rows * 0.9

    def test_index_use_is_marginal(self, db):
        """'Having the same index ... marginally improves join
        performance': same logical I/O, index probes recorded."""
        indexed = run_vpct_experiment(db, NARROW, VerticalStrategy())
        bare = run_vpct_experiment(
            db, NARROW, VerticalStrategy(create_indexes=False))
        assert indexed.logical_io == bare.logical_io


class TestTable6Findings:
    def test_olap_costs_more_than_vpct_everywhere(self, db):
        """'In all cases our proposed aggregations run in less time
        than OLAP extensions.'  The factor is largest when Fk is much
        smaller than F (the window form always spools the detail)."""
        for spec, factor in ((NARROW, 2.0), (WIDE, 1.0)):
            vpct = run_vpct_experiment(db, spec, VerticalStrategy())
            olap = run_olap_experiment(db, spec)
            assert olap.logical_io > factor * vpct.logical_io


class TestDMKDTable3Findings:
    SPEC = QuerySpec("sales dept", "sales", "salesamt",
                     totals=(), by=("dept",))

    def test_spj_an_order_of_magnitude_above_case(self, db):
        spj = run_hagg_experiment(db, self.SPEC,
                                  HorizontalAggStrategy(source="F"))
        case = run_hagg_experiment(db, self.SPEC,
                                   HorizontalStrategy(source="F"))
        assert spj.logical_io > 10 * case.logical_io

    def test_spj_fv_beats_spj_f(self, db):
        direct = run_hagg_experiment(db, self.SPEC,
                                     HorizontalAggStrategy(source="F"))
        indirect = run_hagg_experiment(
            db, self.SPEC, HorizontalAggStrategy(source="FV"))
        assert indirect.logical_io < direct.logical_io

    def test_case_linear_charges_n_comparisons_per_row(self, db):
        result = run_hpct_experiment(db, self.SPEC,
                                     HorizontalStrategy(source="F"))
        n = db.table("sales").n_rows
        n_columns = 100  # dept cardinality
        assert result.case_evaluations >= n * n_columns

    def test_hash_dispatch_removes_the_n_factor(self):
        linear_db = Database(case_dispatch="linear")
        hashed_db = Database(case_dispatch="hash")
        load_sales(linear_db, 5_000)
        load_sales(hashed_db, 5_000)
        linear = run_hpct_experiment(linear_db, self.SPEC,
                                     HorizontalStrategy(source="F"))
        hashed = run_hpct_experiment(hashed_db, self.SPEC,
                                     HorizontalStrategy(source="F"))
        assert hashed.case_evaluations * 10 < linear.case_evaluations
        assert hashed.result_rows == linear.result_rows
