"""Unit tests for DDL/DML execution: CREATE/DROP/INSERT/UPDATE/DELETE,
including the join-update form the paper's UPDATE strategy uses."""

import pytest

from repro import Database
from repro.errors import (CatalogError, ExecutionError, PlanningError,
                          TypeMismatchError)


@pytest.fixture
def db():
    return Database(keep_history=True)


class TestCreateDrop:
    def test_create_table(self, db):
        db.execute("CREATE TABLE t (a INT, b VARCHAR, "
                   "PRIMARY KEY (a))")
        assert db.table("t").schema.primary_key == ("a",)

    def test_trailing_primary_key_teradata_style(self, db):
        db.execute("CREATE TABLE t (a INT, b REAL) PRIMARY KEY (a)")
        assert db.table("t").schema.primary_key == ("a",)

    def test_if_not_exists(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("CREATE TABLE IF NOT EXISTS t (a INT)")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t (a INT)")

    def test_create_table_as(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        count = db.execute("CREATE TABLE u AS SELECT a * 10 AS a10 "
                           "FROM t")
        assert count == 2
        assert db.query("SELECT a10 FROM u ORDER BY 1") == \
            [(10,), (20,)]

    def test_drop(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("DROP TABLE t")
        assert not db.has_table("t")
        db.execute("DROP TABLE IF EXISTS t")

    def test_create_index_statement(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("CREATE INDEX ix ON t (a)")
        assert db.catalog.find_index("t", ["a"]) is not None
        db.execute("DROP INDEX ix")
        assert db.catalog.find_index("t", ["a"]) is None


class TestInsert:
    def test_insert_values_multi_row(self, db):
        db.execute("CREATE TABLE t (a INT, b VARCHAR)")
        count = db.execute(
            "INSERT INTO t VALUES (1, 'x'), (2, NULL)")
        assert count == 2
        assert db.query("SELECT * FROM t ORDER BY a") == \
            [(1, "x"), (2, None)]

    def test_insert_coerces_int_to_real(self, db):
        db.execute("CREATE TABLE t (a REAL)")
        db.execute("INSERT INTO t VALUES (1)")
        assert db.query("SELECT a FROM t") == [(1.0,)]

    def test_insert_wrong_arity_raises(self, db):
        db.execute("CREATE TABLE t (a INT, b INT)")
        with pytest.raises(PlanningError):
            db.execute("INSERT INTO t VALUES (1)")

    def test_insert_select(self, db):
        db.execute("CREATE TABLE src (a INT)")
        db.execute("INSERT INTO src VALUES (1), (2), (3)")
        db.execute("CREATE TABLE dst (a INT, doubled INT)")
        count = db.execute(
            "INSERT INTO dst SELECT a, a * 2 FROM src WHERE a > 1")
        assert count == 2
        assert db.query("SELECT * FROM dst ORDER BY a") == \
            [(2, 4), (3, 6)]

    def test_insert_select_arity_mismatch(self, db):
        db.execute("CREATE TABLE src (a INT)")
        db.execute("CREATE TABLE dst (a INT, b INT)")
        with pytest.raises(PlanningError):
            db.execute("INSERT INTO dst SELECT a FROM src")

    def test_insert_select_incompatible_type(self, db):
        db.execute("CREATE TABLE src (a VARCHAR)")
        db.execute("INSERT INTO src VALUES ('x')")
        db.execute("CREATE TABLE dst (a INT)")
        with pytest.raises(TypeMismatchError):
            db.execute("INSERT INTO dst SELECT a FROM src")

    def test_insert_maintains_indexes(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("CREATE INDEX ix ON t (a)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        assert db.catalog.find_index("t", ["a"]).built_rows == 2


class TestUpdate:
    def test_plain_update(self, db):
        db.execute("CREATE TABLE t (a INT, b REAL)")
        db.execute("INSERT INTO t VALUES (1, 10.0), (2, 20.0)")
        count = db.execute("UPDATE t SET b = b * 2 WHERE a = 1")
        assert count == 1
        assert db.query("SELECT b FROM t ORDER BY a") == \
            [(20.0,), (20.0,)]

    def test_update_all_rows(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        assert db.execute("UPDATE t SET a = 0") == 2

    def test_join_update(self, db):
        db.execute("CREATE TABLE fk (d INT, a REAL)")
        db.execute("INSERT INTO fk VALUES (1, 10.0), (1, 30.0), "
                   "(2, 5.0)")
        db.execute("CREATE TABLE fj (d INT, total REAL)")
        db.execute("INSERT INTO fj VALUES (1, 40.0), (2, 5.0)")
        count = db.execute(
            "UPDATE fk SET a = CASE WHEN fj.total <> 0 THEN "
            "fk.a / fj.total ELSE NULL END FROM fj "
            "WHERE fk.d = fj.d")
        assert count == 3
        assert db.query("SELECT a FROM fk ORDER BY a") == \
            [(0.25,), (0.75,), (1.0,)]

    def test_join_update_unmatched_rows_keep_value(self, db):
        db.execute("CREATE TABLE fk (d INT, a REAL)")
        db.execute("INSERT INTO fk VALUES (1, 10.0), (9, 99.0)")
        db.execute("CREATE TABLE fj (d INT, total REAL)")
        db.execute("INSERT INTO fj VALUES (1, 10.0)")
        count = db.execute("UPDATE fk SET a = fk.a / fj.total "
                           "FROM fj WHERE fk.d = fj.d")
        assert count == 1
        assert db.query("SELECT a FROM fk ORDER BY d") == \
            [(1.0,), (99.0,)]

    def test_join_update_multiple_matches_raises(self, db):
        db.execute("CREATE TABLE fk (d INT, a REAL)")
        db.execute("INSERT INTO fk VALUES (1, 10.0)")
        db.execute("CREATE TABLE fj (d INT, total REAL)")
        db.execute("INSERT INTO fj VALUES (1, 1.0), (1, 2.0)")
        with pytest.raises(ExecutionError):
            db.execute("UPDATE fk SET a = fj.total FROM fj "
                       "WHERE fk.d = fj.d")

    def test_join_update_requires_equality_keys(self, db):
        db.execute("CREATE TABLE fk (d INT)")
        db.execute("CREATE TABLE fj (d INT)")
        with pytest.raises(PlanningError):
            db.execute("UPDATE fk SET d = fj.d FROM fj "
                       "WHERE fk.d > fj.d")

    def test_update_charges_rows_updated(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        before = db.stats.rows_updated
        db.execute("UPDATE t SET a = a WHERE a > 1")
        assert db.stats.rows_updated - before == 2


class TestDelete:
    def test_delete_where(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        assert db.execute("DELETE FROM t WHERE a > 1") == 2
        assert db.query("SELECT a FROM t") == [(1,)]

    def test_delete_all(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        assert db.execute("DELETE FROM t") == 2
        assert db.query("SELECT a FROM t") == []
