"""Edge-case coverage for the executor: empty inputs, degenerate
shapes, and interactions between features."""

import pytest

from repro import Database


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (a INT, b VARCHAR, c REAL)")
    return database


class TestEmptyTables:
    def test_scan(self, db):
        assert db.query("SELECT * FROM t") == []

    def test_filter(self, db):
        assert db.query("SELECT a FROM t WHERE a > 0") == []

    def test_join_both_empty(self, db):
        db.execute("CREATE TABLE u (a INT)")
        assert db.query("SELECT t.a FROM t, u WHERE t.a = u.a") == []

    def test_left_join_empty_right(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x', 1.0)")
        db.execute("CREATE TABLE u (a INT, d INT)")
        rows = db.query("SELECT t.a, u.d FROM t LEFT OUTER JOIN u "
                        "ON t.a = u.a")
        assert rows == [(1, None)]

    def test_cartesian_with_empty(self, db):
        db.execute("CREATE TABLE u (x INT)")
        db.execute("INSERT INTO u VALUES (1)")
        assert db.query("SELECT t.a, u.x FROM t, u") == []

    def test_order_limit_distinct(self, db):
        assert db.query("SELECT DISTINCT a FROM t ORDER BY a "
                        "LIMIT 3") == []

    def test_window_on_empty(self, db):
        assert db.query("SELECT a, sum(c) OVER (PARTITION BY a) "
                        "FROM t") == []

    def test_update_delete_on_empty(self, db):
        assert db.execute("UPDATE t SET a = 1") == 0
        assert db.execute("DELETE FROM t") == 0

    def test_insert_select_empty(self, db):
        db.execute("CREATE TABLE u (a INT, b VARCHAR, c REAL)")
        assert db.execute("INSERT INTO u SELECT * FROM t") == 0


class TestDegenerateShapes:
    def test_group_by_all_columns(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x', 2.0), (1, 'x', 2.0)")
        rows = db.query("SELECT a, b, c, count(*) FROM t "
                        "GROUP BY a, b, c")
        assert rows == [(1, "x", 2.0, 2)]

    def test_single_row_table(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x', 2.0)")
        assert db.query("SELECT avg(c), var(c) FROM t") == \
            [(2.0, None)]

    def test_all_null_column(self, db):
        db.execute("INSERT INTO t VALUES (1, NULL, NULL), "
                   "(2, NULL, NULL)")
        rows = db.query("SELECT count(b), sum(c), min(b) FROM t")
        assert rows == [(0, None, None)]

    def test_group_key_is_null(self, db):
        db.execute("INSERT INTO t VALUES (NULL, 'x', 1.0), "
                   "(NULL, 'y', 2.0), (1, 'z', 4.0)")
        rows = db.query("SELECT a, sum(c) FROM t GROUP BY a "
                        "ORDER BY a")
        assert (None, 3.0) in rows and (1, 4.0) in rows

    def test_limit_zero(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x', 1.0)")
        assert db.query("SELECT a FROM t LIMIT 0") == []

    def test_limit_beyond_rows(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x', 1.0)")
        assert len(db.query("SELECT a FROM t LIMIT 99")) == 1

    def test_self_cartesian(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x', 1.0), "
                   "(2, 'y', 2.0)")
        rows = db.query("SELECT x.a, y.a FROM t x, t y")
        assert len(rows) == 4


class TestFeatureInteractions:
    def test_view_over_view(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x', 10.0), "
                   "(2, 'y', 30.0)")
        db.execute("CREATE VIEW v1 AS SELECT a, c * 2 AS c2 FROM t")
        db.execute("CREATE VIEW v2 AS SELECT sum(c2) AS total FROM v1")
        assert db.query("SELECT total FROM v2") == [(80.0,)]

    def test_window_inside_case(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x', 10.0), "
                   "(1, 'y', 30.0)")
        rows = db.query(
            "SELECT b, CASE WHEN c > 0 THEN c / sum(c) "
            "OVER (PARTITION BY a) ELSE NULL END FROM t ORDER BY b")
        assert rows == [("x", 0.25), ("y", 0.75)]

    def test_distinct_after_aggregate(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x', 5.0), "
                   "(2, 'y', 5.0)")
        rows = db.query("SELECT DISTINCT sum(c) FROM t GROUP BY a")
        assert rows == [(5.0,)]

    def test_having_on_expression(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x', 5.0), "
                   "(1, 'y', 5.0), (2, 'z', 1.0)")
        rows = db.query("SELECT a FROM t GROUP BY a "
                        "HAVING sum(c) / count(*) > 2")
        assert rows == [(1,)]

    def test_update_then_query_consistency(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x', 1.0)")
        db.execute("CREATE INDEX ix ON t (a)")
        db.execute("UPDATE t SET a = 9")
        db.execute("CREATE TABLE u (a INT)")
        db.execute("INSERT INTO u VALUES (9)")
        rows = db.query("SELECT t.c FROM u, t WHERE u.a = t.a")
        assert rows == [(1.0,)]  # index rebuilt after update

    def test_in_list_with_strings(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x', 1.0), "
                   "(2, 'y', 2.0), (3, NULL, 3.0)")
        rows = db.query("SELECT a FROM t WHERE b IN ('x', 'z') "
                        "ORDER BY a")
        assert rows == [(1,)]

    def test_between_on_real(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x', 0.5), "
                   "(2, 'y', 1.5), (3, 'z', 2.5)")
        rows = db.query("SELECT a FROM t WHERE c BETWEEN 1.0 AND 2.0")
        assert rows == [(2,)]
