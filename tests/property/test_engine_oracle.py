"""Property-based tests: the engine against a plain-Python oracle for
grouping, aggregation and joins on random data."""

import math
from collections import defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database

MEASURES = st.one_of(st.none(), st.integers(min_value=-100,
                                            max_value=100))
KEYS = st.integers(min_value=0, max_value=4)

ROWS = st.lists(st.tuples(KEYS, KEYS, MEASURES), min_size=0,
                max_size=40)


def load(rows):
    db = Database()
    db.execute("CREATE TABLE t (g INT, h INT, m INT)")
    if rows:
        values = ", ".join(
            f"({g}, {h}, {'NULL' if m is None else m})"
            for g, h, m in rows)
        db.execute(f"INSERT INTO t VALUES {values}")
    return db


@given(ROWS)
@settings(max_examples=80, deadline=None)
def test_group_by_sum_count_matches_oracle(rows):
    db = load(rows)
    actual = {r[0]: (r[1], r[2], r[3]) for r in db.query(
        "SELECT g, sum(m), count(m), count(*) FROM t GROUP BY g")}

    expected = defaultdict(lambda: [None, 0, 0])
    for g, _, m in rows:
        bucket = expected[g]
        bucket[2] += 1
        if m is not None:
            bucket[0] = (bucket[0] or 0) + m
            bucket[1] += 1
    assert set(actual) == set(expected)
    for g, (total, non_null, count) in expected.items():
        assert actual[g] == (total, non_null, count)


@given(ROWS)
@settings(max_examples=80, deadline=None)
def test_min_max_avg_match_oracle(rows):
    db = load(rows)
    actual = {r[0]: r[1:] for r in db.query(
        "SELECT g, min(m), max(m), avg(m) FROM t GROUP BY g")}
    buckets = defaultdict(list)
    for g, _, m in rows:
        buckets[g]  # ensure the group exists even if all-NULL
        if m is not None:
            buckets[g].append(m)
    for g, values in buckets.items():
        low, high, mean = actual[g]
        if values:
            assert low == min(values)
            assert high == max(values)
            assert math.isclose(mean, sum(values) / len(values))
        else:
            assert low is None and high is None and mean is None


@given(ROWS)
@settings(max_examples=60, deadline=None)
def test_where_filter_matches_oracle(rows):
    db = load(rows)
    actual = db.query("SELECT count(*) FROM t WHERE m > 10")[0][0]
    expected = sum(1 for _, _, m in rows if m is not None and m > 10)
    assert actual == expected


@given(ROWS)
@settings(max_examples=60, deadline=None)
def test_distinct_matches_oracle(rows):
    db = load(rows)
    actual = db.query("SELECT DISTINCT g, h FROM t")
    assert sorted(actual) == sorted({(g, h) for g, h, _ in rows})


@given(ROWS, ROWS)
@settings(max_examples=60, deadline=None)
def test_inner_join_matches_oracle(left_rows, right_rows):
    db = Database()
    db.execute("CREATE TABLE l (g INT, h INT, m INT)")
    db.execute("CREATE TABLE r (g INT, h INT, m INT)")
    for name, rows in (("l", left_rows), ("r", right_rows)):
        if rows:
            values = ", ".join(
                f"({g}, {h}, {'NULL' if m is None else m})"
                for g, h, m in rows)
            db.execute(f"INSERT INTO {name} VALUES {values}")
    def none_safe(row):
        return tuple((value is None, value) for value in row)

    actual = sorted(db.query(
        "SELECT l.g, l.m, r.m FROM l, r WHERE l.g = r.g"),
        key=none_safe)
    expected = sorted(
        ((lg, lm, rm)
         for lg, _, lm in left_rows
         for rg, _, rm in right_rows if lg == rg), key=none_safe)
    assert actual == expected


@given(ROWS)
@settings(max_examples=40, deadline=None)
def test_window_sum_equals_group_sum_broadcast(rows):
    db = load(rows)
    windowed = db.query(
        "SELECT g, sum(m) OVER (PARTITION BY g) FROM t")
    grouped = dict(db.query("SELECT g, sum(m) FROM t GROUP BY g"))
    for g, total in windowed:
        assert total == grouped[g]


@given(ROWS)
@settings(max_examples=40, deadline=None)
def test_case_pivot_equals_filtered_sums(rows):
    db = load(rows)
    pivot = db.query(
        "SELECT g, sum(CASE WHEN h = 0 THEN m ELSE null END), "
        "sum(CASE WHEN h = 1 THEN m ELSE null END) FROM t GROUP BY g")
    for g, h0, h1 in pivot:
        for h, value in ((0, h0), (1, h1)):
            direct = db.query(
                f"SELECT sum(m) FROM t WHERE g = {g} AND h = {h}")
            expected = direct[0][0] if db.query(
                f"SELECT count(*) FROM t WHERE g = {g} AND h = {h}"
            )[0][0] else None
            assert value == expected
