"""Cooperative cancellation: tokens, deadlines and safepoints.

A :class:`CancelToken` carries "stop this query" state from whoever
owns the query (a client, a deadline, the overloaded service) to the
operators executing it.  Cancellation is *cooperative*, exactly like
the resource governor's budget checks: operators call
:func:`checkpoint` at their boundaries (the enumerated
:data:`SAFEPOINTS`), so a single vectorized numpy call is never
interrupted but every statement crosses many safepoints.  A safepoint
that observes a cancelled token raises
:class:`~repro.errors.QueryCancelledError`, which unwinds through the
existing savepoint/finally discipline -- catalog rollback, WAL
restore, shared-memory unlink, buffer-pool unpin, temp-table drop --
so a cancelled query leaves nothing behind.

Determinism: the token reads time through an injected
:class:`~repro.obs.clock.Clock`, so deadline tests run under
:class:`~repro.obs.clock.ManualClock`.  Each token also counts its
safepoint hits (mirroring :class:`~repro.engine.faults.FaultInjector`)
and can be armed to cancel itself at the N-th hit of a named
safepoint (``cancel_at``) -- that is the mechanism the fuzz harness's
``--cancel-sweep`` uses to fire a cancellation at every safepoint a
query crosses (:mod:`repro.fuzz.cancelsweep`).

Threading model: tokens are activated into a thread-local ambient slot
(:func:`activate`), mirroring :mod:`repro.engine.faults` and the
tracer.  The module-level :func:`checkpoint`/:func:`poll` hooks are
no-ops when no token is active, so ungoverned code paths (unit tests,
recovery, cleanup) pay one ``getattr`` per safepoint.  A token raises
**once**: after it has fired, later safepoints on the unwind path
(catalog rollback re-reading pages, cleanup DROPs) pass through
untouched, which is what keeps cancellation leak-free.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import QueryCancelledError
from repro.obs.clock import Clock, MonotonicClock
from repro.obs.metrics import MetricsRegistry, global_registry

#: Every named safepoint an engine query can cross, in rough dataflow
#: order.  The cancel sweep enumerates these; keep the docs/robustness
#: table in sync when adding one.
SAFEPOINTS = (
    "statement",          # executor entry, once per statement
    "scan",               # per FROM source materialized
    "join-build",         # hash-join build side (engine/join.py)
    "group-by",           # factorize entry (engine/groupby.py)
    "pivot",              # pivot-family pass (engine/pivot.py)
    "morsel",             # per morsel planned (engine/kernels.py)
    "process-dispatch",   # before a shared-memory pool dispatch
    "page-fetch",         # per column page run (storage/engine.py)
    "projection",         # final projection of a SELECT
    "dml",                # INSERT/UPDATE/DELETE entry
    "view-maintenance",   # per measure re-aggregated (views/maintenance)
)

#: Cancellation reasons carried on the error and the metric label.
REASONS = ("client", "deadline", "shed")


class CancelToken:
    """One query's (or script's) cancellation state.

    Args:
        clock: time source for the deadline (default monotonic; tests
            inject :class:`~repro.obs.clock.ManualClock`).
        deadline: absolute instant on ``clock``'s timeline after which
            the token counts as cancelled with reason ``"deadline"``
            (``None`` = no deadline, caller-driven only).
        parent: an enclosing token (e.g. the script's) this one joins;
            the child is cancelled whenever the parent is, and
            :meth:`remaining` reports the tighter of the two budgets --
            that is how remaining time shrinks as a script progresses.
        registry: metrics registry charged with
            ``query_cancelled_total{reason}`` when the token fires
            (default: the process-wide registry).
    """

    def __init__(self, clock: Optional[Clock] = None,
                 deadline: Optional[float] = None,
                 parent: Optional["CancelToken"] = None,
                 registry: Optional[MetricsRegistry] = None):
        self.clock = clock if clock is not None else MonotonicClock()
        self.deadline = deadline
        self.parent = parent
        self.registry = registry
        #: Safepoint hit counts, ``{site: times crossed}`` -- the
        #: cancel sweep's probe reads these to enumerate injection
        #: points, mirroring ``FaultInjector.hits``.
        self.hits: dict[str, int] = {}
        #: Arm the token to cancel itself at the ``index``-th crossing
        #: of ``site``: ``cancel_at = (site, index)``.
        self.cancel_at: Optional[tuple[str, int]] = None
        self._reason: Optional[str] = None
        self._fired = False
        self._lock = threading.Lock()

    @classmethod
    def with_timeout(cls, seconds: float,
                     clock: Optional[Clock] = None,
                     parent: Optional["CancelToken"] = None,
                     registry: Optional[MetricsRegistry] = None
                     ) -> "CancelToken":
        """A token whose deadline is ``seconds`` from now."""
        if seconds <= 0:
            raise ValueError("deadline seconds must be > 0")
        if clock is None:
            clock = parent.clock if parent is not None \
                else MonotonicClock()
        return cls(clock=clock, deadline=clock.now() + seconds,
                   parent=parent, registry=registry)

    # ------------------------------------------------------------------
    def cancel(self, reason: str = "client") -> None:
        """Mark the token cancelled (idempotent; the first reason
        wins).  The query stops at its next safepoint."""
        with self._lock:
            if self._reason is None:
                self._reason = reason

    def reason(self) -> Optional[str]:
        """The current cancellation reason, or ``None`` when live.
        Checks the explicit flag first, then the parent chain, then
        the deadline (one clock read, only when a deadline is set)."""
        if self._reason is not None:
            return self._reason
        if self.parent is not None:
            parent_reason = self.parent.reason()
            if parent_reason is not None:
                return parent_reason
        if self.deadline is not None \
                and self.clock.now() >= self.deadline:
            return "deadline"
        return None

    @property
    def cancelled(self) -> bool:
        return self.reason() is not None

    def remaining(self) -> Optional[float]:
        """Seconds until the effective deadline (the tightest along
        the parent chain), or ``None`` when no deadline applies.  May
        be negative once the deadline has passed."""
        remaining = None
        if self.deadline is not None:
            remaining = self.deadline - self.clock.now()
        if self.parent is not None:
            from_parent = self.parent.remaining()
            if from_parent is not None:
                remaining = from_parent if remaining is None \
                    else min(remaining, from_parent)
        return remaining

    # ------------------------------------------------------------------
    def check(self, safepoint: str) -> None:
        """Cross a named safepoint: count the hit, fire an armed
        ``cancel_at``, and raise if the token is cancelled."""
        index = self.hits.get(safepoint, 0)
        self.hits[safepoint] = index + 1
        if self.cancel_at is not None \
                and self.cancel_at == (safepoint, index):
            self.cancel("client")
        self._raise_if_cancelled(safepoint)

    def poll(self, context: str = "") -> None:
        """Raise if cancelled, without counting a safepoint hit.  Used
        where crossing counts would be timing-dependent (governor
        checkpoints, the process pool's result-drain loop)."""
        self._raise_if_cancelled(context)

    def _raise_if_cancelled(self, where: str) -> None:
        if self._fired:
            # The query is already unwinding; safepoints on the
            # rollback/cleanup path must not re-raise or the unwind
            # itself would leak.
            return
        reason = self.reason()
        if reason is None:
            return
        self._fired = True
        registry = self.registry if self.registry is not None \
            else global_registry()
        registry.counter(
            "query_cancelled_total",
            help="queries cancelled at a safepoint, by reason",
            reason=reason).inc()
        raise QueryCancelledError(
            f"query cancelled ({reason})"
            + (f" at {where}" if where else ""), reason=reason)


# ----------------------------------------------------------------------
# Ambient activation (thread-local, mirroring engine.faults)
# ----------------------------------------------------------------------
_local = threading.local()


def active_token() -> Optional[CancelToken]:
    """The token active on this thread, or ``None``."""
    return getattr(_local, "token", None)


@contextmanager
def activate(token: Optional[CancelToken]
             ) -> Iterator[Optional[CancelToken]]:
    """Install ``token`` as this thread's ambient token for the
    duration (``None`` deactivates, shielding e.g. cleanup work)."""
    previous = getattr(_local, "token", None)
    _local.token = token
    try:
        yield token
    finally:
        _local.token = previous


def checkpoint(site: str) -> None:
    """Cross safepoint ``site`` on the ambient token (no-op without
    one) -- the hook operators call."""
    token = getattr(_local, "token", None)
    if token is not None:
        token.check(site)


def poll(context: str = "") -> None:
    """Non-counting cancellation check on the ambient token (no-op
    without one)."""
    token = getattr(_local, "token", None)
    if token is not None:
        token.poll(context)
