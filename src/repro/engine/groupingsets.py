"""Lattice planning and shared-scan evaluation for CUBE / ROLLUP /
GROUPING SETS.

A grouping-sets query names k grouping sets over d distinct key
expressions (the *union dims*).  Instead of running k separate
group-bys, the executor factorizes the **union** of all dims once and
derives every set's grouping from it at *group level*:

1. the union factorize produces ``group_ids`` (one per row) plus a
   ``key_codes`` matrix with one dense per-dim code per union group;
2. for a set S the union codes are projected onto S's dims and combined
   with the same mixed-radix arithmetic :func:`repro.engine.groupby.
   _factorize_radix` uses, over ``n_union_groups`` entries instead of
   ``n_rows``;
3. ``np.unique`` ranks those combined codes; composing the rank mapping
   with the union's row->group mapping yields S's per-row group ids in
   one O(n_rows) gather.

Because per-column codes come from the same :func:`encode_column`
encodings a standalone ``GROUP BY`` of S's dims would build, and both
paths rank the same combined codes with ``np.unique``, the derived
group ids (and key codes) are **bit-identical** to a direct
factorization -- which is what makes the shared scan safe to substitute
for N separate group-bys (see docs/cube.md for the full argument).

Coarser sets *fold* exact aggregates (count, count(*), INTEGER sum,
min, max) from the partials of their fold source -- the requested
proper superset with the fewest extra dims -- while order-sensitive
aggregates (REAL sum, avg, var, stdev, count DISTINCT) are recomputed
from base rows through the shared kernels so IEEE-754 non-associativity
can never leak into results.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.engine import aggregates as agg_mod
from repro.engine.column import ColumnData
from repro.engine.groupby import Grouping, _MAX_CODE_SPACE
from repro.engine.types import SQLType
from repro.errors import GroupingSetError
from repro.sql import ast
from repro.sql.formatter import format_expr

#: Expansion guard: CUBE(10 dims) would request 1024 sets; anything
#: past this bound is almost certainly a mistake and would also defeat
#: the per-set EXPLAIN spans.
MAX_GROUPING_SETS = 128


def render_set(exprs: tuple[ast.Expr, ...]) -> str:
    """Render a grouping set for errors/EXPLAIN, e.g. ``(d1, d2)``."""
    return "(" + ", ".join(format_expr(e) for e in exprs) + ")"


# ----------------------------------------------------------------------
# Expansion + lattice planning
# ----------------------------------------------------------------------
def expand_group_by(group_by: tuple[ast.Expr, ...],
                    resolve: Callable[[ast.Expr], ast.Expr]
                    ) -> list[tuple[ast.Expr, ...]]:
    """Expand a GROUP BY element list into the requested grouping sets.

    Plain expressions join every set (the SQL standard's cross
    product); CUBE yields all subsets, ROLLUP the prefixes, GROUPING
    SETS its explicit list.  ``resolve`` maps each expression through
    positional GROUP BY resolution.
    """
    per_element: list[list[tuple[ast.Expr, ...]]] = []
    for element in group_by:
        if isinstance(element, ast.Cube):
            exprs = tuple(resolve(e) for e in element.exprs)
            subsets: list[tuple[ast.Expr, ...]] = []
            for r in range(len(exprs), -1, -1):
                subsets.extend(itertools.combinations(exprs, r))
            per_element.append(subsets)
        elif isinstance(element, ast.Rollup):
            exprs = tuple(resolve(e) for e in element.exprs)
            per_element.append([exprs[:i]
                                for i in range(len(exprs), -1, -1)])
        elif isinstance(element, ast.GroupingSets):
            per_element.append([tuple(resolve(e) for e in gset)
                                for gset in element.sets])
        else:
            per_element.append([(resolve(element),)])
    total = 1
    for options in per_element:
        total *= len(options)
        if total > MAX_GROUPING_SETS:
            raise GroupingSetError(
                f"too many grouping sets (more than "
                f"{MAX_GROUPING_SETS}); reduce the CUBE/ROLLUP arity")
    return [tuple(itertools.chain.from_iterable(combo))
            for combo in itertools.product(*per_element)]


@dataclass(frozen=True)
class SetSpec:
    """One requested grouping set, positioned in the request order."""

    position: int
    dims: tuple[int, ...]            # ascending union-dim indices
    #: position of the requested finer set partials fold from (the
    #: proper superset with the fewest extra dims), or None for the
    #: finest sets.
    fold_source: Optional[int]
    #: position of the parent lattice level percentages divide by (the
    #: proper subset with the most dims), or None at the lattice top...
    #: which for pct() means the set is its own parent (ratio 1.0).
    pct_parent: Optional[int]


@dataclass
class GroupingSetsPlan:
    """The canonicalized lattice for one grouping-sets query."""

    dims: list[ast.Expr]             # union dims, first-appearance order
    sets: list[SetSpec]              # request order
    raw_sets: list[tuple[ast.Expr, ...]]

    @property
    def n_sets(self) -> int:
        return len(self.sets)


def build_plan(raw_sets: list[tuple[ast.Expr, ...]],
               key_of: Callable[[ast.Expr], object]) -> GroupingSetsPlan:
    """Canonicalize expanded sets into a lattice plan.

    ``key_of`` maps an expression to its normalization key (equal keys
    = same grouping column).  Dims are numbered in first-appearance
    order across the request; each set becomes its ascending dim-index
    tuple, so every set's key order is a subsequence of the union's --
    the property the group-level radix projection relies on.
    """
    dims: list[ast.Expr] = []
    dim_index: dict[object, int] = {}
    index_sets: list[tuple[int, ...]] = []
    for raw in raw_sets:
        indices: list[int] = []
        for expr in raw:
            key = key_of(expr)
            if key not in dim_index:
                dim_index[key] = len(dims)
                dims.append(expr)
            idx = dim_index[key]
            if idx not in indices:   # cross-product can repeat a dim
                indices.append(idx)
        index_sets.append(tuple(sorted(indices)))

    sets: list[SetSpec] = []
    for position, indices in enumerate(index_sets):
        here = frozenset(indices)
        fold_source = None
        fold_size = None
        pct_parent = None
        parent_size = -1
        for other_pos, other in enumerate(index_sets):
            other_set = frozenset(other)
            if other_set > here and (fold_size is None
                                     or len(other) < fold_size):
                fold_source = other_pos
                fold_size = len(other)
            if other_set < here and len(other) > parent_size:
                pct_parent = other_pos
                parent_size = len(other)
        sets.append(SetSpec(position, indices, fold_source, pct_parent))
    return GroupingSetsPlan(dims, sets, raw_sets)


def grouping_mask(arg_dims: list[int], set_dims: tuple[int, ...]) -> int:
    """The ``GROUPING()`` bitmask for one call in one set: the leftmost
    argument is the most significant bit; a bit is 1 when that column is
    *not* grouped (NULL placeholder) in the set."""
    present = set(set_dims)
    mask = 0
    for j, dim in enumerate(arg_dims):
        if dim not in present:
            mask |= 1 << (len(arg_dims) - 1 - j)
    return mask


# ----------------------------------------------------------------------
# Group-level derivation of per-set groupings
# ----------------------------------------------------------------------
@dataclass
class SetGrouping:
    """A set's grouping plus its mapping from union groups.

    ``to_set[union_gid]`` is the set-level group id -- the hook both
    lattice folds and pct() parent lookups compose through.
    """

    grouping: Grouping
    to_set: np.ndarray


def derive_set_grouping(union: Grouping, dims: tuple[int, ...],
                        n_rows: int) -> SetGrouping:
    """Derive one set's grouping from the union factorization.

    Bit-identical to ``factorize([key_columns[i] for i in dims], ...)``:
    same encodings, same mixed-radix combination order, same
    ``np.unique`` ranking -- only computed over union *groups* instead
    of rows.
    """
    if not dims:
        # SQL's global aggregate: one group even over an empty table,
        # exactly like factorize([] , n_rows).
        grouping = Grouping(np.zeros(n_rows, dtype=np.int64), 1,
                            np.empty((1, 0), dtype=np.int64), [])
        return SetGrouping(grouping,
                           np.zeros(union.n_groups, dtype=np.int64))

    encodings = [union.encodings[i] for i in dims]
    code_space = 1
    for enc in encodings:
        code_space *= enc.cardinality
        if code_space > _MAX_CODE_SPACE:
            break
    if code_space <= _MAX_CODE_SPACE:
        combined = np.zeros(union.n_groups, dtype=np.int64)
        for position, i in enumerate(dims):
            combined *= encodings[position].cardinality
            combined += union.key_codes[:, i]
        present, to_set = np.unique(combined, return_inverse=True)
        key_codes = np.empty((len(present), len(dims)), dtype=np.int64)
        remaining = present.copy()
        for position in range(len(dims) - 1, -1, -1):
            radix = encodings[position].cardinality
            key_codes[:, position] = remaining % radix
            remaining //= radix
    else:
        # Lexicographic fallback, mirroring _factorize_lex: unique over
        # the projected code rows ranks identically to the radix path.
        matrix = union.key_codes[:, list(dims)]
        key_codes, to_set = np.unique(matrix, axis=0,
                                      return_inverse=True)
    to_set = to_set.astype(np.int64)
    group_ids = to_set[union.group_ids]
    grouping = Grouping(group_ids, len(key_codes), key_codes, encodings)
    return SetGrouping(grouping, to_set)


def fine_to_coarse(fine: SetGrouping, coarse: SetGrouping) -> np.ndarray:
    """Map each fine-set group id to its coarse-set group id.

    Well defined whenever coarse's dims are a subset of fine's: all
    union groups sharing a fine group then share a coarse group, so the
    scatter below writes each slot a consistent value.
    """
    mapping = np.empty(fine.grouping.n_groups, dtype=np.int64)
    mapping[fine.to_set] = coarse.to_set
    return mapping


# ----------------------------------------------------------------------
# Lattice folds
# ----------------------------------------------------------------------
def fold_eligible(func: str, arg: Optional[ColumnData],
                  distinct: bool) -> bool:
    """True when ``func`` can fold exactly from finer partials.

    count/count(*) and INTEGER sum fold by integer summation; min/max
    by re-minimization -- all order-insensitive, hence bit-identical to
    direct aggregation.  REAL sum, avg, var, stdev and DISTINCT counts
    stay row-recomputed (IEEE-754 addition is not associative; DISTINCT
    does not decompose)."""
    if distinct:
        return False
    if func == "count":
        return True
    if func in ("min", "max"):
        return True
    if func == "sum":
        return arg is not None and arg.sql_type == SQLType.INTEGER
    return False


def fold_aggregate(func: str, partial: ColumnData,
                   mapping: np.ndarray, n_coarse: int) -> ColumnData:
    """Fold one fine-set partial column into the coarse set.

    The fold runs through the same kernel wrappers as base-row
    aggregation -- counts sum, extremes re-minimize -- over
    ``n_fine_groups`` entries, so a coarse set's cost is proportional
    to its source's group count, not the table's row count.
    """
    fold_func = "sum" if func == "count" else func
    return agg_mod.compute_aggregate(fold_func, partial, False,
                                     mapping, n_coarse)


# ----------------------------------------------------------------------
# Multi-level percentages
# ----------------------------------------------------------------------
def percentage_column(numer: ColumnData, parent_sums: ColumnData,
                      parent_ids: np.ndarray) -> ColumnData:
    """``pct(m)``: each group's sum(m) over its pct-parent's sum(m).

    NULL-safe exactly like the engine's division and the paper's Vpct:
    a NULL numerator, NULL denominator, or zero denominator yields
    NULL, never a ZeroDivisionError.
    """
    numer_values = np.asarray(numer.values, dtype=np.float64)
    denom_values = np.asarray(parent_sums.values,
                              dtype=np.float64)[parent_ids]
    denom_nulls = parent_sums.nulls[parent_ids]
    invalid = numer.nulls | denom_nulls | (denom_values == 0.0)
    safe = np.where(invalid, 1.0, denom_values)
    values = np.where(invalid, 0.0, numer_values / safe)
    return ColumnData(SQLType.REAL, values, invalid)
