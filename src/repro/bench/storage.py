"""Storage-backend benchmark (``repro.bench --suite storage``).

Four questions, four measurements, all on the paper's sales-style
fact table:

* **Cold vs warm pool**: the same aggregation query against an empty
  buffer pool (every page read from disk) and against a hot one
  (every fetch a hit) -- the hit rates are recorded so the report
  shows the pool actually did the work.
* **Eviction pressure**: the query against a pool holding a fraction
  of the working set, demonstrating correctness and cost under
  steady-state eviction.
* **Disk vs memory A/B** (informational): the disk backend's steady
  state vs the plain heap-resident backend, interleaved so drift hits
  both sides equally.
* **Memory-backend overhead**: the acceptance bar.  The default
  ``storage="memory"`` path must be untouched by the storage
  subsystem; its only additions are ``storage is None`` branch tests
  in the catalog hooks and three always-zero counters in the stats
  ledger.  As with the obs suite's disabled-tracing bound, we measure
  the per-call cost of those additions directly, count how often one
  workload run reaches them, and bound the overhead as
  ``per_call_seconds * calls / run_seconds`` -- the bar is 5%.

The cold/warm/eviction cells force a ``gc.collect()`` before each run
so the tables' weak-value column caches drop and the buffer pool is
what gets measured; the A/B cell deliberately does not, because the
column cache *is* product behavior and steady state is the honest
comparison.
"""

from __future__ import annotations

import gc
import shutil
import tempfile
import time

from repro.api.database import Database

#: The measured workload: scan-heavy grouped aggregation touching one
#: dimension and the measure.
QUERY = ("SELECT store, sum(salesamt), count(*) FROM sales "
         "GROUP BY store")

#: The DML statement mixed into the memory-overhead workload so the
#: catalog's (branch-guarded) storage hooks are actually reached.
DML = "UPDATE sales SET salesamt = salesamt WHERE store = 1"

#: Storage-subsystem touch points one memory-backend statement can
#: reach: the catalog hook branches (create/replace/drop x
#: table/view/index + rollback), the executor option read and the
#: three ledger counters.  Generous by design -- the bound only has
#: to come in far under the bar.
_HOOKS_PER_STATEMENT = 12


def _load(db: Database, sales_n: int) -> None:
    from repro.datagen import load_sales

    load_sales(db, sales_n)


def _pool_pages_for(sales_n: int) -> int:
    # 9 columns x 8 bytes/row plus headers; generous headroom so the
    # whole table is pool-resident for the warm/A-B measurements.
    return max(128, sales_n // 32)


def _time_query(db: Database) -> float:
    started = time.perf_counter()
    db.query(QUERY)
    return time.perf_counter() - started


def _pool_delta(pool, run) -> dict:
    # Materialized columns linger in the tables' weak-value caches
    # until cyclic garbage is collected; collect first so the run
    # exercises the buffer pool rather than the column cache.
    gc.collect()
    before = pool.info()
    seconds = run()
    after = pool.info()
    hits = after["hits"] - before["hits"]
    misses = after["misses"] - before["misses"]
    total = hits + misses
    return {
        "seconds": round(seconds, 6),
        "pool_hits": hits,
        "pool_misses": misses,
        "evictions": after["evictions"] - before["evictions"],
        "hit_rate": round(hits / total, 4) if total else None,
    }


def _memory_overhead(mem: Database, repeats: int) -> dict:
    """Bound the storage subsystem's cost on the memory backend."""
    catalog = mem.catalog
    stats = mem.stats

    def run_workload() -> float:
        started = time.perf_counter()
        mem.query(QUERY)
        mem.execute(DML)
        return time.perf_counter() - started

    statements_before = stats.statements
    run_seconds = min(run_workload() for _ in range(repeats))
    statements = max(1, (stats.statements - statements_before)
                     // repeats)

    # Per-call microbenchmark of the added work: the branch test the
    # catalog hooks perform, plus a zero-increment of the storage
    # counters (what the ledger would pay if anything charged them).
    loops = 200_000
    started = time.perf_counter()
    for _ in range(loops):
        if catalog.storage is not None:  # pragma: no cover - never
            raise AssertionError
    branch_seconds = (time.perf_counter() - started) / loops
    started = time.perf_counter()
    for _ in range(2_000):
        stats.add(storage_page_fetches=0, storage_pool_hits=0,
                  storage_page_reads=0)
    counter_seconds = (time.perf_counter() - started) / 2_000
    per_call = branch_seconds + counter_seconds

    calls = statements * _HOOKS_PER_STATEMENT
    estimated = per_call * calls / run_seconds if run_seconds else 0.0
    return {
        "run_seconds": round(run_seconds, 6),
        "statements_per_run": statements,
        "hook_calls_per_run": calls,
        "per_call_seconds": per_call,
        "estimated_overhead_fraction": round(estimated, 6),
        "overhead_within_5pct": estimated <= 0.05,
    }


def run_storage_benchmark(sales_n: int = 120_000,
                          repeats: int = 3) -> dict:
    tmp = tempfile.mkdtemp(prefix="repro-bench-storage-")
    pool_pages = _pool_pages_for(sales_n)
    try:
        db = Database(storage="disk", storage_path=tmp,
                      pool_pages=pool_pages)
        _load(db, sales_n)
        db.close()

        # Reopen = full recovery (checkpoint load + live-page
        # verification); worth a number of its own.
        started = time.perf_counter()
        db = Database(storage="disk", storage_path=tmp,
                      pool_pages=pool_pages)
        reopen_seconds = time.perf_counter() - started
        pool = db.storage_engine.pool

        # Cold: recovery already verified (and pooled) every live
        # page, so drop the pool to measure a genuinely cold read.
        pool.clear()
        cold = _pool_delta(pool, lambda: _time_query(db))

        warm_runs = [_pool_delta(pool, lambda: _time_query(db))
                     for _ in range(repeats)]
        warm = min(warm_runs, key=lambda r: r["seconds"])

        # Interleaved A/B against the memory backend.
        mem = Database()
        _load(mem, sales_n)
        mem_seconds: list[float] = []
        disk_seconds: list[float] = []
        # No forced gc here: steady state lets the tables' weak-value
        # column caches work (the product behavior), so the disk side
        # only re-deserializes when Python actually collects.
        for _ in range(repeats):
            mem_seconds.append(_time_query(mem))
            disk_seconds.append(_time_query(db))
        ab_mem = min(mem_seconds)
        ab_disk = min(disk_seconds)
        ab_overhead = (ab_disk - ab_mem) / ab_mem if ab_mem else 0.0

        memory_overhead = _memory_overhead(mem, repeats)

        info = db.storage_info()
        db.close()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    # Eviction pressure: a pool a fraction of the working set.
    small_pages = max(8, pool_pages // 8)
    tmp = tempfile.mkdtemp(prefix="repro-bench-storage-small-")
    try:
        small_db = Database(storage="disk", storage_path=tmp,
                            pool_pages=small_pages)
        _load(small_db, sales_n)
        small_db.storage_engine.pool.clear()
        small_pool = small_db.storage_engine.pool
        small_runs = [_pool_delta(small_pool,
                                  lambda: _time_query(small_db))
                      for _ in range(max(2, repeats))]
        small = small_runs[-1]  # steady state, not the cold fill
        small["pool_pages"] = small_pages
        small_db.close()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    return {
        "workload": QUERY,
        "scales": {"sales_n": sales_n},
        "page_size": info["page_size"],
        "pool_pages": pool_pages,
        "allocated_pages": info["allocated_pages"],
        "reopen_seconds": round(reopen_seconds, 6),
        "cold": cold,
        "warm": warm,
        "warm_runs": warm_runs,
        "small_pool": small,
        "disk_vs_memory": {
            "memory_seconds": round(ab_mem, 6),
            "disk_steady_seconds": round(ab_disk, 6),
            "disk_paged_seconds": warm["seconds"],
            "overhead_fraction": round(ab_overhead, 4),
        },
        "memory_overhead": memory_overhead,
        "summary": {
            "cold_seconds": cold["seconds"],
            "warm_seconds": warm["seconds"],
            "cold_over_warm": round(
                cold["seconds"] / warm["seconds"], 4)
            if warm["seconds"] else None,
            "warm_hit_rate": warm["hit_rate"],
            "small_pool_hit_rate": small["hit_rate"],
            "memory_overhead_within_5pct":
                memory_overhead["overhead_within_5pct"],
        },
    }
