"""Unit tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro import Database
from repro.datagen import (load_census, load_employee, load_sales,
                           load_transaction_line)
from repro.datagen.distributions import (sequence, uniform_dimension,
                                         uniform_measure,
                                         zipf_dimension)


class TestDistributions:
    def test_uniform_range(self):
        rng = np.random.default_rng(1)
        values = uniform_dimension(rng, 10_000, 7)
        assert values.min() >= 1 and values.max() <= 7
        assert len(np.unique(values)) == 7

    def test_uniform_is_roughly_flat(self):
        rng = np.random.default_rng(1)
        values = uniform_dimension(rng, 70_000, 7)
        counts = np.bincount(values)[1:]
        assert counts.min() > 0.9 * counts.mean()

    def test_zipf_is_skewed(self):
        rng = np.random.default_rng(1)
        values = zipf_dimension(rng, 50_000, 20, skew=1.2)
        counts = np.bincount(values, minlength=21)[1:]
        assert counts[0] > 3 * counts[10]

    def test_zipf_base(self):
        rng = np.random.default_rng(1)
        values = zipf_dimension(rng, 100, 5, base=0)
        assert values.min() >= 0 and values.max() <= 4

    def test_measure_range(self):
        rng = np.random.default_rng(1)
        values = uniform_measure(rng, 1000, 2.0, 3.0)
        assert values.min() >= 2.0 and values.max() < 3.0

    def test_sequence(self):
        assert sequence(3).tolist() == [1, 2, 3]

    def test_bad_cardinality(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError):
            uniform_dimension(rng, 10, 0)
        with pytest.raises(ValueError):
            zipf_dimension(rng, 10, 0)


class TestEmployee:
    def test_schema_and_cardinalities(self, db):
        load_employee(db, 5_000)
        assert db.table("employee").n_rows == 5_000
        genders, statuses = db.query(
            "SELECT count(DISTINCT gender), count(DISTINCT marstatus) "
            "FROM employee")[0]
        assert genders == 2
        assert statuses == 4

    def test_deterministic_by_seed(self):
        db1, db2 = Database(), Database()
        load_employee(db1, 100, seed=7)
        load_employee(db2, 100, seed=7)
        assert db1.table("employee").to_rows() == \
            db2.table("employee").to_rows()

    def test_different_seeds_differ(self):
        db1, db2 = Database(), Database()
        load_employee(db1, 100, seed=7)
        load_employee(db2, 100, seed=8)
        assert db1.table("employee").to_rows() != \
            db2.table("employee").to_rows()


class TestSales:
    def test_schema(self, db):
        load_sales(db, 2_000)
        assert db.table("sales").n_rows == 2_000
        dweek = db.query("SELECT count(DISTINCT dweek) FROM sales")
        assert dweek == [(7,)]
        assert db.query("SELECT min(salesamt) FROM sales")[0][0] >= 1.0

    def test_transaction_id_is_unique(self, db):
        load_sales(db, 1_000)
        assert db.query("SELECT count(DISTINCT transactionid) "
                        "FROM sales") == [(1_000,)]


class TestTransactionLine:
    def test_schema_and_measures(self, db):
        load_transaction_line(db, 2_000)
        table = db.table("transactionline")
        assert table.n_rows == 2_000
        assert db.query("SELECT count(DISTINCT dayofweekno) "
                        "FROM transactionline") == [(7,)]
        # salesAmt = costAmt * 1.25 (rounded).
        row = db.query("SELECT costamt, salesamt FROM transactionline "
                       "LIMIT 1")[0]
        assert row[1] == pytest.approx(row[0] * 1.25, abs=0.02)


class TestCensus:
    def test_width_matches_paper(self, db):
        load_census(db, 1_000)
        assert db.table("uscensus").schema.width() == 68

    def test_experiment_attributes_present(self, db):
        load_census(db, 1_000)
        for column in ("ischool", "iclass", "imarital", "isex", "dage"):
            assert db.table("uscensus").schema.has_column(column)

    def test_skew(self, db):
        load_census(db, 20_000)
        counts = dict(db.query(
            "SELECT iclass, count(*) FROM uscensus GROUP BY iclass"))
        assert counts[1] > 3 * counts.get(9, 1)
