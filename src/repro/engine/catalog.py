"""The catalog: named tables, their indexes, and DBMS limits.

The catalog enforces the limits the paper calls out as practical issues
for horizontal aggregations: the maximum number of columns per table
and the maximum identifier length (DMKD Section 3.6).  Both are
configurable so tests and the vertical-partitioning machinery can
exercise the failure paths at small sizes.

Concurrency model (the substrate under :mod:`repro.service`):

* **Copy-on-write publication.**  Every mutating operation builds a
  *new* name-space dict (and, for DML, new table/index objects) and
  swaps it in atomically under :attr:`_publish_lock`.  Published dicts
  and the objects inside them are never mutated again, so any thread
  that captured a reference keeps a frozen, internally consistent view
  for free.
* **Snapshots.**  :meth:`snapshot` captures the current dicts plus a
  monotonically increasing :attr:`version` as an immutable
  :class:`CatalogSnapshot` -- an O(1) operation (no copying) thanks to
  copy-on-write.  :meth:`from_snapshot` rehydrates a snapshot into a
  private overlay catalog that snapshot-isolated readers can run whole
  multi-statement plans against (their temp tables never touch the
  shared catalog).
* **Writers serialize elsewhere.**  The catalog does not arbitrate
  write-write conflicts; the Database statement lock and the service
  writer lock do.  The publish lock only makes each individual swap
  (and each snapshot capture) atomic.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Iterable, Mapping, Sequence

from repro.engine.encoding_cache import (DEFAULT_ENCODING_CACHE_BYTES,
                                         EncodingCache)
from repro.engine.index import HashIndex
from repro.engine.schema import (DEFAULT_MAX_COLUMNS,
                                 DEFAULT_MAX_NAME_LENGTH, TableSchema)
from repro.engine.table import Table
from repro.errors import CatalogError


@dataclass(frozen=True)
class CatalogSavepoint:
    """An O(#names) snapshot of the catalog's name spaces.

    Tables are immutable (every DML swaps in a whole new
    :class:`~repro.engine.table.Table`), so shallow dict copies pin the
    exact pre-savepoint contents; no column data is duplicated.
    Indexes are immutable once published (DML swaps in freshly
    digested replacements), so rollback normally restores the captured
    objects as-is and only re-digests an index whose table binding no
    longer matches the restored table.
    """

    tables: dict[str, Table] = field(default_factory=dict)
    views: dict[str, object] = field(default_factory=dict)
    indexes: dict[str, HashIndex] = field(default_factory=dict)
    matviews: dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class CatalogSnapshot:
    """An immutable, internally consistent view of the catalog.

    ``version`` is the catalog's mutation counter at capture time: two
    snapshots with equal versions saw byte-identical catalogs.  The
    mappings are read-only proxies over the published (never again
    mutated) dicts, so holding a snapshot costs no copying and pins the
    exact table/index objects -- the same immutability argument behind
    :meth:`Catalog.fingerprint`.
    """

    version: int
    tables: Mapping[str, Table]
    views: Mapping[str, object]
    indexes: Mapping[str, HashIndex]
    fingerprint: tuple
    matviews: Mapping[str, object] = \
        field(default_factory=lambda: MappingProxyType({}))


class Catalog:
    """Case-insensitive registry of tables and their indexes.

    The catalog also owns the dictionary-encoding cache: it is the one
    component that sees every base-table lifecycle event, so it seals
    cache tokens onto table columns on create/replace and invalidates
    entries on replace/drop (every DML path funnels through
    :meth:`replace_table`).
    """

    def __init__(self, max_columns: int = DEFAULT_MAX_COLUMNS,
                 max_name_length: int = DEFAULT_MAX_NAME_LENGTH,
                 encoding_cache_bytes: int = DEFAULT_ENCODING_CACHE_BYTES,
                 encoding_cache: EncodingCache | None = None):
        self.max_columns = max_columns
        self.max_name_length = max_name_length
        self.encoding_cache = encoding_cache if encoding_cache is not None \
            else EncodingCache(encoding_cache_bytes)
        #: Mutation counter: bumped once per mutating operation (not
        #: per statement), so snapshot versions totally order catalog
        #: states.
        self.version = 0
        #: Optional :class:`~repro.storage.engine.StorageEngine`.  When
        #: set (by the Database, before any table exists), every
        #: mutating operation commits through the engine's write-ahead
        #: log *before* publishing in memory, and tables are persisted
        #: to pages on the way in.  Overlay catalogs built by
        #: :meth:`from_snapshot` leave it ``None``: snapshot-isolated
        #: temp DDL stays in memory (published StoredTables keep their
        #: own engine reference, so overlay reads still work).
        self.storage = None
        self._publish_lock = threading.Lock()
        self._tables: dict[str, Table] = {}
        self._indexes: dict[str, HashIndex] = {}
        self._views: dict[str, object] = {}  # name -> ast.Select
        # name -> repro.views.state.MaterializedView (immutable;
        # maintenance publishes replacement objects, never mutates)
        self._matviews: dict[str, object] = {}

    # ------------------------------------------------------------------
    # Copy-on-write publication
    # ------------------------------------------------------------------
    def _publish(self, tables: dict[str, Table] | None = None,
                 views: dict[str, object] | None = None,
                 indexes: dict[str, HashIndex] | None = None,
                 matviews: dict[str, object] | None = None) -> None:
        """Atomically swap in replacement name-space dicts.

        Callers pass *new* dict objects (never the published ones
        mutated in place); the published dicts stay frozen forever, so
        concurrent snapshot holders are unaffected.
        """
        with self._publish_lock:
            if tables is not None:
                self._tables = tables
            if views is not None:
                self._views = views
            if indexes is not None:
                self._indexes = indexes
            if matviews is not None:
                self._matviews = matviews
            self.version += 1

    def snapshot(self) -> CatalogSnapshot:
        """Capture the current catalog state; O(1), never blocks
        readers (the publish lock is held only for the reference
        reads, so capture can't interleave with a half-applied swap).
        """
        with self._publish_lock:
            tables, views, indexes, matviews = \
                self._tables, self._views, self._indexes, self._matviews
            version = self.version
        return CatalogSnapshot(
            version=version,
            tables=MappingProxyType(tables),
            views=MappingProxyType(views),
            indexes=MappingProxyType(indexes),
            fingerprint=_fingerprint(tables, views, indexes, matviews),
            matviews=MappingProxyType(matviews))

    @classmethod
    def from_snapshot(cls, snapshot: CatalogSnapshot,
                      max_columns: int, max_name_length: int,
                      encoding_cache: EncodingCache) -> "Catalog":
        """A private overlay catalog seeded from ``snapshot``.

        The overlay starts with the snapshot's exact objects and keeps
        full catalog semantics, so a snapshot-isolated reader can run
        multi-statement plans (temp CREATE/INSERT/UPDATE/DROP) without
        any of it becoming visible outside -- the copy-on-write
        discipline guarantees the shared objects are never mutated.
        The dictionary-encoding cache is shared: it is thread-safe and
        version-keyed, so overlay temps and base tables coexist.
        """
        overlay = cls(max_columns=max_columns,
                      max_name_length=max_name_length,
                      encoding_cache=encoding_cache)
        overlay._tables = dict(snapshot.tables)
        overlay._views = dict(snapshot.views)
        overlay._indexes = dict(snapshot.indexes)
        overlay._matviews = dict(snapshot.matviews)
        overlay.version = snapshot.version
        return overlay

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------
    def validate_schema(self, schema: TableSchema) -> None:
        """Raise CatalogError when a schema violates a DBMS limit."""
        if schema.width() > self.max_columns:
            raise CatalogError(
                f"table {schema.name!r} would have {schema.width()} "
                f"columns; the maximum is {self.max_columns}")
        for name in [schema.name] + schema.column_names():
            if len(name) > self.max_name_length:
                raise CatalogError(
                    f"identifier {name!r} is {len(name)} characters; "
                    f"the maximum is {self.max_name_length}")

    def create_table(self, table: Table, replace: bool = False) -> None:
        key = table.name.lower()
        if key in self._tables and not replace:
            raise CatalogError(f"table {table.name!r} already exists")
        if key in self._views:
            raise CatalogError(f"{table.name!r} is a view")
        if key in self._matviews:
            raise CatalogError(f"{table.name!r} is a materialized view")
        self.validate_schema(table.schema)
        if replace and key in self._tables:
            self.encoding_cache.invalidate_table(key)
        if self.storage is not None:
            # Persist + WAL-commit before the in-memory publish: a
            # crash in between redoes the publish on reopen.
            table = self.storage.on_create_table(table, replace=replace)
        table.seal_cache_tokens()
        tables = dict(self._tables)
        tables[key] = table
        self._publish(tables=tables)

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no such table: {name!r}") from None

    def replace_table(self, table: Table,
                      matviews: Mapping[str, object] | None = None
                      ) -> None:
        """Swap in new contents for an existing table and refresh its
        indexes.  The replacement carries a fresh version, so its
        cached encodings start cold; the old version's entries are
        dropped eagerly.  Indexes on the table are replaced by freshly
        digested *new* objects (never rebuilt in place), so snapshot
        holders keep index digests consistent with their table
        version.

        ``matviews`` optionally carries delta-maintained replacement
        materialized views (key -> MaterializedView); they are
        published in the *same* atomic swap as the table, so no reader
        can observe the new table with a stale view object (or vice
        versa)."""
        key = table.name.lower()
        if key not in self._tables:
            raise CatalogError(f"no such table: {table.name!r}")
        self.encoding_cache.invalidate_table(key)
        if self.storage is not None:
            table = self.storage.on_replace_table(table)
        table.seal_cache_tokens()
        tables = dict(self._tables)
        tables[key] = table
        indexes = dict(self._indexes)
        for idx_name, index in self._indexes.items():
            if index.table_name.lower() == key:
                rebuilt = HashIndex(index.name, index.table_name,
                                    index.column_names)
                rebuilt.rebuild(table, cache=self.encoding_cache)
                indexes[idx_name] = rebuilt
        merged = None
        if matviews:
            merged = dict(self._matviews)
            merged.update(matviews)
        self._publish(tables=tables, indexes=indexes, matviews=merged)

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._tables:
            if if_exists:
                return
            raise CatalogError(f"no such table: {name!r}")
        if self.storage is not None:
            self.storage.log_drop_table(key)
        tables = dict(self._tables)
        del tables[key]
        self.encoding_cache.invalidate_table(key)
        indexes = {idx_name: idx for idx_name, idx in
                   self._indexes.items()
                   if idx.table_name.lower() != key}
        # Dependent materialized views cannot outlive their base: drop
        # them in the same atomic publish (their WAL records ride on
        # the recorded base table, so recovery cascades identically).
        matviews = {mv_key: mv for mv_key, mv in self._matviews.items()
                    if mv.definition.base_table != key}
        self._publish(tables=tables, indexes=indexes,
                      matviews=matviews)

    def table_names(self) -> list[str]:
        return [t.name for t in self._tables.values()]

    # ------------------------------------------------------------------
    # Views (the paper's Section 2: F may be "a view based on some
    # complex SQL query"; views re-run their defining SELECT on use)
    # ------------------------------------------------------------------
    def create_view(self, name: str, select, replace: bool = False
                    ) -> None:
        key = name.lower()
        if key in self._tables:
            raise CatalogError(f"{name!r} is a table")
        if key in self._matviews:
            raise CatalogError(f"{name!r} is a materialized view")
        if key in self._views and not replace:
            raise CatalogError(f"view {name!r} already exists")
        if len(name) > self.max_name_length:
            raise CatalogError(
                f"identifier {name!r} is {len(name)} characters; "
                f"the maximum is {self.max_name_length}")
        if self.storage is not None:
            self.storage.log_create_view(key, select, replace=replace)
        views = dict(self._views)
        views[key] = select
        self._publish(views=views)

    def has_view(self, name: str) -> bool:
        return name.lower() in self._views

    def view(self, name: str):
        try:
            return self._views[name.lower()]
        except KeyError:
            raise CatalogError(f"no such view: {name!r}") from None

    def drop_view(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._views:
            if if_exists:
                return
            raise CatalogError(f"no such view: {name!r}")
        if self.storage is not None:
            self.storage.log_drop_view(key)
        views = dict(self._views)
        del views[key]
        self._publish(views=views)

    def view_names(self) -> list[str]:
        return list(self._views)

    # ------------------------------------------------------------------
    # Materialized views (repro.views; delta-maintained snapshots of
    # percentage/group-by queries over one base table)
    # ------------------------------------------------------------------
    def create_matview(self, mv) -> None:
        """Register a freshly built MaterializedView."""
        key = mv.key
        if key in self._tables:
            raise CatalogError(f"{mv.name!r} is a table")
        if key in self._views:
            raise CatalogError(f"{mv.name!r} is a view")
        if key in self._matviews:
            raise CatalogError(
                f"materialized view {mv.name!r} already exists")
        if len(mv.name) > self.max_name_length:
            raise CatalogError(
                f"identifier {mv.name!r} is {len(mv.name)} characters; "
                f"the maximum is {self.max_name_length}")
        if self.storage is not None:
            self.storage.log_create_matview(
                key, mv.definition.sql, mv.definition.base_table,
                display_name=mv.definition.name)
        matviews = dict(self._matviews)
        matviews[key] = mv
        self._publish(matviews=matviews)

    def publish_matviews(self, replacements: Mapping[str, object]
                         ) -> None:
        """Swap in replacement view objects (refresh-on-read and
        REFRESH publish through here; definitions are unchanged so
        nothing needs logging)."""
        if not replacements:
            return
        matviews = dict(self._matviews)
        matviews.update(replacements)
        self._publish(matviews=matviews)

    def has_matview(self, name: str) -> bool:
        return name.lower() in self._matviews

    def matview(self, name: str):
        try:
            return self._matviews[name.lower()]
        except KeyError:
            raise CatalogError(
                f"no such materialized view: {name!r}") from None

    def drop_matview(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._matviews:
            if if_exists:
                return
            raise CatalogError(f"no such materialized view: {name!r}")
        if self.storage is not None:
            self.storage.log_drop_matview(key)
        matviews = dict(self._matviews)
        del matviews[key]
        self._publish(matviews=matviews)

    def matview_names(self) -> list[str]:
        return list(self._matviews)

    def matviews(self) -> Mapping[str, object]:
        return self._matviews

    def matviews_on(self, table_name: str) -> list:
        """Materialized views whose base is ``table_name``."""
        key = table_name.lower()
        return [mv for mv in self._matviews.values()
                if mv.definition.base_table == key]

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------
    def create_index(self, name: str, table_name: str,
                     column_names: Sequence[str],
                     replace: bool = False) -> HashIndex:
        key = name.lower()
        if key in self._indexes and not replace:
            raise CatalogError(f"index {name!r} already exists")
        table = self.table(table_name)
        for col in column_names:
            if not table.schema.has_column(col):
                raise CatalogError(
                    f"no column {col!r} in table {table_name!r}")
        index = HashIndex(name, table.name, column_names)
        index.rebuild(table, cache=self.encoding_cache)
        if self.storage is not None:
            self.storage.log_create_index(index)
        indexes = dict(self._indexes)
        indexes[key] = index
        self._publish(indexes=indexes)
        return index

    def drop_index(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._indexes:
            if if_exists:
                return
            raise CatalogError(f"no such index: {name!r}")
        if self.storage is not None:
            self.storage.log_drop_index(key)
        indexes = dict(self._indexes)
        del indexes[key]
        self._publish(indexes=indexes)

    def indexes_on(self, table_name: str) -> list[HashIndex]:
        lowered = table_name.lower()
        return [idx for idx in self._indexes.values()
                if idx.table_name.lower() == lowered]

    def find_index(self, table_name: str,
                   column_names: Iterable[str]) -> HashIndex | None:
        """An index on exactly these columns of this table, if any."""
        wanted = list(column_names)
        for index in self.indexes_on(table_name):
            if index.covers(wanted):
                return index
        return None

    def index_names(self) -> list[str]:
        return [idx.name for idx in self._indexes.values()]

    # ------------------------------------------------------------------
    # Savepoints (the atomicity substrate for multi-statement plans)
    # ------------------------------------------------------------------
    def savepoint(self) -> CatalogSavepoint:
        """Snapshot every name space; cheap (no data is copied)."""
        with self._publish_lock:
            return CatalogSavepoint(tables=dict(self._tables),
                                    views=dict(self._views),
                                    indexes=dict(self._indexes),
                                    matviews=dict(self._matviews))

    def fingerprint(self) -> tuple:
        """An identity snapshot for crash-consistency checks.

        Because tables are immutable, "same name bound to the same
        object" implies "same content": two fingerprints being equal
        means the catalog is byte-identical from a reader's point of
        view.  Hold a :meth:`savepoint` alongside the fingerprint to
        pin the objects (so ``id`` values cannot be recycled).
        """
        with self._publish_lock:
            return _fingerprint(self._tables, self._views,
                                self._indexes, self._matviews)

    def rollback(self, savepoint: CatalogSavepoint) -> None:
        """Restore the catalog to ``savepoint``.

        Tables and views snap back to the exact objects captured
        (immutability makes that sufficient); encoding-cache entries
        of tables created or replaced since the savepoint are
        invalidated.  Under the copy-on-write discipline the captured
        index objects were never mutated, so they are restored as-is;
        the re-digest loop remains as a belt-and-braces check for an
        index whose table binding doesn't match the restored table
        (only reachable through out-of-band index mutation).
        """
        for key, table in self._tables.items():
            if savepoint.tables.get(key) is not table:
                # Created or replaced since the savepoint: its cached
                # encodings (any version) must not outlive it.
                self.encoding_cache.invalidate_table(key)
        indexes = dict(savepoint.indexes)
        for key, index in indexes.items():
            table = savepoint.tables.get(index.table_name.lower())
            if table is not None and index.source_table() is not table:
                rebuilt = HashIndex(index.name, index.table_name,
                                    index.column_names)
                rebuilt.rebuild(table, cache=self.encoding_cache)
                indexes[key] = rebuilt
        if self.storage is not None:
            # One full-manifest WAL record re-asserting the restored
            # state.  This is what heals a fault injected mid-commit:
            # whatever half-committed records the failed statement left
            # in the log, the restore record replayed after them lands
            # the recovered store back on the savepoint state.
            self.storage.log_restore(savepoint.tables, savepoint.views,
                                     indexes,
                                     matviews=savepoint.matviews)
        # Materialized views snap back with their tables: each captured
        # MaterializedView is immutable and was published atomically
        # with the table version it matches, so the restored pair is
        # consistent by construction (no stale hit after rollback).
        self._publish(tables=dict(savepoint.tables),
                      views=dict(savepoint.views),
                      indexes=indexes,
                      matviews=dict(savepoint.matviews))

    # ------------------------------------------------------------------
    # Recovery (storage engine only)
    # ------------------------------------------------------------------
    def bootstrap(self, tables: Mapping[str, Table],
                  views: Mapping[str, object],
                  indexes: Mapping[str, HashIndex],
                  matviews: Mapping[str, object] | None = None) -> None:
        """Publish recovered name spaces wholesale, bypassing the
        storage hooks (the state *came from* the store; re-logging it
        would be circular).  Called once by
        :meth:`~repro.storage.engine.StorageEngine.open_catalog` before
        the database accepts statements."""
        for table in tables.values():
            table.seal_cache_tokens()
        self._publish(tables=dict(tables), views=dict(views),
                      indexes=dict(indexes),
                      matviews=dict(matviews) if matviews is not None
                      else None)


def _fingerprint(tables: Mapping[str, Table],
                 views: Mapping[str, object],
                 indexes: Mapping[str, HashIndex],
                 matviews: Mapping[str, object] = {}) -> tuple:
    return (tuple(sorted((k, id(t)) for k, t in tables.items())),
            tuple(sorted(views)),
            tuple(sorted((k, id(i)) for k, i in indexes.items())),
            tuple(sorted((k, id(m)) for k, m in matviews.items())))
