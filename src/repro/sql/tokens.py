"""Tokenizer for the SQL subset.

Produces a flat list of :class:`Token` with 1-based line/column
positions for error reporting.  Keywords are not distinguished from
identifiers here; the parser matches identifier tokens against keyword
strings case-insensitively, which keeps the lexer independent of the
grammar (and lets ``state``, ``store`` etc. be column names even though
they start like keywords).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.errors import SQLSyntaxError


class TokenType(enum.Enum):
    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    SYMBOL = "SYMBOL"
    END = "END"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: Any
    line: int
    column: int
    quoted: bool = False

    def matches_keyword(self, keyword: str) -> bool:
        # A double-quoted identifier is never a keyword: the generated
        # horizontal column for a NULL combination is literally named
        # "null", and must not re-parse as the NULL literal.
        return (self.type == TokenType.IDENT
                and not self.quoted
                and isinstance(self.value, str)
                and self.value.upper() == keyword.upper())


#: Multi-character symbols first so maximal munch applies.
_SYMBOLS = ["<>", "<=", ">=", "!=", "||",
            "(", ")", ",", ".", ";", "*", "+", "-", "/", "=", "<", ">"]

_IDENT_START = set("abcdefghijklmnopqrstuvwxyz"
                   "ABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789$")

#: ASCII digits only: str.isdigit() also accepts unicode digits (e.g.
#: superscripts) that int()/float() reject.
_DIGITS = set("0123456789")


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`SQLSyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        column = i - line_start + 1
        # Comments: -- to end of line, /* ... */
        if text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end < 0 else end
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                raise SQLSyntaxError("unterminated comment", line, column)
            segment = text[i:end]
            line += segment.count("\n")
            if "\n" in segment:
                line_start = i + segment.rfind("\n") + 1
            i = end + 2
            continue
        if ch == "'":
            value, i = _scan_string(text, i, line, column)
            tokens.append(Token(TokenType.STRING, value, line, column))
            continue
        if ch == '"':
            value, i = _scan_quoted_ident(text, i, line, column)
            tokens.append(Token(TokenType.IDENT, value, line, column,
                                quoted=True))
            continue
        if ch in _DIGITS or (ch == "." and i + 1 < n
                             and text[i + 1] in _DIGITS):
            value, i = _scan_number(text, i)
            tokens.append(Token(TokenType.NUMBER, value, line, column))
            continue
        if ch in _IDENT_START:
            start = i
            while i < n and text[i] in _IDENT_CONT:
                i += 1
            tokens.append(Token(TokenType.IDENT, text[start:i],
                                line, column))
            continue
        for symbol in _SYMBOLS:
            if text.startswith(symbol, i):
                tokens.append(Token(TokenType.SYMBOL, symbol, line, column))
                i += len(symbol)
                break
        else:
            raise SQLSyntaxError(f"unexpected character {ch!r}",
                                 line, column)
    tokens.append(Token(TokenType.END, None, line, n - line_start + 1))
    return tokens


def _scan_string(text: str, i: int, line: int,
                 column: int) -> tuple[str, int]:
    """Scan a single-quoted string; '' escapes a quote."""
    i += 1
    parts: list[str] = []
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        if ch == "\n":
            raise SQLSyntaxError("newline in string literal", line, column)
        parts.append(ch)
        i += 1
    raise SQLSyntaxError("unterminated string literal", line, column)


def _scan_quoted_ident(text: str, i: int, line: int,
                       column: int) -> tuple[str, int]:
    """Scan a double-quoted identifier (used for generated horizontal
    column names such as ``"dweek=1"``)."""
    i += 1
    parts: list[str] = []
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == '"':
            if i + 1 < n and text[i + 1] == '"':
                parts.append('"')
                i += 2
                continue
            return "".join(parts), i + 1
        if ch == "\n":
            raise SQLSyntaxError("newline in quoted identifier",
                                 line, column)
        parts.append(ch)
        i += 1
    raise SQLSyntaxError("unterminated quoted identifier", line, column)


def _scan_number(text: str, i: int) -> tuple[Any, int]:
    start = i
    n = len(text)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = text[i]
        if ch in _DIGITS:
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            # A dot not followed by a digit terminates the number
            # (e.g. "1.e" never occurs; "t1.col" must not eat the dot
            # when scanning "1" inside an identifier context -- but a
            # number token never precedes '.', so consuming is safe
            # only when a digit follows).
            if i + 1 < n and text[i + 1] in _DIGITS:
                seen_dot = True
                i += 1
            else:
                break
        elif ch in "eE" and not seen_exp and i > start:
            lookahead = i + 1
            if lookahead < n and text[lookahead] in "+-":
                lookahead += 1
            if lookahead < n and text[lookahead] in _DIGITS:
                seen_exp = True
                i = lookahead
            else:
                break
        else:
            break
    literal = text[start:i]
    if seen_dot or seen_exp:
        return float(literal), i
    return int(literal), i
