"""Hash indexes on column sets.

The paper's vertical-percentage optimization recommends identical
indexes on the common subkey of ``Fj`` and ``Fk`` to speed up the
division join.  An index stores a pre-digested
:class:`~repro.engine.join.PreparedJoinSide` for its columns, so a join
whose build keys are covered by an index skips the hash-build phase --
the same saving a DBMS gets.  A lazily-built exact-key bucket map is
also available for point lookups.
"""

from __future__ import annotations

import threading
from typing import Any, Sequence

from repro.engine.join import PreparedJoinSide, prepare_side
from repro.engine.table import Table


class HashIndex:
    """An equality index mapping key tuples to row positions."""

    def __init__(self, name: str, table_name: str,
                 column_names: Sequence[str]):
        self.name = name
        self.table_name = table_name
        #: indexed columns, lower-cased, in declaration order
        self.column_names = tuple(c.lower() for c in column_names)
        self.prepared: PreparedJoinSide | None = None
        self._buckets: dict[tuple[Any, ...], list[int]] | None = None
        self._table: Table | None = None
        # Published indexes are shared by concurrent snapshot readers;
        # the lock makes the lazy bucket build single-flight (rebuild
        # itself only ever runs before publication).
        self._bucket_lock = threading.Lock()

    # ------------------------------------------------------------------
    def rebuild(self, table: Table, cache=None) -> None:
        """(Re)digest the index from the table's current contents.

        ``cache`` (an :class:`~repro.engine.encoding_cache.
        EncodingCache`) lets the rebuild share per-column dictionaries
        with GROUP BY/join encodings of the same table version.
        """
        self._table = table
        columns = [table.column(c) for c in self.column_names]
        self.prepared = prepare_side(columns, cache)
        self._buckets = None  # rebuilt lazily on next point lookup

    def source_table(self) -> Table | None:
        """The table object this index was last digested from (used by
        catalog rollback to spot stale in-place rebuilds)."""
        return self._table

    def covers(self, column_names: Sequence[str]) -> bool:
        """True when this index is exactly on ``column_names``
        (order-insensitive, case-insensitive)."""
        return set(self.column_names) == {c.lower() for c in column_names}

    # ------------------------------------------------------------------
    def _ensure_buckets(self) -> dict[tuple[Any, ...], list[int]]:
        with self._bucket_lock:
            if self._buckets is None:
                if self._table is None:
                    raise RuntimeError(
                        f"index {self.name!r} was never built")
                columns = [self._table.column(c)
                           for c in self.column_names]
                buckets: dict[tuple[Any, ...], list[int]] = {}
                for i in range(self._table.n_rows):
                    key = tuple(col[i] for col in columns)
                    buckets.setdefault(key, []).append(i)
                self._buckets = buckets
            return self._buckets

    def lookup(self, key: tuple[Any, ...]) -> list[int]:
        """Row positions whose indexed columns equal ``key``."""
        return self._ensure_buckets().get(key, [])

    @property
    def built_rows(self) -> int:
        return self.prepared.n_rows if self.prepared else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(self.column_names)
        return (f"<HashIndex {self.name} on {self.table_name}({cols}) "
                f"rows={self.built_rows}>")
