"""The on-disk page format and the columnar chunk serialization.

A *page* is the unit of disk I/O: a fixed-size block holding a header
(magic, page id, payload length, CRC-32 of the payload) followed by the
payload bytes and zero padding.  The header makes every read
self-verifying -- a torn write, a bit flip or a page written to the
wrong offset surfaces as a typed :class:`~repro.errors.PageCorruptError`
naming the page, never as silently wrong data.

A *column chunk* is what pages carry: one
:class:`~repro.engine.column.ColumnData` serialized to a flat byte
string (type code, row count, packed null bitmap, then the values in a
fixed little-endian layout).  Chunks larger than one page's payload
capacity are split across consecutive pages by
:func:`chunk_payload` and reassembled on read.

The layout is deliberately columnar, matching the engine's execution
model: a scan materializes whole columns, so each column's bytes live
on their own run of pages and a query touching three columns fetches
only those columns' pages.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.engine.column import ColumnData
from repro.engine.types import SQLType
from repro.errors import PageCorruptError, StorageError

#: Default page size in bytes.  Small enough that modest tables span
#: many pages (exercising the buffer pool), large enough to amortize
#: the 20-byte header.
DEFAULT_PAGE_SIZE = 4096

PAGE_MAGIC = b"RPPG"

#: Page header: magic, page id, payload length, CRC-32 of the payload.
_HEADER = struct.Struct("<4sQII")
HEADER_SIZE = _HEADER.size


def payload_capacity(page_size: int) -> int:
    """Payload bytes one page can carry."""
    return page_size - HEADER_SIZE


def encode_page(page_id: int, payload: bytes, page_size: int) -> bytes:
    """A full page image: header + payload + zero padding."""
    cap = payload_capacity(page_size)
    if len(payload) > cap:
        raise StorageError(
            f"payload of {len(payload)} bytes exceeds page capacity "
            f"{cap}")
    header = _HEADER.pack(PAGE_MAGIC, page_id, len(payload),
                          zlib.crc32(payload))
    return header + payload + b"\x00" * (cap - len(payload))


def decode_page(page_id: int, raw: bytes, page_size: int) -> bytes:
    """Verify and strip one page image, returning the payload.

    Raises :class:`PageCorruptError` naming ``page_id`` on any
    mismatch: short read, bad magic, wrong page id (a write landed at
    the wrong offset), an impossible payload length, or a CRC failure
    (torn write / bit rot).
    """
    if len(raw) < page_size:
        raise PageCorruptError(
            f"page {page_id} is torn: read {len(raw)} of "
            f"{page_size} bytes")
    magic, stored_id, length, crc = _HEADER.unpack_from(raw)
    if magic != PAGE_MAGIC:
        raise PageCorruptError(
            f"page {page_id} has bad magic {magic!r}")
    if stored_id != page_id:
        raise PageCorruptError(
            f"page {page_id} header claims page id {stored_id}")
    if length > payload_capacity(page_size):
        raise PageCorruptError(
            f"page {page_id} claims {length} payload bytes; capacity "
            f"is {payload_capacity(page_size)}")
    payload = raw[HEADER_SIZE:HEADER_SIZE + length]
    if zlib.crc32(payload) != crc:
        raise PageCorruptError(
            f"page {page_id} failed its checksum (torn write or "
            f"corruption)")
    return payload


def chunk_payload(data: bytes, capacity: int) -> list[bytes]:
    """Split ``data`` into page-sized chunks (always at least one, so
    an empty column still owns a page and round-trips)."""
    if not data:
        return [b""]
    return [data[i:i + capacity] for i in range(0, len(data), capacity)]


# ----------------------------------------------------------------------
# Column chunk serialization
# ----------------------------------------------------------------------
_TYPE_CODES = {
    SQLType.INTEGER: 1,
    SQLType.REAL: 2,
    SQLType.VARCHAR: 3,
    SQLType.BOOLEAN: 4,
}
_CODE_TYPES = {code: sql_type for sql_type, code in _TYPE_CODES.items()}

_COLUMN_HEADER = struct.Struct("<BQ")


def serialize_column(data: ColumnData) -> bytes:
    """One column as a flat byte string.

    NULL positions are normalized to the type's zero filler before
    encoding, so serialization is a pure function of the column's
    *logical* content -- two columns that compare equal row-by-row
    produce identical bytes (the bit-identity the recovery tests and
    the differential fuzzer rely on).
    """
    n = len(data)
    nulls = np.asarray(data.nulls, dtype=bool)
    parts = [_COLUMN_HEADER.pack(_TYPE_CODES[data.sql_type], n),
             np.packbits(nulls).tobytes()]
    if data.sql_type == SQLType.INTEGER:
        values = np.where(nulls, 0, data.values).astype("<i8")
        parts.append(values.tobytes())
    elif data.sql_type == SQLType.REAL:
        values = np.where(nulls, 0.0, data.values).astype("<f8")
        parts.append(values.tobytes())
    elif data.sql_type == SQLType.BOOLEAN:
        values = np.where(nulls, False, data.values).astype(bool)
        parts.append(np.packbits(values).tobytes())
    else:  # VARCHAR
        encoded = [b"" if nulls[i] else str(data.values[i]).encode()
                   for i in range(n)]
        lengths = np.fromiter((len(e) for e in encoded), dtype="<u4",
                              count=n)
        parts.append(lengths.tobytes())
        parts.append(b"".join(encoded))
    return b"".join(parts)


def deserialize_column(raw: bytes) -> ColumnData:
    """Invert :func:`serialize_column`."""
    try:
        code, n = _COLUMN_HEADER.unpack_from(raw)
        sql_type = _CODE_TYPES[code]
    except (struct.error, KeyError) as exc:
        raise StorageError(f"unreadable column chunk: {exc}") from None
    offset = _COLUMN_HEADER.size
    bitmap_bytes = (n + 7) // 8
    nulls = _unpack_bits(raw[offset:offset + bitmap_bytes], n)
    offset += bitmap_bytes
    if sql_type == SQLType.INTEGER:
        values = np.frombuffer(raw, dtype="<i8", count=n,
                               offset=offset).astype(np.int64)
    elif sql_type == SQLType.REAL:
        values = np.frombuffer(raw, dtype="<f8", count=n,
                               offset=offset).astype(np.float64)
    elif sql_type == SQLType.BOOLEAN:
        values = _unpack_bits(raw[offset:offset + bitmap_bytes], n)
    else:  # VARCHAR
        lengths = np.frombuffer(raw, dtype="<u4", count=n,
                                offset=offset)
        offset += 4 * n
        values = np.empty(n, dtype=object)
        for i in range(n):
            size = int(lengths[i])
            values[i] = raw[offset:offset + size].decode()
            offset += size
    if len(values) != n:
        raise StorageError(
            f"column chunk truncated: expected {n} rows, "
            f"decoded {len(values)}")
    return ColumnData(sql_type, values, nulls)


def _unpack_bits(raw: bytes, n: int) -> np.ndarray:
    bits = np.unpackbits(np.frombuffer(raw, dtype=np.uint8), count=n)
    return bits.astype(bool)
