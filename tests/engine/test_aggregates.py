"""Unit tests for vectorized aggregates, especially NULL semantics."""

import numpy as np
import pytest

from repro.engine.aggregates import compute_aggregate, count_star
from repro.engine.column import ColumnData
from repro.engine.types import SQLType
from repro.errors import PlanningError, TypeMismatchError


def int_col(values):
    return ColumnData.from_values(SQLType.INTEGER, values)


def real_col(values):
    return ColumnData.from_values(SQLType.REAL, values)


def str_col(values):
    return ColumnData.from_values(SQLType.VARCHAR, values)


GROUPS = np.array([0, 0, 1, 1, 2], dtype=np.int64)


def agg(func, col, distinct=False, groups=GROUPS, n_groups=3):
    return compute_aggregate(func, col, distinct, groups,
                             n_groups).to_pylist()


class TestSum:
    def test_basic(self):
        assert agg("sum", int_col([1, 2, 3, 4, 5])) == [3, 7, 5]

    def test_skips_nulls(self):
        assert agg("sum", int_col([1, None, None, 4, None])) == \
            [1, 4, None]

    def test_all_null_group_is_null(self):
        assert agg("sum", int_col([None, None, 1, 1, 1])) == \
            [None, 2, 1]

    def test_integer_sum_stays_integer(self):
        result = compute_aggregate("sum", int_col([1, 2, 3, 4, 5]),
                                   False, GROUPS, 3)
        assert result.sql_type == SQLType.INTEGER

    def test_real_sum(self):
        assert agg("sum", real_col([0.5, 0.25, 1.0, 1.0, 0.0])) == \
            [0.75, 2.0, 0.0]

    def test_varchar_raises(self):
        with pytest.raises(TypeMismatchError):
            agg("sum", str_col(["a"] * 5))


class TestCount:
    def test_count_star(self):
        assert count_star(GROUPS, 3).to_pylist() == [2, 2, 1]

    def test_count_skips_nulls(self):
        assert agg("count", int_col([1, None, None, None, 5])) == \
            [1, 0, 1]

    def test_count_distinct(self):
        col = int_col([7, 7, 7, 8, None])
        assert agg("count", col, distinct=True) == [1, 2, 0]

    def test_count_distinct_strings(self):
        col = str_col(["a", "b", "a", "a", "c"])
        assert agg("count", col, distinct=True) == [2, 1, 1]

    def test_count_empty_group_is_zero_not_null(self):
        groups = np.array([0, 0], dtype=np.int64)
        result = compute_aggregate("count", int_col([1, 2]), False,
                                   groups, 2)
        assert result.to_pylist() == [2, 0]


class TestAvg:
    def test_basic(self):
        assert agg("avg", int_col([1, 3, 10, 20, 7])) == [2.0, 15.0, 7.0]

    def test_nulls_excluded_from_denominator(self):
        assert agg("avg", int_col([4, None, 1, 3, None])) == \
            [4.0, 2.0, None]

    def test_returns_real(self):
        result = compute_aggregate("avg", int_col([1, 2, 3, 4, 5]),
                                   False, GROUPS, 3)
        assert result.sql_type == SQLType.REAL


class TestMinMax:
    def test_min_max_int(self):
        col = int_col([5, 2, -1, 8, 0])
        assert agg("min", col) == [2, -1, 0]
        assert agg("max", col) == [5, 8, 0]

    def test_nulls_skipped(self):
        col = int_col([None, 2, None, None, None])
        assert agg("min", col) == [2, None, None]

    def test_varchar(self):
        col = str_col(["pear", "apple", "fig", "kiwi", "a"])
        assert agg("min", col) == ["apple", "fig", "a"]
        assert agg("max", col) == ["pear", "kiwi", "a"]

    def test_varchar_with_nulls(self):
        col = str_col([None, "b", None, None, "z"])
        assert agg("max", col) == ["b", None, "z"]


class TestErrors:
    def test_unknown_function(self):
        with pytest.raises(PlanningError):
            agg("median", int_col([1, 2, 3, 4, 5]))

    def test_distinct_only_for_count(self):
        with pytest.raises(PlanningError):
            agg("sum", int_col([1, 2, 3, 4, 5]), distinct=True)
