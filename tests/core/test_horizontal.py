"""Unit tests for Hpct/Hagg CASE-strategy code generation and
execution."""

import pytest

from repro.core import (HorizontalStrategy, generate_plan,
                        run_percentage_query)
from repro.core import plan as plan_mod
from repro.core.naming import NamingPolicy
from repro.core.vertical import VerticalStrategy
from repro.errors import PercentageQueryError

STORE_QUERY = ("SELECT store, Hpct(salesAmt BY dweek), sum(salesAmt) "
               "FROM sales GROUP BY store")

#: Table 3 of the paper (percentages rounded to 2 decimals there).
TABLE3 = {
    2: {"Mo": 0.07, "Tu": 0.06, "We": 0.08, "Th": 0.09, "Fr": 0.16,
        "Sa": 0.24, "Su": 0.30, "total": 2500.0},
    4: {"Mo": 0.00, "Tu": 0.09, "We": 0.09, "Th": 0.09, "Fr": 0.18,
        "Sa": 0.20, "Su": 0.35, "total": 4000.0},
    7: {"Mo": 0.08, "Tu": 0.08, "We": 0.04, "Th": 0.04, "Fr": 0.08,
        "Sa": 0.35, "Su": 0.33, "total": 1600.0},
}


def check_table3(result):
    names = result.column_names()
    for row in result.to_rows():
        record = dict(zip(names, row))
        expected = TABLE3[record["store"]]
        for day, pct in expected.items():
            if day == "total":
                assert record["sum_salesAmt"] == pct
            else:
                assert record[day] == pytest.approx(pct, abs=0.005)


class TestDirectStrategy:
    def test_reproduces_table3(self, store_db):
        result = run_percentage_query(store_db, STORE_QUERY,
                                      HorizontalStrategy(source="F"))
        check_table3(result)

    def test_single_transpose_statement(self, store_db):
        plan = generate_plan(store_db, STORE_QUERY,
                             HorizontalStrategy(source="F"))
        purposes = [s.purpose for s in plan.steps]
        assert purposes == [plan_mod.DISCOVER, plan_mod.CREATE_TEMP,
                            plan_mod.TRANSPOSE]
        assert "CASE WHEN dweek = 'Fr'" in plan.steps[2].sql

    def test_missing_cell_is_zero(self, store_db):
        result = run_percentage_query(store_db, STORE_QUERY,
                                      HorizontalStrategy(source="F"))
        names = result.column_names()
        store4 = dict(zip(names, result.to_rows()[1]))
        assert store4["store"] == 4
        assert store4["Mo"] == 0.0

    def test_rows_sum_to_one(self, store_db):
        result = run_percentage_query(store_db, STORE_QUERY,
                                      HorizontalStrategy(source="F"))
        day_columns = [c for c in result.column_names()
                       if c not in ("store", "sum_salesAmt")]
        names = result.column_names()
        for row in result.to_rows():
            record = dict(zip(names, row))
            assert sum(record[c] for c in day_columns) == \
                pytest.approx(1.0)


class TestIndirectStrategy:
    def test_matches_direct(self, store_db):
        direct = run_percentage_query(store_db, STORE_QUERY,
                                      HorizontalStrategy(source="F"))
        indirect = run_percentage_query(store_db, STORE_QUERY,
                                        HorizontalStrategy(source="FV"))
        assert direct.column_names() == indirect.column_names()
        for a, b in zip(direct.to_rows(), indirect.to_rows()):
            assert a == pytest.approx(b)

    def test_fv_step_uses_vertical_generator(self, store_db):
        plan = generate_plan(store_db, STORE_QUERY,
                             HorizontalStrategy(source="FV"))
        purposes = [s.purpose for s in plan.steps]
        assert plan_mod.AGGREGATE_FK in purposes
        assert plan_mod.DIVIDE in purposes       # the Vpct division
        assert plan_mod.TRANSPOSE in purposes

    def test_vertical_strategy_forwarded(self, store_db):
        strategy = HorizontalStrategy(
            source="FV", vertical=VerticalStrategy(use_update=True))
        plan = generate_plan(store_db, STORE_QUERY, strategy)
        assert any(s.purpose == plan_mod.UPDATE_DIVIDE
                   for s in plan.steps)

    def test_count_distinct_rejected_indirect(self, store_db):
        with pytest.raises(PercentageQueryError):
            generate_plan(
                store_db,
                "SELECT store, count(DISTINCT rid BY dweek) "
                "FROM sales GROUP BY store",
                HorizontalStrategy(source="FV"))


class TestNoGroupBy:
    @pytest.mark.parametrize("source", ["F", "FV"])
    def test_single_global_row(self, store_db, source):
        result = run_percentage_query(
            store_db, "SELECT Hpct(salesAmt BY store) FROM sales",
            HorizontalStrategy(source=source))
        assert result.n_rows == 1
        total = 2500 + 4000 + 1600
        row = dict(zip(result.column_names(), result.to_rows()[0]))
        assert row["c2"] == pytest.approx(2500 / total)
        assert row["c4"] == pytest.approx(4000 / total)


class TestMultipleTerms:
    def test_two_hpct_terms_prefixed(self, employee_db):
        result = run_percentage_query(
            employee_db,
            "SELECT Hpct(salary BY gender) AS g, "
            "Hpct(salary BY maritalstatus) AS m FROM employee")
        names = result.column_names()
        assert any(n.startswith("g_") for n in names)
        assert any(n.startswith("m_") for n in names)
        row = dict(zip(names, result.to_rows()[0]))
        g_cols = [n for n in names if n.startswith("g_")]
        assert sum(row[n] for n in g_cols) == pytest.approx(1.0)

    def test_hpct_with_hagg(self, employee_db):
        result = run_percentage_query(
            employee_db,
            "SELECT gender, Hpct(salary BY maritalstatus), "
            "max(salary BY maritalstatus) AS mx FROM employee "
            "GROUP BY gender")
        names = result.column_names()
        rows = {r[0]: dict(zip(names, r)) for r in result.to_rows()}
        # Both terms are horizontal, so combo columns carry the term
        # label as a prefix.
        assert rows["M"]["hpct_salary_Single"] == pytest.approx(1.0)
        assert rows["M"]["mx_Single"] == 45000.0
        assert rows["M"]["mx_Married"] is None


class TestNaming:
    def test_full_style(self, store_db):
        result = run_percentage_query(
            store_db,
            "SELECT store, Hpct(salesAmt BY dweek) FROM sales "
            "GROUP BY store",
            HorizontalStrategy(naming=NamingPolicy(style="full")))
        assert "dweek_Mo" in result.column_names()

    def test_value_collision_dedupe(self, db):
        db.load_table("f", [("g", "int"), ("a", "varchar"),
                            ("b", "varchar"), ("m", "real")],
                      [(1, "x", "y", 1.0), (1, "x_y", None, 2.0)])
        result = run_percentage_query(
            db, "SELECT g, sum(m BY a, b) FROM f GROUP BY g")
        names = result.column_names()
        assert len(names) == len({n.lower() for n in names})


class TestVerticalPartitioning:
    def test_wide_result_partitions_and_reassembles(self):
        from repro import Database
        db = Database(max_columns=6)
        rows = [(g, d, float(g * 10 + d))
                for g in (1, 2) for d in range(8)]
        db.load_table("f", [("g", "int"), ("d", "int"), ("m", "real")],
                      rows)
        result = run_percentage_query(
            db, "SELECT g, Hpct(m BY d) FROM f GROUP BY g")
        # 8 percentage columns cannot fit a 6-column table next to the
        # key; the plan must partition yet return the full result.
        assert result.schema.width() == 9
        names = result.column_names()
        for row in result.to_rows():
            record = dict(zip(names, row))
            total = sum(v for k, v in record.items() if k != "g")
            assert total == pytest.approx(1.0)

    def test_partition_tables_respect_limit(self):
        from repro import Database
        from repro.core.execute import execute_plan
        db = Database(max_columns=6)
        rows = [(g, d, float(d)) for g in (1, 2) for d in range(8)]
        db.load_table("f", [("g", "int"), ("d", "int"), ("m", "real")],
                      rows)
        plan = generate_plan(db, "SELECT g, Hpct(m BY d) FROM f "
                                 "GROUP BY g")
        execute_plan(db, plan, keep_temps=True)
        fh_tables = [t for t in db.table_names() if "_fh" in t]
        assert len(fh_tables) >= 2
        for name in fh_tables:
            assert db.table(name).schema.width() <= 6


class TestThreeWayCellSemantics:
    """An Hpct cell distinguishes three situations, in both the direct
    CASE transpose and the indirect FV path:

    * sick group (denominator zero or all-NULL)  -> whole row NULL;
    * combination present but its measures all NULL -> NULL cell;
    * combination genuinely absent from the group -> 0 cell.

    This keeps Hpct transposition-consistent with Vpct on the same
    cells.
    """

    SOURCES = ["F", "FV"]

    def _run(self, db, source):
        return run_percentage_query(
            db, "SELECT g, Hpct(m BY d) FROM f GROUP BY g",
            HorizontalStrategy(source=source))

    @pytest.mark.parametrize("source", SOURCES)
    def test_all_null_denominator_nulls_the_row(self, db, source):
        db.load_table("f", [("g", "varchar"), ("d", "varchar"),
                            ("m", "real")],
                      [("a", "x", None), ("a", "y", None),
                       ("b", "x", 2.0)])
        result = self._run(db, source)
        names = result.column_names()
        rows = {r[0]: dict(zip(names, r)) for r in result.to_rows()}
        assert rows["a"]["x"] is None
        assert rows["a"]["y"] is None
        assert rows["b"]["x"] == pytest.approx(1.0)
        assert rows["b"]["y"] == 0          # absent combination

    @pytest.mark.parametrize("source", SOURCES)
    def test_zero_denominator_nulls_the_row(self, db, source):
        db.load_table("f", [("g", "varchar"), ("d", "varchar"),
                            ("m", "real")],
                      [("a", "x", 2.5), ("a", "y", -2.5),
                       ("b", "x", 2.0)])
        result = self._run(db, source)
        names = result.column_names()
        rows = {r[0]: dict(zip(names, r)) for r in result.to_rows()}
        assert rows["a"]["x"] is None
        assert rows["a"]["y"] is None
        assert rows["b"]["x"] == pytest.approx(1.0)

    @pytest.mark.parametrize("source", SOURCES)
    def test_present_all_null_cell_differs_from_absent(self, db,
                                                       source):
        # Group "a" is healthy (x sums to 4): its all-NULL y cell is
        # NULL, its absent z cell is 0.
        db.load_table("f", [("g", "varchar"), ("d", "varchar"),
                            ("m", "real")],
                      [("a", "x", 4.0), ("a", "y", None),
                       ("b", "z", 1.0)])
        result = self._run(db, source)
        names = result.column_names()
        rows = {r[0]: dict(zip(names, r)) for r in result.to_rows()}
        assert rows["a"]["x"] == pytest.approx(1.0)
        assert rows["a"]["y"] is None
        assert rows["a"]["z"] == 0


class TestEmptyTableGlobalAggregates:
    """A global count over an empty table is 0 in every path; the
    indirect strategy's recombination (a sum of partial counts over an
    empty FV) must coalesce to 0 rather than report NULL."""

    def _load(self, db):
        db.load_table("f", [("d", "varchar"), ("m", "int")], [])

    @pytest.mark.parametrize("indirect", [False, True],
                             ids=["direct", "indirect"])
    def test_global_count_star_is_zero(self, db, indirect):
        self._load(db)
        # The horizontal term contributes no columns (DISTINCT d over
        # an empty table is empty); only the count survives.
        result = run_percentage_query(
            db, "SELECT sum(m BY d DEFAULT -1), count(*) FROM f",
            HorizontalStrategy(source="FV" if indirect else "F"))
        assert result.to_rows() == [(0,)]

    @pytest.mark.parametrize("indirect", [False, True],
                             ids=["direct", "indirect"])
    def test_count_backfills_zero_but_sum_stays_null(self, db,
                                                     indirect):
        # One row whose measure is NULL: count of the cell is 0, the
        # sum of the same cell is NULL (SQL's empty-sum semantics).
        db.load_table("f", [("d", "varchar"), ("m", "int")],
                      [("x", None)])
        result = run_percentage_query(
            db, "SELECT count(m BY d), sum(m BY d), count(*) FROM f",
            HorizontalStrategy(source="FV" if indirect else "F"))
        record = dict(zip(result.column_names(),
                          result.to_rows()[0]))
        assert record["count_m_x"] == 0
        assert record["sum_m_x"] is None
        assert record["count_3"] == 1
