"""Observability under concurrency.

* The metrics registry never drops increments under contention (the
  lost-update race its single lock exists to prevent).
* Parallel hash-partitioned group-by parents each partition span under
  the operator span that fanned it out, even though the work ran on
  pool threads with empty span stacks.
* Concurrent traced sessions through the query service produce well
  formed trees per script and an accurate in-flight gauge afterwards.
"""

from __future__ import annotations

import threading

from repro.api.database import Database
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import validate_span_tree
from repro.service import QueryService


class TestRegistryRaces:
    N_THREADS = 8
    N_INCREMENTS = 2000

    def test_counter_increments_never_lost(self):
        registry = MetricsRegistry()

        def work():
            for _ in range(self.N_INCREMENTS):
                registry.counter("hits").inc()

        threads = [threading.Thread(target=work)
                   for _ in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.value("hits") == \
            self.N_THREADS * self.N_INCREMENTS

    def test_histogram_observations_never_lost(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.5,))

        def work():
            for i in range(self.N_INCREMENTS):
                hist.observe(0.25 if i % 2 else 0.75)

        threads = [threading.Thread(target=work)
                   for _ in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.count == self.N_THREADS * self.N_INCREMENTS

    def test_stats_add_from_many_threads(self):
        from repro.engine.stats import StatsCollector
        stats = StatsCollector()

        def work():
            for _ in range(self.N_INCREMENTS):
                stats.add(rows_scanned=1, rows_written=2)

        threads = [threading.Thread(target=work)
                   for _ in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = self.N_THREADS * self.N_INCREMENTS
        assert stats.rows_scanned == total
        assert stats.rows_written == 2 * total


class TestParallelPartitionSpans:
    def _parallel_db(self) -> Database:
        db = Database(tracing=True, parallel_workers=4,
                      parallel_row_threshold=1)
        rows = ", ".join(f"({i % 7}, {float(i)})" for i in range(64))
        db.execute("CREATE TABLE t (d INT, a REAL)")
        db.execute(f"INSERT INTO t VALUES {rows}")
        return db

    def test_partition_spans_parent_under_group_by_build(self):
        db = self._parallel_db()
        db.tracer.reset()
        db.execute("SELECT d, sum(a) FROM t GROUP BY d")
        (root,) = db.tracer.roots()
        validate_span_tree(root)
        builds = root.find(name="group-by-build")
        assert builds, "expected a group-by-build operator span"
        partitions = root.find(name="partition")
        assert partitions, "parallel run must emit partition spans"
        # every partition span hangs off an operator span, and their
        # indexes cover the fan-out without duplicates
        for build in builds:
            local = [c for c in build.children
                     if c.name == "partition"]
            indexes = sorted(c.attrs["partition"] for c in local)
            assert indexes == list(range(len(local)))
        assert all(p.kind == "operator" for p in partitions)

    def test_parallel_results_and_trace_agree_with_serial(self):
        parallel = self._parallel_db()
        serial = Database(tracing=True)
        rows = ", ".join(f"({i % 7}, {float(i)})" for i in range(64))
        serial.execute("CREATE TABLE t (d INT, a REAL)")
        serial.execute(f"INSERT INTO t VALUES {rows}")
        sql = "SELECT d, sum(a) FROM t GROUP BY d ORDER BY d"
        assert parallel.query(sql) == serial.query(sql)
        for db in (parallel, serial):
            for root in db.tracer.roots():
                validate_span_tree(root)


class TestTracedServiceConcurrency:
    N_SESSIONS = 6
    N_SCRIPTS = 10

    def test_concurrent_scripts_trace_cleanly(self):
        db = Database(tracing=True)
        db.execute("CREATE TABLE t (d INT, a REAL)")
        db.execute("INSERT INTO t VALUES (1, 10.0), (2, 20.0)")
        service = QueryService(
            db, workers=4,
            max_queue_depth=self.N_SESSIONS * self.N_SCRIPTS,
            session_inflight_cap=self.N_SCRIPTS)
        try:
            sessions = [service.create_session()
                        for _ in range(self.N_SESSIONS)]
            futures = []
            for session in sessions:
                for _ in range(self.N_SCRIPTS):
                    futures.append(session.submit(
                        "SELECT d, sum(a) FROM t GROUP BY d"))
            reports = [f.result() for f in futures]
        finally:
            service.shutdown()
        for report in reports:
            assert report.trace is not None
            validate_span_tree(report.trace)
            assert report.trace.attrs["script_kind"] == "read"
            assert report.trace.find(kind="statement")
        # every admitted script finished: the gauge drained to zero
        assert db.metrics.gauge("service_inflight_queries").value == 0
        waits = db.metrics.histogram("service_queue_wait_seconds",
                                     session=str(sessions[0].id))
        assert waits.count == self.N_SCRIPTS
