"""The SPJ strategy for horizontal aggregations (companion paper,
Section 3.4).

The SPJ ("select-project-join") strategy evaluates a horizontal
aggregation using relational operators only:

1. optionally pre-aggregate into ``FV`` (grouped by
   ``D1..Dj + BY columns``) -- the *indirect* sub-strategy;
2. build ``F0``, the key table: every existing ``D1..Dj`` combination;
3. build one projected table ``F_I`` per BY-combination, each holding
   that combination's aggregate per group;
4. assemble ``FH`` with N left outer joins of ``F0`` against every
   ``F_I`` (missing combinations surface as NULL, replaced by DEFAULT
   when given).

The paper writes the chained joins as ``F1.D1 = F2.D1 AND ...``; we
anchor every ON condition at ``F0`` instead, which is equivalent when
all matches exist and correct when they do not (a NULL key from an
earlier unmatched join can never match the next table).  This deviation
is recorded in DESIGN.md.

The strategy exists to reproduce the companion paper's Table 3, where
SPJ loses to CASE by one to two orders of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.api.database import Database
from repro.core import common, model, plan as plan_mod
from repro.core.horizontal import (_hagg_type_name, _match_condition,
                                   _union_by_columns,
                                   discover_combinations)
from repro.core.naming import NamingPolicy, combo_column_name
from repro.core.partitioning import split_result_columns
from repro.core.plan import GeneratedPlan
from repro.errors import PercentageQueryError
from repro.sql.formatter import quote_ident


@dataclass(frozen=True)
class HorizontalAggStrategy:
    """SPJ evaluation knobs (companion paper Table 3 columns).

    ``source="F"`` aggregates every ``F_I`` straight from ``F``;
    ``source="FV"`` pre-aggregates once and projects from ``FV``.
    """

    source: str = "F"
    naming: NamingPolicy = field(default_factory=NamingPolicy)

    def __post_init__(self) -> None:
        if self.source not in ("F", "FV"):
            raise ValueError("source must be 'F' or 'FV'")

    def describe(self) -> str:
        return f"horizontal SPJ from {self.source}"


def generate_spj(db: Database, query: model.PercentageQuery,
                 strategy: Optional[HorizontalAggStrategy] = None
                 ) -> GeneratedPlan:
    """Generate the SPJ statement sequence for a horizontal
    aggregation query (Hagg terms and plain vertical terms; Hpct is
    rejected -- the original paper evaluates percentages with the CASE
    forms only)."""
    strategy = strategy or HorizontalAggStrategy()
    if not query.horizontal_terms():
        raise PercentageQueryError("the query has no horizontal term")
    if any(t.kind == model.HPCT for t in query.terms):
        raise PercentageQueryError(
            "the SPJ strategy applies to generalized horizontal "
            "aggregations (sum/count/avg/min/max BY); use the CASE "
            "strategies for Hpct()")
    for term in query.terms:
        if term.distinct and strategy.source == "FV":
            raise PercentageQueryError(
                "count(DISTINCT ...) is not distributive; SPJ from FV "
                "cannot evaluate it")
        if term.func in ("var", "stdev") and strategy.source == "FV":
            raise PercentageQueryError(
                f"{term.func}() is not distributive; SPJ from FV "
                f"cannot evaluate it")

    prefix = plan_mod.fresh_prefix("sp")
    result = GeneratedPlan(strategy=strategy,
                           description=strategy.describe())

    from repro.core.vertical import (_materialize_if_needed,
                                     replace_table)
    table = _materialize_if_needed(db, query, prefix, result)
    fact = replace_table(query, table)

    combos = discover_combinations(db, fact, result)
    base_columns: dict[int, dict[str, str]] = {}
    if strategy.source == "FV":
        source = _generate_plain_fv(db, fact, base_columns, prefix,
                                    result)
    else:
        source = fact.table

    f0 = _generate_f0(db, fact, source, prefix, result)
    projected = _generate_projected_tables(db, fact, combos, source,
                                           base_columns, strategy,
                                           prefix, result)
    _assemble(db, fact, f0, projected, prefix, result)
    return result


# ----------------------------------------------------------------------
@dataclass
class _Projected:
    """One per-combination table F_I (or a plain-term table)."""

    table: str
    column: str          # output column name
    type_name: str
    default: Optional[object]


def _generate_plain_fv(db: Database, query: model.PercentageQuery,
                       base_columns: dict[int, dict[str, str]],
                       prefix: str, result: GeneratedPlan) -> str:
    """The indirect sub-strategy's FV: a plain vertical aggregation at
    the D1..Dj + allBY level, reusing the CASE module's layout."""
    from repro.core.horizontal import _generate_fv, HorizontalStrategy

    all_by = _union_by_columns(query)
    fv_group = tuple(query.group_by) + all_by
    return _generate_fv(db, query, all_by, fv_group, base_columns,
                        HorizontalStrategy(source="FV"), prefix, result)


def _generate_f0(db: Database, query: model.PercentageQuery,
                 source: str, prefix: str,
                 result: GeneratedPlan) -> str:
    """F0 defines the result rows: every existing D1..Dj combination."""
    f0 = f"{prefix}_f0"
    if not query.group_by:
        # Rule (1) of the companion paper: group by a constant so code
        # generation always has a key ("rows can be grouped by a
        # constant value, e.g. D1 = 0").
        result.add(f"CREATE TABLE {f0} (_k INT) PRIMARY KEY (_k)",
                   plan_mod.CREATE_TEMP)
        result.temp_tables.append(f0)
        result.add(f"INSERT INTO {f0} VALUES (0)", plan_mod.SPJ_PROJECT)
        return f0
    key = common.column_list(query.group_by)
    defs = common.typed_columns_sql(db, query.table, query.group_by)
    result.add(f"CREATE TABLE {f0} (" + ", ".join(defs)
               + f") PRIMARY KEY ({key})", plan_mod.CREATE_TEMP)
    result.temp_tables.append(f0)
    result.add(f"INSERT INTO {f0} SELECT DISTINCT {key} FROM {source}"
               + common.where_suffix(query.where
                                     if source == query.table else None),
               plan_mod.SPJ_PROJECT)
    return f0


def _generate_projected_tables(db: Database,
                               query: model.PercentageQuery,
                               combos: dict[int, list[tuple]],
                               source: str,
                               base_columns: dict[int, dict[str, str]],
                               strategy: HorizontalAggStrategy,
                               prefix: str, result: GeneratedPlan
                               ) -> list[_Projected]:
    """One aggregate table per (term, BY-combination), plus one table
    per plain vertical term."""
    used = {c.lower() for c in query.group_by}
    multiple = len(query.horizontal_terms()) > 1
    max_len = db.catalog.max_name_length
    where_base = query.where if source == query.table else None

    key = common.column_list(query.group_by)
    key_defs = common.typed_columns_sql(db, query.table, query.group_by) \
        if query.group_by else ["_k INT"]
    key_select = key if query.group_by else "0"

    projected: list[_Projected] = []
    counter = 0
    for term in query.terms:
        if term.is_horizontal:
            label = f"{term.label()}_" if multiple else ""
            for values in combos[term.position]:
                counter += 1
                name = combo_column_name(term.by_columns, values,
                                         strategy.naming, max_len, used,
                                         prefix=label)
                table = f"{prefix}_p{counter}"
                aggregate = _aggregate_sql(term, base_columns,
                                           strategy.source)
                match = _match_condition(term.by_columns, values)
                conditions = [match]
                if where_base is not None:
                    conditions.append(
                        common.where_suffix(where_base)[7:])
                type_name = _hagg_type_name(db, query.table, term)
                _emit_projection(db, query, table, name, type_name,
                                 aggregate, " AND ".join(conditions),
                                 source, key_defs, key_select, result)
                projected.append(_Projected(table, name, type_name,
                                            term.default))
        else:
            counter += 1
            name = common.vertical_term_name(term, used)
            table = f"{prefix}_p{counter}"
            aggregate = _aggregate_sql(term, base_columns,
                                       strategy.source)
            condition = common.where_suffix(where_base)[7:] \
                if where_base is not None else ""
            type_name = _hagg_type_name(db, query.table, term) \
                if term.argument is not None else "INT"
            _emit_projection(db, query, table, name, type_name,
                             aggregate, condition, source, key_defs,
                             key_select, result)
            projected.append(_Projected(table, name, type_name, None))
    return projected


def _aggregate_sql(term: model.AggregateTerm,
                   base_columns: dict[int, dict[str, str]],
                   source: str) -> str:
    if source == "F":
        if term.argument is None:
            return "count(*)"
        distinct = "DISTINCT " if term.distinct else ""
        return f"{term.func}({distinct}{common.argument_sql(term)})"
    # From FV: distributive re-aggregation of the base columns.
    from repro.core.horizontal import _distributive_sql
    return _distributive_sql(term, base_columns[term.position],
                             match=None)


def _emit_projection(db: Database, query: model.PercentageQuery,
                     table: str, column: str, type_name: str,
                     aggregate: str, condition: str, source: str,
                     key_defs: list[str], key_select: str,
                     result: GeneratedPlan) -> None:
    defs = key_defs + [f"{quote_ident(column)} {type_name}"]
    key = common.column_list(query.group_by) if query.group_by else "_k"
    result.add(f"CREATE TABLE {table} (" + ", ".join(defs)
               + f") PRIMARY KEY ({key})", plan_mod.CREATE_TEMP)
    result.temp_tables.append(table)
    where = f" WHERE {condition}" if condition else ""
    group = f" GROUP BY {common.column_list(query.group_by)}" \
        if query.group_by else ""
    result.add(f"INSERT INTO {table} SELECT {key_select}, {aggregate}"
               f" FROM {source}{where}{group}", plan_mod.SPJ_PROJECT)


def _assemble(db: Database, query: model.PercentageQuery, f0: str,
              projected: list[_Projected], prefix: str,
              result: GeneratedPlan) -> None:
    """FH = F0 left-outer-joined with every projected table."""
    keys = list(query.group_by) or ["_k"]
    key_defs = common.typed_columns_sql(db, query.table, query.group_by) \
        if query.group_by else ["_k INT"]
    key = common.column_list(keys)

    result_columns = []
    for p in projected:
        select = f"{p.table}.{quote_ident(p.column)}"
        if p.default is not None:
            select = (f"coalesce({select}, "
                      f"{common.literal_sql(p.default)})")
        result_columns.append((p, select))

    partitions = split_result_columns(
        n_keys=len(keys), columns=result_columns,
        max_columns=db.catalog.max_columns)

    tables = []
    for i, chunk in enumerate(partitions):
        fh = f"{prefix}_fh" if len(partitions) == 1 \
            else f"{prefix}_fh{i + 1}"
        tables.append(fh)
        defs = key_defs + [f"{quote_ident(p.column)} {p.type_name}"
                           for p, _ in chunk]
        result.add(f"CREATE TABLE {fh} (" + ", ".join(defs)
                   + f") PRIMARY KEY ({key})", plan_mod.CREATE_TEMP)
        result.temp_tables.append(fh)
        selects = [common.column_list(keys, prefix=f0)]
        joins = []
        for p, select in chunk:
            selects.append(select)
            # Null-safe ON: a NULL grouping key in F0 must still find
            # its per-combination aggregate row.
            joins.append(f" LEFT OUTER JOIN {p.table} ON "
                         + common.null_safe_equality_join(f0, p.table,
                                                          keys))
        result.add(f"INSERT INTO {fh} SELECT " + ", ".join(selects)
                   + f" FROM {f0}" + "".join(joins), plan_mod.ASSEMBLE)

    visible_keys = common.column_list(query.group_by) \
        if query.group_by else ""
    if len(tables) == 1:
        result.result_table = tables[0]
        if query.group_by:
            result.result_select = (f"SELECT * FROM {tables[0]} "
                                    f"ORDER BY {visible_keys}")
        else:
            names = ", ".join(quote_ident(p.column)
                              for p, _ in partitions[0])
            result.result_select = f"SELECT {names} FROM {tables[0]}"
        return

    first = tables[0]
    selects = [common.column_list(keys, prefix=first)] if query.group_by \
        else []
    for table, chunk in zip(tables, partitions):
        selects.extend(f"{table}.{quote_ident(p.column)}"
                       for p, _ in chunk)
    conditions = [common.null_safe_equality_join(first, other, keys)
                  for other in tables[1:]]
    order = f" ORDER BY {common.column_list(query.group_by)}" \
        if query.group_by else ""
    result.result_table = None
    result.result_select = ("SELECT " + ", ".join(selects) + " FROM "
                            + ", ".join(tables)
                            + f" WHERE {' AND '.join(conditions)}"
                            + order)
