"""Shared helpers for the code generators."""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.api.database import Database
from repro.core import model
from repro.engine.types import SQLType, infer_type
from repro.errors import PercentageQueryError
from repro.sql import ast
from repro.sql.formatter import format_expr, format_select, quote_ident


def infer_expr_type(db: Database, table: str, expr: ast.Expr) -> SQLType:
    """Best-effort static type of an argument expression over ``table``.

    Column references use the schema; literals their own type; any
    compound arithmetic is assumed REAL (safe for aggregation storage).
    """
    if isinstance(expr, ast.ColumnRef):
        schema = db.table(table).schema
        if schema.has_column(expr.name):
            return schema.column_type(expr.name)
        return SQLType.REAL
    if isinstance(expr, ast.Literal) and expr.value is not None:
        return infer_type(expr.value)
    return SQLType.REAL


def storage_type(func: str, arg_type: SQLType) -> SQLType:
    """Column type for storing an aggregate's value in a temp table.

    Sums are widened to REAL (the UPDATE-based strategy overwrites the
    same column with a percentage, and integer sums lose nothing a
    percentage query cares about); counts are INTEGER; min/max keep
    the argument type; avg is REAL.
    """
    if func == "count":
        return SQLType.INTEGER
    if func in ("min", "max"):
        return arg_type
    return SQLType.REAL


def column_type_name(sql_type: SQLType) -> str:
    return {SQLType.INTEGER: "INT", SQLType.REAL: "REAL",
            SQLType.VARCHAR: "VARCHAR",
            SQLType.BOOLEAN: "BOOLEAN"}[sql_type]


def typed_columns_sql(db: Database, table: str,
                      columns: Sequence[str]) -> list[str]:
    """``"name TYPE"`` fragments for dimension columns copied from
    ``table``'s schema."""
    schema = db.table(table).schema
    fragments = []
    for name in columns:
        sql_type = schema.column_type(name)
        fragments.append(f"{quote_ident(name)} "
                         f"{column_type_name(sql_type)}")
    return fragments


def where_suffix(where: Optional[ast.Expr]) -> str:
    if where is None:
        return ""
    return f" WHERE {format_expr(where)}"


def column_list(columns: Sequence[str], prefix: str = "") -> str:
    if prefix:
        return ", ".join(f"{prefix}.{quote_ident(c)}" for c in columns)
    return ", ".join(quote_ident(c) for c in columns)


def equality_join(left: str, right: str,
                  columns: Sequence[str]) -> str:
    """``l.c1 = r.c1 AND l.c2 = r.c2 ...``"""
    return " AND ".join(
        f"{left}.{quote_ident(c)} = {right}.{quote_ident(c)}"
        for c in columns)


def null_safe_equality_join(left: str, right: str,
                            columns: Sequence[str]) -> str:
    """Equality join where NULL keys match each other.

    GROUP BY places all NULLs of a dimension into one group (Gray's
    data-cube semantics), so joining aggregate levels on plain ``=``
    silently drops NULL groups.  The engine's planner recognizes this
    exact pattern and keeps it a hash equi-join.
    """

    def one(c: str) -> str:
        l, r = f"{left}.{quote_ident(c)}", f"{right}.{quote_ident(c)}"
        return f"({l} = {r} OR ({l} IS NULL AND {r} IS NULL))"

    return " AND ".join(one(c) for c in columns)


def vertical_term_name(term: model.AggregateTerm,
                       used: set[str]) -> str:
    """Output column name for a (vertical or percentage) term."""
    if term.alias:
        base = term.alias
    elif term.argument is not None and \
            isinstance(term.argument, ast.ColumnRef):
        base = term.argument.name
        if term.kind == model.VERTICAL:
            base = f"{term.func}_{base}"
    else:
        base = f"{term.func}_{term.position + 1}"
    name = base
    i = 2
    while name.lower() in used:
        name = f"{base}_{i}"
        i += 1
    used.add(name.lower())
    return name


def literal_sql(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def materialization_select(query: model.PercentageQuery) -> str:
    """The SELECT that materializes F from a multi-table FROM clause.

    Projects every column the downstream statements need: grouping
    columns, every BY column, and every column referenced inside
    aggregate arguments.  Names become bare in the materialized table.
    """
    source = query.source_select
    if source is None:
        raise PercentageQueryError("query has a plain base table; no "
                                   "materialization needed")
    needed: list[str] = []

    def want(name: str) -> None:
        lowered = name.lower()
        if lowered not in needed:
            needed.append(lowered)

    for column in query.group_by:
        want(column)
    for term in query.terms:
        for column in term.by_columns:
            want(column)
        if term.argument is not None:
            for ref in ast.column_refs(term.argument):
                want(ref.name)
    items = tuple(ast.SelectItem(ast.ColumnRef(c)) for c in needed)
    shell = ast.Select(items=items, from_=source.from_,
                       where=source.where)
    return format_select(shell)


def argument_sql(term: model.AggregateTerm) -> str:
    if term.argument is None:
        return "*"
    return format_expr(term.argument)
