"""Unit tests for the missing-rows handling options (Section 3.1)."""

import pytest

from repro import Database
from repro.core import VerticalStrategy, run_percentage_query
from repro.errors import PercentageQueryError


@pytest.fixture
def gap_db(db: Database) -> Database:
    """Stores x days with a hole: store 2 has no 'Tu' rows."""
    db.load_table(
        "f", [("store", "int"), ("day", "varchar"), ("amt", "real")],
        [(1, "Mo", 10.0), (1, "Tu", 30.0),
         (2, "Mo", 8.0)])
    return db


QUERY = "SELECT store, day, Vpct(amt BY day) FROM f GROUP BY store, day"


class TestNone:
    def test_missing_cells_absent_by_default(self, gap_db):
        result = run_percentage_query(gap_db, QUERY)
        assert result.n_rows == 3


class TestPostProcessing:
    def test_inserts_zero_rows(self, gap_db):
        result = run_percentage_query(
            gap_db, QUERY, VerticalStrategy(missing_rows="post"))
        rows = {(r[0], r[1]): r[2] for r in result.to_rows()}
        assert rows[(2, "Tu")] == 0.0
        assert rows[(1, "Mo")] == pytest.approx(0.25)
        assert len(rows) == 4

    def test_f_untouched(self, gap_db):
        run_percentage_query(gap_db, QUERY,
                             VerticalStrategy(missing_rows="post"))
        assert gap_db.table("f").n_rows == 3

    def test_groups_uniform_size(self, gap_db):
        result = run_percentage_query(
            gap_db, QUERY, VerticalStrategy(missing_rows="post"))
        counts = {}
        for row in result.to_rows():
            counts[row[0]] = counts.get(row[0], 0) + 1
        assert set(counts.values()) == {2}

    def test_requires_by_clause(self, gap_db):
        with pytest.raises(PercentageQueryError):
            run_percentage_query(
                gap_db,
                "SELECT store, Vpct(amt) FROM f GROUP BY store",
                VerticalStrategy(missing_rows="post"))

    def test_requires_single_term(self, gap_db):
        with pytest.raises(PercentageQueryError):
            run_percentage_query(
                gap_db,
                "SELECT store, day, Vpct(amt BY day), "
                "Vpct(amt BY store, day) FROM f GROUP BY store, day",
                VerticalStrategy(missing_rows="post"))


class TestPreProcessing:
    def test_inserts_zero_measure_rows_into_f(self, gap_db):
        result = run_percentage_query(
            gap_db, QUERY, VerticalStrategy(missing_rows="pre"))
        rows = {(r[0], r[1]): r[2] for r in result.to_rows()}
        assert rows[(2, "Tu")] == 0.0
        assert gap_db.table("f").n_rows == 4  # F was mutated

    def test_corrupts_row_count_percentages_as_paper_warns(self,
                                                           gap_db):
        """The paper: pre-processing 'causes F to produce an incorrect
        row count % using Vpct(1)'."""
        run_percentage_query(gap_db, QUERY,
                             VerticalStrategy(missing_rows="pre"))
        counts = dict(gap_db.query(
            "SELECT store, count(*) FROM f GROUP BY store"))
        assert counts[2] == 2  # one of them is the synthetic row

    def test_requires_plain_column_argument(self, gap_db):
        with pytest.raises(PercentageQueryError):
            run_percentage_query(
                gap_db,
                "SELECT store, day, Vpct(amt * 2 BY day) FROM f "
                "GROUP BY store, day",
                VerticalStrategy(missing_rows="pre"))
