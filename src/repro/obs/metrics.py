"""A process-wide metrics registry: counters, gauges, histograms.

Design points:

* **One lock per registry.**  Every mutation and read goes through the
  owning registry's re-entrant lock, so a multi-counter
  :meth:`MetricsRegistry.increment` is atomic and
  :meth:`MetricsRegistry.read` is a consistent cut -- the property
  :mod:`repro.engine.stats` relied on with its single collector lock
  and still guarantees now that its counters live here.
* **Labels are part of the metric identity.**  ``registry.counter(
  "service_queue_wait_seconds", session="s1")`` and the same name with
  ``session="s2"`` are distinct time series, like Prometheus labels.
* **Fixed-bucket histograms.**  Buckets are cumulative upper bounds
  (``+Inf`` is implicit), chosen at creation and immutable -- no
  dynamic resizing to race against.
* **Text exposition.**  :meth:`MetricsRegistry.render_prometheus`
  emits the Prometheus text format; :func:`parse_prometheus` reads it
  back for the exporter round-trip test.

Per-:class:`~repro.api.database.Database` registries are the default
(each database's counters start at zero -- the stats-reset bug where a
reopened database carried the previous instance's totals is fixed by
construction).  Process-global consumers with no database in reach
(the fault registry, the fuzz runner) share :func:`global_registry`.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional

#: Default histogram buckets (seconds): tuned for statement latencies
#: from tens of microseconds to tens of seconds.
DEFAULT_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
                   0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
                   10.0)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _sample_name(name: str, labels: tuple,
                 extra: tuple = ()) -> str:
    pairs = tuple(labels) + tuple(extra)
    if not pairs:
        return name
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return f"{name}{{{body}}}"


class Counter:
    """Monotonically increasing integer."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: tuple,
                 lock: threading.RLock):
        self.name = name
        self.labels = labels
        self._lock = lock
        self._value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += int(n)

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: tuple,
                 lock: threading.RLock):
        self.name = name
        self.labels = labels
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1) -> None:
        with self._lock:
            self._value -= n

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed cumulative buckets plus sum and count."""

    __slots__ = ("name", "labels", "buckets", "_lock", "_counts",
                 "_sum", "_count")

    def __init__(self, name: str, labels: tuple, buckets: tuple,
                 lock: threading.RLock):
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")
        self._lock = lock
        self._counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._sum += value
            self._count += 1
            for index, upper in enumerate(self.buckets):
                if value <= upper:
                    self._counts[index] += 1
                    return
            self._counts[-1] += 1

    def snapshot(self) -> dict:
        with self._lock:
            cumulative = []
            running = 0
            for count in self._counts:
                running += count
                cumulative.append(running)
            return {"buckets": dict(zip(self.buckets, cumulative[:-1])),
                    "inf": cumulative[-1], "sum": self._sum,
                    "count": self._count}

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum


class MetricsRegistry:
    """Get-or-create store of named, labelled metrics."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: dict[tuple, object] = {}
        self._types: dict[str, str] = {}
        self._help: dict[str, str] = {}

    # ------------------------------------------------------------------
    def _get(self, kind: str, name: str, labels: dict, factory,
             help: str = ""):
        key = (name, _label_key(labels))
        with self._lock:
            registered = self._types.get(name)
            if registered is None:
                self._types[name] = kind
                if help:
                    self._help[name] = help
            elif registered != kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{registered}, not {kind}")
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory(name, key[1], self._lock)
                self._metrics[key] = metric
            return metric

    def counter(self, name: str, help: str = "",
                **labels: str) -> Counter:
        return self._get("counter", name, labels, Counter, help)

    def gauge(self, name: str, help: str = "",
              **labels: str) -> Gauge:
        return self._get("gauge", name, labels, Gauge, help)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple = DEFAULT_BUCKETS,
                  **labels: str) -> Histogram:
        return self._get(
            "histogram", name, labels,
            lambda n, lk, lock: Histogram(n, lk, buckets, lock), help)

    # ------------------------------------------------------------------
    def increment(self, counts: dict, **labels: str) -> None:
        """Atomically add to several counters: a reader holding the
        registry lock sees all of these increments or none."""
        with self._lock:
            for name, n in counts.items():
                self.counter(name, **labels).inc(int(n))

    def value(self, name: str, **labels: str) -> int:
        return self.counter(name, **labels).value

    def read(self, names: Iterable[str], **labels: str) -> dict:
        """Consistent multi-counter read (one lock acquisition)."""
        with self._lock:
            return {name: self.counter(name, **labels).value
                    for name in names}

    def zero(self, names: Iterable[str], **labels: str) -> None:
        """Reset the named counters to zero (for ``stats.reset()``)."""
        with self._lock:
            for name in names:
                self.counter(name, **labels)._value = 0

    def reset(self) -> None:
        """Forget every metric (tests; the global registry between
        fuzz cases)."""
        with self._lock:
            self._metrics.clear()
            self._types.clear()
            self._help.clear()

    # ------------------------------------------------------------------
    def samples(self) -> dict:
        """Flattened ``name{labels} -> value`` map, histograms
        expanded into ``_bucket``/``_sum``/``_count`` series --
        exactly the samples :meth:`render_prometheus` exposes."""
        out: dict[str, float] = {}
        with self._lock:
            for (name, _), metric in sorted(
                    self._metrics.items(),
                    key=lambda item: (item[0][0], item[0][1])):
                if isinstance(metric, Histogram):
                    snap = metric.snapshot()
                    for upper, count in snap["buckets"].items():
                        out[_sample_name(
                            name + "_bucket", metric.labels,
                            (("le", f"{upper:g}"),))] = count
                    out[_sample_name(name + "_bucket", metric.labels,
                                     (("le", "+Inf"),))] = snap["inf"]
                    out[_sample_name(name + "_sum",
                                     metric.labels)] = snap["sum"]
                    out[_sample_name(name + "_count",
                                     metric.labels)] = snap["count"]
                else:
                    out[_sample_name(name, metric.labels)] = \
                        metric.value
        return out

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format."""
        lines: list[str] = []
        with self._lock:
            by_name: dict[str, list] = {}
            for (name, _), metric in sorted(
                    self._metrics.items(),
                    key=lambda item: (item[0][0], item[0][1])):
                by_name.setdefault(name, []).append(metric)
            for name, metrics in by_name.items():
                help_text = self._help.get(name)
                if help_text:
                    lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {self._types[name]}")
                for metric in metrics:
                    if isinstance(metric, Histogram):
                        snap = metric.snapshot()
                        for upper, count in snap["buckets"].items():
                            lines.append(
                                f"{_sample_name(name + '_bucket', metric.labels, (('le', f'{upper:g}'),))}"
                                f" {count}")
                        lines.append(
                            f"{_sample_name(name + '_bucket', metric.labels, (('le', '+Inf'),))}"
                            f" {snap['inf']}")
                        lines.append(
                            f"{_sample_name(name + '_sum', metric.labels)}"
                            f" {_format_number(snap['sum'])}")
                        lines.append(
                            f"{_sample_name(name + '_count', metric.labels)}"
                            f" {snap['count']}")
                    else:
                        lines.append(
                            f"{_sample_name(name, metric.labels)}"
                            f" {_format_number(metric.value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _format_number(value: float) -> str:
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def parse_prometheus(text: str) -> dict:
    """Parse text-exposition samples back into ``name{labels} ->
    float`` -- the inverse of :meth:`MetricsRegistry.samples` for the
    round-trip test."""
    out: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        out[name] = float(value)
    return out


# ----------------------------------------------------------------------
_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry for consumers that outlive any one
    database: the fault-injection registry and the fuzz runner."""
    return _GLOBAL
