"""Unit tests for the span tracer: clocks, nesting, export,
validation, and the charge audit."""

import threading

import pytest

from repro.obs import tracer as tracer_mod
from repro.obs.clock import ManualClock, MonotonicClock
from repro.obs.tracer import (MalformedSpanError, Span, Tracer,
                              activate, active_tracer,
                              audit_statement_span, render_tree,
                              spans_from_jsonl, spans_to_jsonl,
                              validate_span_tree)


class TestManualClock:
    def test_ticks_advance_by_step(self):
        clock = ManualClock(start=1.0, step=0.5)
        assert clock.now() == 1.0
        assert clock.now() == 1.5
        assert clock.now() == 2.0

    def test_explicit_advance(self):
        clock = ManualClock(step=0.0)
        assert clock.now() == 0.0
        clock.advance(3.0)
        assert clock.now() == 3.0

    def test_monotonic_clock_moves_forward(self):
        clock = MonotonicClock()
        assert clock.now() <= clock.now()


class TestSpanNesting:
    def test_children_attach_to_open_parent(self):
        tracer = Tracer(clock=ManualClock(), enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                tracer.event("tick")
        assert tracer.roots() == [outer]
        assert outer.children == [inner]
        assert inner.children[0].name == "tick"

    def test_sibling_order_is_open_order(self):
        tracer = Tracer(clock=ManualClock(), enabled=True)
        with tracer.span("parent") as parent:
            for i in range(3):
                with tracer.span(f"child{i}"):
                    pass
        assert [c.name for c in parent.children] == \
            ["child0", "child1", "child2"]

    def test_durations_from_clock(self):
        tracer = Tracer(clock=ManualClock(step=0.001), enabled=True)
        with tracer.span("a") as span:
            pass
        assert span.duration == pytest.approx(0.001)

    def test_events_are_zero_duration(self):
        tracer = Tracer(clock=ManualClock(), enabled=True)
        with tracer.span("a"):
            event = tracer.event("e", kind="charge", rows=3)
        assert event.is_event
        assert event.attrs == {"rows": 3}

    def test_disabled_tracer_yields_none_and_records_nothing(self):
        tracer = Tracer(clock=ManualClock(), enabled=False)
        with tracer.span("a") as span:
            assert span is None
        assert tracer.event("e") is None
        assert tracer.roots() == []

    def test_exception_marks_error_and_closes(self):
        tracer = Tracer(clock=ManualClock(), enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("doomed") as span:
                raise ValueError("boom")
        assert span.attrs["error"] == "ValueError"
        assert span.end is not None
        validate_span_tree(span)

    def test_span_under_explicit_parent_from_other_thread(self):
        tracer = Tracer(clock=ManualClock(), enabled=True)
        with tracer.span("parent") as parent:
            def work():
                with tracer.span_under(parent, "worker",
                                       partition=0):
                    pass
            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        assert [c.name for c in parent.children] == ["worker"]

    def test_reset_drops_roots(self):
        tracer = Tracer(clock=ManualClock(), enabled=True)
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.roots() == []

    def test_find_filters_by_name_and_kind(self):
        tracer = Tracer(clock=ManualClock(), enabled=True)
        with tracer.span("s", kind="statement") as root:
            tracer.event("scan", kind="charge")
            tracer.event("scan", kind="charge")
            tracer.event("other", kind="governor")
        assert len(root.find(name="scan")) == 2
        assert len(root.find(kind="charge")) == 2
        assert len(root.find(kind="governor")) == 1


class TestAmbientTracer:
    def test_activate_is_scoped_and_nested(self):
        tracer = Tracer(enabled=True)
        assert active_tracer() is None
        with activate(tracer):
            assert active_tracer() is tracer
            inner = Tracer(enabled=True)
            with activate(inner):
                assert active_tracer() is inner
            assert active_tracer() is tracer
        assert active_tracer() is None

    def test_activation_is_thread_local(self):
        tracer = Tracer(enabled=True)
        seen = []
        with tracer_mod.activate(tracer):
            thread = threading.Thread(
                target=lambda: seen.append(active_tracer()))
            thread.start()
            thread.join()
        assert seen == [None]


class TestExportAndRender:
    def _sample_tree(self) -> list:
        tracer = Tracer(clock=ManualClock(step=0.001), enabled=True)
        with tracer.span("statement", kind="statement",
                         sql="SELECT 1") as root:
            with tracer.span("join", kind="operator", rows=5):
                tracer.event("scan", kind="charge", rows_scanned=5)
        return [root]

    def test_jsonl_round_trip(self):
        roots = self._sample_tree()
        restored = spans_from_jsonl(spans_to_jsonl(roots))
        assert render_tree(restored[0]) == render_tree(roots[0])

    def test_render_tree_shape(self):
        (root,) = self._sample_tree()
        lines = render_tree(root).splitlines()
        assert lines[0] == "statement 4.000ms sql=SELECT 1"
        assert lines[1] == "  join 2.000ms rows=5"
        assert lines[2] == "    scan rows_scanned=5"

    def test_render_normalize_applies_to_string_attrs_only(self):
        (root,) = self._sample_tree()
        text = render_tree(root, normalize=lambda s: s.upper())
        assert "sql=SELECT 1" in text
        assert "rows=5" in text  # ints untouched


class TestValidation:
    def test_unclosed_span_rejected(self):
        span = Span("open", "span", 0.0)
        with pytest.raises(MalformedSpanError, match="never closed"):
            validate_span_tree(span)

    def test_child_escaping_parent_rejected(self):
        parent = Span("p", "span", 0.0)
        parent.end = 1.0
        child = Span("c", "span", 0.5)
        child.end = 2.0
        parent.children.append(child)
        with pytest.raises(MalformedSpanError, match="escapes"):
            validate_span_tree(parent)

    def test_negative_duration_rejected(self):
        span = Span("s", "span", 2.0)
        span.end = 1.0
        with pytest.raises(MalformedSpanError, match="ends before"):
            validate_span_tree(span)


class TestChargeAudit:
    def _statement(self, charged: int, recorded: int) -> Span:
        root = Span("statement", "statement", 0.0,
                    {"rows_scanned": recorded})
        root.end = 1.0
        event = Span("scan", "charge", 0.5,
                     {"rows_scanned": charged})
        event.end = 0.5
        root.children.append(event)
        return root

    def test_matching_charges_pass(self):
        audit_statement_span(self._statement(7, 7))

    def test_mismatch_raises(self):
        with pytest.raises(MalformedSpanError, match="charge audit"):
            audit_statement_span(self._statement(7, 8))
