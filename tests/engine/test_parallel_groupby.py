"""Parallel group-by parity: hash-partitioned aggregation must be
bit-identical to serial execution, including the dtype edge cases the
differential fuzzer originally caught."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.database import Database
from repro.core.partitioning import (choose_parallel_degree,
                                     hash_partition)

SETUP = """
    CREATE TABLE t (d INT, c VARCHAR, a REAL, b INT);
    INSERT INTO t VALUES (1, 'x', 10.0, 3), (1, 'y', 30.0, NULL),
                         (2, 'x', 60.0, 1), (2, 'y', 0.25, 4),
                         (3, NULL, NULL, 2), (3, 'x', 5.5, NULL)
"""

QUERIES = [
    "SELECT d, sum(a) FROM t GROUP BY d ORDER BY d",
    "SELECT d, avg(a), count(*) FROM t GROUP BY d ORDER BY d",
    "SELECT d, min(a), max(b) FROM t GROUP BY d ORDER BY d",
    "SELECT d, c, sum(b) FROM t GROUP BY d, c ORDER BY d, c",
    "SELECT d, count(a), count(b) FROM t GROUP BY d ORDER BY d",
    "SELECT c, sum(a) FROM t GROUP BY c ORDER BY c",
]


def _pair():
    serial = Database()
    parallel = Database(parallel_workers=4, parallel_row_threshold=1)
    serial.execute_script(SETUP)
    parallel.execute_script(SETUP)
    return serial, parallel


class TestBitIdentity:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_matches_serial(self, sql):
        serial, parallel = _pair()
        assert parallel.query(sql) == serial.query(sql)

    def test_empty_table(self):
        serial, parallel = _pair()
        for db in (serial, parallel):
            db.execute("CREATE TABLE e (d INT, a REAL)")
        sql = "SELECT d, sum(a) FROM e GROUP BY d"
        assert parallel.query(sql) == serial.query(sql) == []

    def test_single_column_group(self):
        serial, parallel = _pair()
        sql = "SELECT d FROM t GROUP BY d ORDER BY d"
        assert parallel.query(sql) == serial.query(sql)

    def test_vpct_plan_matches_serial(self):
        from repro.core.execute import run_resilient
        serial, parallel = _pair()
        sql = "SELECT d, Vpct(a) FROM t GROUP BY d"
        rows = [run_resilient(db, sql).result.to_rows()
                for db in (serial, parallel)]
        assert rows[0] == rows[1]

    def test_degree_exceeding_rows(self):
        db = Database(parallel_workers=64, parallel_row_threshold=1)
        db.execute_script(SETUP)
        assert db.query(
            "SELECT d, sum(a) FROM t GROUP BY d ORDER BY d") == [
            (1, 40.0), (2, 60.25), (3, 5.5)]


class TestDtypeRegressions:
    """The np.bincount dtype trap: an empty (or all-NULL) partition's
    partial aggregate comes back int64 regardless of the weights
    dtype.  The merge buffer must therefore come from the result SQL
    type, never from a partition result's array."""

    def test_real_sum_with_empty_partition(self):
        # One group => every row hashes to one partition; the other
        # partition is empty.  A merge buffer typed from the empty
        # partition would truncate 0.25 away (10.25 -> 10).
        db = Database(parallel_workers=2, parallel_row_threshold=1)
        db.execute_script("""
            CREATE TABLE r (d INT, a REAL);
            INSERT INTO r VALUES (1, 10.0), (1, 0.25)
        """)
        assert db.query("SELECT d, sum(a) FROM r GROUP BY d") == [
            (1, 10.25)]

    def test_real_sum_with_all_null_partition(self):
        # Both partitions non-empty, but one holds only NULLs: its
        # valid-mask is empty, so its partial bincount is int64 too.
        db = Database(parallel_workers=2, parallel_row_threshold=1)
        db.execute_script("""
            CREATE TABLE r (d INT, a REAL);
            INSERT INTO r VALUES (1, 10.0), (1, 0.25),
                                 (2, NULL), (2, NULL)
        """)
        assert db.query(
            "SELECT d, sum(a) FROM r GROUP BY d ORDER BY d") == [
            (1, 10.25), (2, None)]

    def test_parallel_sum_preserves_float_dtype(self):
        db = Database(parallel_workers=2, parallel_row_threshold=1)
        db.execute_script("""
            CREATE TABLE r (d INT, a REAL);
            INSERT INTO r VALUES (1, 0.5), (1, 0.5)
        """)
        (row,) = db.query("SELECT d, sum(a) FROM r GROUP BY d")
        assert row == (1, 1.0)
        assert isinstance(row[1], float)


class TestPartitioningPrimitives:
    def test_hash_partition_complete_groups(self):
        codes = np.array([0, 1, 2, 0, 1, 2, 3], dtype=np.int64)
        parts = hash_partition(codes, 2)
        assert len(parts) == 2
        seen = np.sort(np.concatenate(parts))
        assert seen.tolist() == list(range(7))
        for rows in parts:
            # Complete groups: a code never spans partitions.
            owners = {codes[i] % 2 for i in rows}
            assert all(codes[i] % 2 in owners for i in rows)
            assert list(rows) == sorted(rows)

    @pytest.mark.parametrize("n_rows,requested,threshold,expected", [
        (100, 4, 50, 4),
        (10, 4, 50, 1),   # below threshold: stay serial
        (3, 8, 0, 3),     # never more partitions than rows
        (100, 1, 0, 1),   # serial request stays serial
        (0, 4, 0, 1),     # empty input stays serial
    ])
    def test_choose_parallel_degree(self, n_rows, requested,
                                    threshold, expected):
        assert choose_parallel_degree(
            n_rows, requested, threshold) == expected


class TestExplain:
    def test_parallel_line_when_enabled(self):
        db = Database(parallel_workers=4, parallel_row_threshold=1)
        db.execute_script(SETUP)
        lines = [row[0] for row in db.query(
            "EXPLAIN SELECT d, sum(a) FROM t GROUP BY d")]
        parallel_lines = [l for l in lines if l.startswith("parallel:")]
        assert parallel_lines == [
            "parallel: degree=4 backend=thread (row threshold 1)"]
        governor_at = next(i for i, l in enumerate(lines)
                           if l.startswith("governor:"))
        assert lines.index(parallel_lines[0]) < governor_at

    def test_no_parallel_line_when_serial(self):
        db = Database()
        db.execute_script(SETUP)
        lines = [row[0] for row in db.query(
            "EXPLAIN SELECT d, sum(a) FROM t GROUP BY d")]
        assert not [l for l in lines if l.startswith("parallel:")]
