"""Reproduction of the SIGMOD paper's worked examples (Tables 1-3)."""

import pytest

from repro.core import (HorizontalStrategy, VerticalStrategy,
                        run_percentage_query)


class TestTable2VerticalExample:
    """Section 3.1: 'what percentage of sales each city contributed to
    its state' -- Table 1 in, Table 2 out."""

    QUERY = ("SELECT state, city, Vpct(salesamt BY city) FROM sales "
             "GROUP BY state, city")

    #: Table 2, exact fractions (the paper prints rounded percents).
    EXPECTED = [
        ("CA", "Los Angeles", 23 / 106),     # 22%
        ("CA", "San Francisco", 83 / 106),   # 78%
        ("TX", "Dallas", 85 / 149),          # 57%
        ("TX", "Houston", 64 / 149),         # 43%
    ]

    def test_result_matches_table2(self, sales_db):
        result = run_percentage_query(sales_db, self.QUERY)
        for actual, expected in zip(result.to_rows(), self.EXPECTED):
            assert actual[0] == expected[0]
            assert actual[1] == expected[1]
            assert actual[2] == pytest.approx(expected[2])

    def test_rows_grouped_by_state_are_contiguous(self, sales_db):
        """'it is better to display rows for each state contiguously'
        -- the result is ordered by the grouping columns."""
        result = run_percentage_query(sales_db, self.QUERY)
        states = [row[0] for row in result.to_rows()]
        assert states == sorted(states)

    def test_rounded_percentages_match_paper(self, sales_db):
        result = run_percentage_query(sales_db, self.QUERY)
        printed = [round(row[2] * 100) for row in result.to_rows()]
        assert printed == [22, 78, 57, 43]


class TestTable3HorizontalExample:
    """Section 3.2: per-store day-of-week percentages plus total sales
    on one row, including the 0% cell for store 4 on Monday."""

    QUERY = ("SELECT store, Hpct(salesamt BY dweek), sum(salesamt) "
             "FROM sales GROUP BY store")

    #: Table 3 as printed (percent, rounded).
    EXPECTED = {
        2: {"Mo": 7, "Tu": 6, "We": 8, "Th": 9, "Fr": 16, "Sa": 24,
            "Su": 30, "total": 2500.0},
        4: {"Mo": 0, "Tu": 9, "We": 9, "Th": 9, "Fr": 18, "Sa": 20,
            "Su": 35, "total": 4000.0},
        7: {"Mo": 8, "Tu": 8, "We": 4, "Th": 4, "Fr": 8, "Sa": 35,
            "Su": 33, "total": 1600.0},
    }

    @pytest.mark.parametrize("source", ["F", "FV"])
    def test_result_matches_table3(self, store_db, source):
        result = run_percentage_query(
            store_db, self.QUERY, HorizontalStrategy(source=source))
        names = result.column_names()
        assert names[0] == "store"
        for row in result.to_rows():
            record = dict(zip(names, row))
            expected = self.EXPECTED[record["store"]]
            assert record["sum_salesamt"] == expected["total"]
            for day in ("Mo", "Tu", "We", "Th", "Fr", "Sa", "Su"):
                assert round(record[day] * 100) == expected[day]

    def test_one_row_per_store(self, store_db):
        result = run_percentage_query(store_db, self.QUERY)
        assert result.n_rows == 3

    def test_all_percentages_on_one_row_sum_to_100(self, store_db):
        result = run_percentage_query(store_db, self.QUERY)
        names = result.column_names()
        days = [n for n in names if n not in ("store", "sum_salesamt")]
        for row in result.to_rows():
            record = dict(zip(names, row))
            assert sum(record[d] for d in days) == pytest.approx(1.0)


class TestGeneratedSQLMatchesPaperShapes:
    """The generated statements follow the paper's Section 3 templates."""

    def test_vertical_statements(self, sales_db):
        from repro.core import generate_plan
        plan = generate_plan(
            sales_db,
            "SELECT state, city, Vpct(salesamt BY city) FROM sales "
            "GROUP BY state, city", VerticalStrategy())
        script = plan.sql_script()
        # Fk: INSERT INTO Fk SELECT D1..Dk, sum(A) FROM F GROUP BY ...
        assert "sum(salesamt) FROM sales GROUP BY state, city" in script
        # FV: CASE WHEN Fj.A <> 0 THEN Fk.A/Fj.A ELSE NULL END
        assert "ELSE NULL END" in script
        # Join on the common subkey.
        assert ".state =" in script

    def test_horizontal_direct_statement(self, store_db):
        from repro.core import generate_plan
        plan = generate_plan(
            store_db,
            "SELECT store, Hpct(salesamt BY dweek) FROM sales "
            "GROUP BY store", HorizontalStrategy(source="F"))
        script = plan.sql_script()
        assert "SELECT DISTINCT dweek FROM sales" in script
        # The pivoting numerator: one CASE per discovered dweek value.
        # ELSE NULL (not 0) keeps all-NULL cells distinct from missing
        # combinations, matching the Vpct row for the same cell.
        assert "sum(CASE WHEN dweek = 'Mo' THEN salesamt " \
            "ELSE NULL END)" in script
        assert "GROUP BY store" in script
