"""Sales analysis: percentage queries on the paper's synthetic sales
table, comparing every evaluation strategy and the OLAP baseline.

This is the workload family of the paper's Section 4: sales (dweek 7,
monthNo 12, store 100, dept 100, ...) with percentage queries at
several grouping levels.

Run:  python examples/sales_analysis.py [n_rows]
"""

import sys
import time

from repro import Database
from repro.core import (HorizontalStrategy, VerticalStrategy,
                        run_percentage_query)
from repro.datagen import load_sales
from repro.olap import run_olap_percentage_query


def timed(label, func):
    started = time.perf_counter()
    result = func()
    elapsed = time.perf_counter() - started
    print(f"  {label:<42s} {elapsed * 1000:8.1f} ms   "
          f"({result.n_rows} rows x {result.schema.width()} cols)")
    return result


def main() -> None:
    n_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 200_000
    db = Database()
    print(f"Generating sales with n = {n_rows:,} ...")
    load_sales(db, n_rows)

    query = ("SELECT dweek, monthno, Vpct(salesamt BY monthno) "
             "FROM sales GROUP BY dweek, monthno")
    print(f"\nQuery: {query}\n")
    print("Vertical strategies (paper Table 4 columns):")
    timed("best (Fj<-Fk, INSERT, indexes)",
          lambda: run_percentage_query(db, query, VerticalStrategy()))
    timed("mismatched indexes",
          lambda: run_percentage_query(
              db, query, VerticalStrategy(matching_indexes=False)))
    timed("UPDATE instead of INSERT",
          lambda: run_percentage_query(
              db, query, VerticalStrategy(use_update=True)))
    timed("no partial aggregate (Fj<-F)",
          lambda: run_percentage_query(
              db, query, VerticalStrategy(fj_from_fk=False)))
    timed("single-statement rephrasal",
          lambda: run_percentage_query(
              db, query, VerticalStrategy(single_statement=True)))

    hquery = ("SELECT dweek, Hpct(salesamt BY monthno) FROM sales "
              "GROUP BY dweek")
    print(f"\nQuery: {hquery}\n")
    print("Horizontal strategies (paper Table 5):")
    timed("direct CASE from F",
          lambda: run_percentage_query(db, hquery,
                                       HorizontalStrategy(source="F")))
    timed("indirect via FV",
          lambda: run_percentage_query(db, hquery,
                                       HorizontalStrategy(source="FV")))

    print("\nOLAP-extensions baseline (paper Table 6):")
    timed("sum() OVER (PARTITION BY ...) + DISTINCT",
          lambda: run_olap_percentage_query(db, query))

    # A peek at the actual numbers: December share per weekday.
    result = run_percentage_query(db, query)
    print("\nSample output (dweek = 1):")
    for row in result.to_rows()[:12]:
        print(f"  dweek={row[0]}  month={row[1]:>2}  "
              f"share={row[2] * 100:5.2f}%")


if __name__ == "__main__":
    main()
