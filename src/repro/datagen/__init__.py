"""Synthetic workload generators reproducing the papers' data sets."""

from repro.datagen.census import load_census
from repro.datagen.employee import load_employee
from repro.datagen.sales import load_sales
from repro.datagen.transaction_line import load_transaction_line

__all__ = ["load_census", "load_employee", "load_sales",
           "load_transaction_line"]
