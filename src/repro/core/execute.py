"""End-to-end percentage query evaluation.

``run_percentage_query(db, sql)`` is the one-call entry point: it
parses the extended syntax, validates the paper's usage rules, picks
(or accepts) an evaluation strategy, generates the standard-SQL plan,
executes it, and returns the result table -- dropping the temporary
tables afterwards unless asked to keep them.

Execution is *resilient*:

* both generation and execution are guarded by catalog savepoints, so
  a failure anywhere in a multi-statement plan restores the pre-plan
  catalog (no half-built temp tables, base tables untouched);
* :class:`~repro.errors.TransientError` faults are retried with
  exponential backoff under a :class:`RetryPolicy` -- the whole plan
  re-runs from the savepoint, which is exactly the recovery a DBA
  performs on a deadlock-victim script;
* cleanup/rollback failures never mask the execution error that was
  already in flight (the original propagates with the secondary
  failure chained via ``__cause__``);
* :func:`run_resilient` adds automatic strategy fallback: when a plan
  dies with a fallback-eligible resource error, the query is re-planned
  through the paper's alternate evaluation route (direct-from-F versus
  indirect-via-FV, Table 5) and the report records what happened.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Optional, Union

from repro.api.database import Database
from repro.core import model, plan as plan_mod, validate as validate_mod
from repro.core.hagg import HorizontalAggStrategy, generate_spj
from repro.core.horizontal import HorizontalStrategy, generate_horizontal
from repro.core.model import PercentageQuery, parse_percentage_query
from repro.core.optimizer import (alternate_strategy,
                                  choose_horizontal_strategy,
                                  choose_vertical_strategy)
from repro.core.plan import GeneratedPlan
from repro.core.vertical import VerticalStrategy, generate_vertical
from repro.engine import faults
from repro.engine.catalog import CatalogSavepoint
from repro.engine.table import Table
from repro.errors import (PercentageQueryError, ReproError,
                          TransientError)
from repro.obs import tracer as tracer_mod
from repro.obs.tracer import Span, render_tree

Strategy = Union[VerticalStrategy, HorizontalStrategy,
                 HorizontalAggStrategy]

#: Step purposes the runner never re-executes: they already ran during
#: generation (schema/combination feedback).
_GENERATION_TIME = frozenset({plan_mod.DISCOVER, plan_mod.MATERIALIZE})


@dataclass(frozen=True)
class RetryPolicy:
    """How :func:`execute_plan` reacts to transient faults.

    Attributes:
        max_attempts: total tries for the plan (1 = no retry).
        backoff_seconds: sleep before the second attempt.
        multiplier: backoff growth factor per further attempt.
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.005
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_seconds < 0 or self.multiplier < 0:
            raise ValueError("backoff must be non-negative")

    def delay(self, failed_attempts: int) -> float:
        """Seconds to sleep after the ``failed_attempts``-th failure."""
        return self.backoff_seconds * self.multiplier ** (failed_attempts - 1)


DEFAULT_RETRY = RetryPolicy()


def generate_plan(db: Database, query: Union[str, PercentageQuery],
                  strategy: Optional[Strategy] = None,
                  use_views: bool = True) -> GeneratedPlan:
    """Parse/validate a percentage query and generate its plan.

    With no explicit strategy the optimizer's recommendation is used.
    The strategy type selects the generator: a
    :class:`HorizontalAggStrategy` forces the SPJ form.

    When a materialized view's definition matches the whole query (and
    no strategy was forced), the plan collapses to a zero-step read of
    the view; ``use_views=False`` opts out, which is how the
    differential oracle obtains its recompute baseline.

    Generation may itself execute statements (MATERIALIZE/DISCOVER
    steps feed combination discovery); if it fails midway the catalog
    is rolled back so no half-built temp table leaks.
    """
    if isinstance(query, str):
        query = parse_percentage_query(query)
    validate_mod.validate(query)
    if strategy is None and use_views:
        view_plan = _view_plan(db, query)
        if view_plan is not None:
            return view_plan
    savepoint = db.catalog.savepoint()
    try:
        return _generate(db, query, strategy)
    except BaseException as exc:
        _rollback_or_chain(db, savepoint, exc)
        raise


def _view_plan(db: Database,
               query: PercentageQuery) -> Optional[GeneratedPlan]:
    """A zero-step plan reading a matching materialized view, or None.

    The plan's result statement is the *original* SELECT text: the
    executor's whole-statement view rewrite serves it straight from
    the view (refreshing first when stale), so the answer is the
    maintained result itself -- no re-projection layer that could
    perturb bit-identity."""
    if not query.sql or not db.options.matview_rewrite \
            or not db.catalog.matviews():
        return None
    from repro.sql import ast as sql_ast
    from repro.sql.parser import parse_statement
    from repro.views.rewrite import match_view
    try:
        select = parse_statement(query.sql)
    except ReproError:
        return None
    if not isinstance(select, sql_ast.Select):
        return None
    mv = match_view(db.catalog, select)
    if mv is None:
        return None
    base = db.catalog.table(mv.definition.base_table)
    freshness = "fresh" if mv.fresh(base) else "stale"
    return GeneratedPlan(
        result_select=query.sql,
        description=f"view: {mv.definition.name} "
                    f"({freshness}@v{mv.base_version})")


def _generate(db: Database, query: PercentageQuery,
              strategy: Optional[Strategy]) -> GeneratedPlan:
    if isinstance(strategy, HorizontalAggStrategy):
        return generate_spj(db, query, strategy)
    if query.has_vertical_pct:
        if strategy is None:
            strategy = choose_vertical_strategy(db, query)
        if not isinstance(strategy, VerticalStrategy):
            raise PercentageQueryError(
                "a Vpct query needs a VerticalStrategy")
        return generate_vertical(db, query, strategy)
    if query.has_horizontal:
        if strategy is None:
            strategy = choose_horizontal_strategy(db, query)
        if not isinstance(strategy, HorizontalStrategy):
            raise PercentageQueryError(
                "a horizontal query needs a HorizontalStrategy (or a "
                "HorizontalAggStrategy for the SPJ form)")
        return generate_horizontal(db, query, strategy)
    raise PercentageQueryError(
        "the query has neither Vpct/Hpct nor BY-extended aggregates; "
        "run it directly with db.execute()")


@dataclass
class ExecutionReport:
    """What executing a plan cost (and what it took to succeed)."""

    result: Table
    plan: GeneratedPlan
    elapsed_seconds: float
    #: Statements the successful attempt ran (plan steps + result
    #: SELECT); generation-time steps are not counted.
    statements_run: int
    #: Attempts made, counting the successful one (>1 means transient
    #: faults were retried).
    attempts: int = 1
    #: ``describe()`` of the strategy that failed before the fallback
    #: re-plan, or None when the first plan succeeded.
    fallback_from: Optional[str] = None
    #: ``"ErrorType: message"`` of the error that triggered fallback.
    fallback_error: Optional[str] = None
    #: Resource-governor snapshot of the plan's query window.
    governor_usage: dict[str, Any] = field(default_factory=dict)
    #: Widest partition fan-out any aggregation in the plan used
    #: (1 = fully serial execution).
    parallel_degree: int = 1
    #: Seconds the query waited in the service scheduler's queue before
    #: execution began (0.0 when run without the scheduler).
    queue_wait_seconds: float = 0.0
    #: Root span of the plan's execution trace (statement ->
    #: plan-step -> operator actuals), or None when the database's
    #: tracer was disabled.
    trace: Optional[Span] = None

    def explain_analyze(self, normalize=None) -> str:
        """EXPLAIN ANALYZE text: the plan header plus the actuals
        span tree (per-statement and per-operator rows and time).

        Requires a trace: run under ``Database(tracing=True)`` or via
        :func:`run_explain_analyze`.  ``normalize`` is passed through
        to :func:`repro.obs.tracer.render_tree`.
        """
        if self.trace is None:
            raise PercentageQueryError(
                "no trace recorded; enable tracing "
                "(Database(tracing=True) or run_explain_analyze) "
                "before executing the plan")
        header = [
            f"plan: {self.plan.description}",
            f"statements: {self.statements_run}  "
            f"attempts: {self.attempts}  "
            f"parallel degree: {self.parallel_degree}",
        ]
        return "\n".join(header) + "\n" \
            + render_tree(self.trace, normalize=normalize)


def execute_plan(db: Database, plan: GeneratedPlan,
                 keep_temps: bool = False,
                 retry: Optional[RetryPolicy] = None) -> ExecutionReport:
    """Run a generated plan and fetch its result.

    The whole plan runs inside one savepoint and one governor window:
    on any failure the catalog is rolled back to its pre-execution
    state; :class:`~repro.errors.TransientError` additionally re-runs
    the plan per ``retry`` (default :data:`DEFAULT_RETRY`).  When the
    final attempt fails, generation-time temp tables are dropped too,
    so the caller observes the catalog exactly as it was before the
    plan -- and a cleanup/rollback failure never masks the execution
    error (it is chained via ``__cause__`` instead).
    """
    policy = retry if retry is not None else DEFAULT_RETRY
    started = db.clock.now()
    savepoint = db.catalog.savepoint()
    attempts = 0
    db.executor.reset_parallel_observation()
    tracer = db.tracer
    plan_span: Optional[Span] = None
    with tracer_mod.activate(tracer), db.governor.window():
        with tracer.span("plan", kind="plan",
                         strategy=plan.description) as plan_span:
            tracer.event("savepoint", kind="catalog")
            while True:
                attempts += 1
                try:
                    result, statements = _run_steps(db, plan)
                    break
                except TransientError as exc:
                    _rollback_or_chain(db, savepoint, exc)
                    if attempts >= policy.max_attempts:
                        _cleanup_or_chain(db, plan, exc)
                        raise
                    time.sleep(policy.delay(attempts))
                except BaseException as exc:
                    _rollback_or_chain(db, savepoint, exc)
                    _cleanup_or_chain(db, plan, exc)
                    raise
            if plan_span is not None:
                plan_span.attrs["attempts"] = attempts
                plan_span.attrs["statements"] = statements
        usage = db.governor.usage()
    if not isinstance(result, Table):
        error = PercentageQueryError(
            "the plan's result statement did not return rows")
        _cleanup_or_chain(db, plan, error)
        raise error
    if not keep_temps:
        try:
            cleanup_plan(db, plan)
        except BaseException as exc:
            # A faulted cleanup DROP can leave a temp half-dropped --
            # on a durable catalog, the WAL and the in-memory name
            # space disagreeing about it.  Rolling back to the
            # pre-plan savepoint heals both sides atomically (the
            # restore re-asserts a state without the temps), and the
            # failure surfaces as the plan's error rather than a leak.
            _rollback_or_chain(db, savepoint, exc)
            raise
    elapsed = db.clock.now() - started
    return ExecutionReport(
        result=result, plan=plan, elapsed_seconds=elapsed,
        statements_run=statements, attempts=attempts,
        governor_usage=usage,
        parallel_degree=db.executor.parallel_degree_observed(),
        trace=plan_span)


def _run_steps(db: Database, plan: GeneratedPlan) -> tuple[Any, int]:
    """One execution attempt.  The ``statement`` fault site fires at
    every statement boundary (index i = before the i-th executable
    statement; the last index is the result SELECT), which is what the
    crash-consistency sweep iterates over."""
    statements = 0
    tracer = db.tracer
    for step in plan.steps:
        if step.purpose in _GENERATION_TIME:
            continue
        faults.fire("statement")
        with tracer.span("plan-step", kind="plan-step",
                         purpose=step.purpose, sql=step.sql):
            db.execute(step.sql)
        statements += 1
    faults.fire("statement")
    with tracer.span("plan-step", kind="plan-step",
                     purpose=plan_mod.RESULT, sql=plan.result_select):
        result = db.execute(plan.result_select)
    statements += 1
    return result, statements


def _rollback_or_chain(db: Database, savepoint: CatalogSavepoint,
                       exc: BaseException) -> None:
    """Roll the catalog back; if rollback itself fails, re-raise the
    *original* error with the rollback failure chained (never mask the
    root cause)."""
    try:
        db.catalog.rollback(savepoint)
        if db.tracer.enabled:
            db.tracer.event("rollback", kind="catalog",
                            error=type(exc).__name__)
    except Exception as rollback_exc:
        raise exc from rollback_exc


def _cleanup_or_chain(db: Database, plan: GeneratedPlan,
                      exc: BaseException) -> None:
    """Drop the plan's temps (including generation-time
    materializations); failures chain onto ``exc`` instead of masking
    it."""
    try:
        cleanup_plan(db, plan)
    except Exception as cleanup_exc:
        raise exc from cleanup_exc


def cleanup_plan(db: Database, plan: GeneratedPlan) -> None:
    """Drop every temp table the plan created.

    Idempotent by construction: ``if_exists=True`` makes a second
    call -- or a cleanup after a plan that faulted before creating a
    recorded name -- a no-op rather than an error.
    """
    for table in reversed(plan.temp_tables):
        db.drop_table(table, if_exists=True)


def run_resilient(db: Database, query: Union[str, PercentageQuery],
                  strategy: Optional[Strategy] = None,
                  keep_temps: bool = False,
                  retry: Optional[RetryPolicy] = None,
                  allow_fallback: bool = True,
                  use_views: bool = True) -> ExecutionReport:
    """Plan and execute with automatic strategy fallback.

    When the plan fails with a fallback-eligible error (resource
    exhaustion other than a wall-clock timeout), the query is
    re-planned through :func:`~repro.core.optimizer.alternate_strategy`
    -- the paper's other evaluation route -- and the report records
    ``fallback_from``/``fallback_error``.  Errors that re-planning
    cannot help (syntax, catalog, timeout, simulated crash) propagate
    unchanged, as does the original error when no alternate route
    exists.
    """
    if isinstance(query, str):
        query = parse_percentage_query(query)
    try:
        plan = generate_plan(db, query, strategy, use_views=use_views)
        return execute_plan(db, plan, keep_temps=keep_temps, retry=retry)
    except ReproError as exc:
        if not allow_fallback or not exc.fallback_eligible:
            raise
        chosen = _resolved_strategy(db, query, strategy)
        fallback = (alternate_strategy(db, query, chosen)
                    if chosen is not None else None)
        if fallback is None:
            raise
        plan = generate_plan(db, query, fallback)
        report = execute_plan(db, plan, keep_temps=keep_temps,
                              retry=retry)
        report.fallback_from = chosen.describe()
        report.fallback_error = f"{type(exc).__name__}: {exc}"
        return report


def _resolved_strategy(db: Database, query: PercentageQuery,
                       strategy: Optional[Strategy]
                       ) -> Optional[Strategy]:
    """The strategy the first plan ran under (mirrors the dispatch in
    :func:`generate_plan` when none was given explicitly)."""
    if strategy is not None:
        return strategy
    if query.has_vertical_pct:
        return choose_vertical_strategy(db, query)
    if query.has_horizontal:
        return choose_horizontal_strategy(db, query)
    return None


def run_percentage_query(db: Database,
                         query: Union[str, PercentageQuery],
                         strategy: Optional[Strategy] = None,
                         keep_temps: bool = False,
                         retry: Optional[RetryPolicy] = None,
                         allow_fallback: bool = False,
                         use_views: bool = True) -> Table:
    """Parse, plan, execute; return the result table.

    Fallback is off by default so an explicitly requested strategy is
    the one that runs (the fuzz harness compares strategies against
    each other); pass ``allow_fallback=True`` or use
    :func:`run_resilient` for the self-healing behavior.
    """
    report = run_resilient(db, query, strategy=strategy,
                           keep_temps=keep_temps, retry=retry,
                           allow_fallback=allow_fallback,
                           use_views=use_views)
    return report.result


def run_explain_analyze(db: Database,
                        query: Union[str, PercentageQuery],
                        strategy: Optional[Strategy] = None,
                        keep_temps: bool = False,
                        retry: Optional[RetryPolicy] = None
                        ) -> ExecutionReport:
    """Plan and execute ``query`` with tracing force-enabled, so the
    returned report always carries a trace and
    :meth:`ExecutionReport.explain_analyze` works even on databases
    opened with tracing off.

    The query runs for real (EXPLAIN ANALYZE semantics): temp tables
    are created and dropped, statements execute, the governor meters
    rows.  The tracer's prior enabled state is restored afterwards.
    """
    was_enabled = db.tracer.enabled
    db.tracer.enable()
    try:
        plan = generate_plan(db, query, strategy)
        return execute_plan(db, plan, keep_temps=keep_temps,
                            retry=retry)
    finally:
        if not was_enabled:
            db.tracer.disable()
