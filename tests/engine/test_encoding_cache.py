"""The table-versioned dictionary-encoding cache: correctness of the
invalidation discipline, LRU bounding, and the ablation toggle."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import Database
from repro.engine.column import ColumnData
from repro.engine.encoding_cache import EncodingCache
from repro.engine.groupby import encode_column
from repro.engine.types import SQLType


def _make_column(values, nulls=None):
    arr = np.asarray(values, dtype=np.int64)
    mask = np.zeros(len(arr), dtype=bool) if nulls is None \
        else np.asarray(nulls, dtype=bool)
    return ColumnData(SQLType.INTEGER, arr, mask)


# ----------------------------------------------------------------------
# Unit: the cache container itself
# ----------------------------------------------------------------------
class TestEncodingCacheUnit:
    def test_miss_then_hit(self):
        cache = EncodingCache()
        col = _make_column([3, 1, 3])
        col.cache_token = ("t", 1, "a")
        first = encode_column(col, cache)
        second = encode_column(col, cache)
        assert second is first           # served the same object
        assert cache.hits == 1 and cache.misses == 1

    def test_untokenized_columns_bypass(self):
        cache = EncodingCache()
        col = _make_column([1, 2])        # intermediate: no token
        encode_column(col, cache)
        encode_column(col, cache)
        assert cache.hits == 0 and cache.misses == 0
        assert cache.entry_count == 0

    def test_disabled_cache_is_inert(self):
        cache = EncodingCache()
        cache.enabled = False
        col = _make_column([1, 2])
        col.cache_token = ("t", 1, "a")
        encode_column(col, cache)
        encode_column(col, cache)
        assert cache.entry_count == 0
        assert cache.hits == 0 and cache.misses == 0

    def test_lru_eviction_under_byte_budget(self):
        col = _make_column(list(range(100)))
        col.cache_token = ("t", 1, "a")
        one_entry = EncodingCache()
        encoded = encode_column(col, one_entry)
        entry_bytes = one_entry.payload_bytes
        assert entry_bytes > 0

        # Budget for exactly two entries: inserting a third evicts the
        # least recently used one.
        cache = EncodingCache(max_bytes=2 * entry_bytes)
        for name in ("a", "b", "c"):
            fresh = _make_column(list(range(100)))
            fresh.cache_token = ("t", 1, name)
            encode_column(fresh, cache)
        assert cache.entry_count == 2
        assert cache.evictions == 1
        assert cache.tokens() == [("t", 1, "b"), ("t", 1, "c")]

        # A hit refreshes recency: touch "b", insert "d", "c" goes.
        touch = _make_column(list(range(100)))
        touch.cache_token = ("t", 1, "b")
        encode_column(touch, cache)
        newest = _make_column(list(range(100)))
        newest.cache_token = ("t", 1, "d")
        encode_column(newest, cache)
        assert cache.tokens() == [("t", 1, "b"), ("t", 1, "d")]
        _ = encoded  # keep the reference alive for the size probe

    def test_oversized_payload_skipped(self):
        cache = EncodingCache(max_bytes=8)
        col = _make_column(list(range(100)))
        col.cache_token = ("t", 1, "a")
        encode_column(col, cache)
        assert cache.entry_count == 0
        assert cache.evictions == 0

    def test_invalidate_table_frees_bytes(self):
        cache = EncodingCache()
        for table, name in (("t", "a"), ("t", "b"), ("u", "a")):
            col = _make_column([1, 2, 3])
            col.cache_token = (table, 1, name)
            encode_column(col, cache)
        cache.invalidate_table("T")
        assert cache.tokens() == [("u", 1, "a")]
        assert cache.payload_bytes > 0
        cache.invalidate_table("u")
        assert cache.payload_bytes == 0

    def test_thread_safety_smoke(self):
        cache = EncodingCache(max_bytes=4096)
        errors = []

        def worker(seed: int) -> None:
            try:
                rng = np.random.default_rng(seed)
                for i in range(50):
                    col = _make_column(rng.integers(0, 10, size=20))
                    col.cache_token = ("t", seed, f"c{i % 5}")
                    encode_column(col, cache)
                    if i % 17 == 0:
                        cache.invalidate_table("t")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.payload_bytes <= cache.max_bytes


# ----------------------------------------------------------------------
# Integration: DML invalidation through the Database facade
# ----------------------------------------------------------------------
@pytest.fixture
def versioned_db():
    db = Database()
    db.load_table("f", [("k", "varchar"), ("a", "int")],
                  [("x", 1), ("y", 2), ("x", 3)])
    return db


def _grouped(db):
    return sorted(db.query("SELECT k, sum(a) FROM f GROUP BY k"))


class TestDMLInvalidation:
    def test_warm_cache_serves_repeat_queries(self, versioned_db):
        db = versioned_db
        _grouped(db)
        before = db.catalog.encoding_cache.hits
        _grouped(db)
        assert db.catalog.encoding_cache.hits > before

    def test_insert_invalidates(self, versioned_db):
        db = versioned_db
        assert _grouped(db) == [("x", 4), ("y", 2)]
        db.execute("INSERT INTO f VALUES ('z', 10)")
        assert _grouped(db) == [("x", 4), ("y", 2), ("z", 10)]
        # Only the new version's tokens remain reachable.
        version = db.table("f").version
        for token in db.catalog.encoding_cache.tokens():
            if token[0] == "f":
                assert token[1] == version

    def test_update_invalidates(self, versioned_db):
        db = versioned_db
        _grouped(db)
        db.execute("UPDATE f SET k = 'y' WHERE a = 1")
        assert _grouped(db) == [("x", 3), ("y", 3)]

    def test_delete_invalidates(self, versioned_db):
        db = versioned_db
        _grouped(db)
        db.execute("DELETE FROM f WHERE k = 'x'")
        assert _grouped(db) == [("y", 2)]

    def test_drop_and_recreate_never_serves_stale(self, versioned_db):
        db = versioned_db
        _grouped(db)
        db.execute("DROP TABLE f")
        assert not any(t[0] == "f"
                       for t in db.catalog.encoding_cache.tokens())
        db.load_table("f", [("k", "varchar"), ("a", "int")],
                      [("q", 7)])
        assert _grouped(db) == [("q", 7)]

    def test_create_or_replace_via_load(self, versioned_db):
        db = versioned_db
        _grouped(db)
        db.load_table("f", [("k", "varchar"), ("a", "int")],
                      [("r", 9)], replace=True)
        assert _grouped(db) == [("r", 9)]

    def test_ablation_toggle(self, versioned_db):
        db = versioned_db
        db.set_use_encoding_cache(False)
        _grouped(db)
        _grouped(db)
        assert db.catalog.encoding_cache.hits == 0
        assert db.catalog.encoding_cache.entry_count == 0
        db.set_use_encoding_cache(True)
        _grouped(db)
        _grouped(db)
        assert db.catalog.encoding_cache.hits > 0

    def test_stats_mirror_cache_counters(self, versioned_db):
        db = versioned_db
        _grouped(db)
        _grouped(db)
        assert db.stats.encode_cache_hits == \
            db.catalog.encoding_cache.hits
        assert db.stats.encode_cache_misses == \
            db.catalog.encoding_cache.misses

    def test_info_shape(self, versioned_db):
        db = versioned_db
        _grouped(db)
        info = db.encoding_cache_info()
        assert info["enabled"] is True
        assert info["entries"] > 0
        assert 0.0 <= info["hit_rate"] <= 1.0

    def test_explain_reports_cache_line(self, versioned_db):
        db = versioned_db
        result = db.execute("EXPLAIN SELECT k, sum(a) FROM f GROUP BY k")
        lines = [row[0] for row in result.to_rows()]
        assert lines[-1].startswith("encoding cache:")
