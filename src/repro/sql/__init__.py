"""SQL front end: lexer, parser, AST and SQL text formatting."""

from repro.sql.parser import parse_expression, parse_script, parse_statement

__all__ = ["parse_statement", "parse_script", "parse_expression"]
