"""Unit tests for the PEP 249 DB-API driver."""

import pytest

import repro.api.dbapi as dbapi
from repro import Database


@pytest.fixture
def conn():
    connection = dbapi.connect()
    cursor = connection.cursor()
    cursor.execute("CREATE TABLE t (a INT, b VARCHAR)")
    cursor.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')")
    return connection


class TestModuleGlobals:
    def test_pep249_attributes(self):
        assert dbapi.apilevel == "2.0"
        assert dbapi.paramstyle == "qmark"
        assert dbapi.threadsafety == 2

    def test_exception_hierarchy(self):
        assert issubclass(dbapi.ProgrammingError, dbapi.DatabaseError)
        assert issubclass(dbapi.DatabaseError, dbapi.Error)


class TestCursor:
    def test_fetchone(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT a FROM t ORDER BY a")
        assert cur.fetchone() == (1,)
        assert cur.fetchone() == (2,)

    def test_fetchmany_and_fetchall(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT a FROM t ORDER BY a")
        assert cur.fetchmany(2) == [(1,), (2,)]
        assert cur.fetchall() == [(3,)]
        assert cur.fetchone() is None

    def test_iteration(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT a FROM t ORDER BY a")
        assert [row[0] for row in cur] == [1, 2, 3]

    def test_rowcount_and_description(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT a, b FROM t")
        assert cur.rowcount == 3
        assert [d[0] for d in cur.description] == ["a", "b"]
        cur.execute("INSERT INTO t VALUES (4, 'w')")
        assert cur.rowcount == 1
        assert cur.description is None

    def test_parameters(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT a FROM t WHERE a > ? AND b <> ?",
                    (1, "it's"))
        assert cur.rowcount == 2

    def test_parameter_count_mismatch(self, conn):
        cur = conn.cursor()
        with pytest.raises(dbapi.ProgrammingError):
            cur.execute("SELECT a FROM t WHERE a = ?", ())
        with pytest.raises(dbapi.ProgrammingError):
            cur.execute("SELECT a FROM t WHERE a = ?", (1, 2))

    def test_placeholder_inside_string_untouched(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT a FROM t WHERE b = '?' ")
        assert cur.rowcount == 0

    def test_null_parameter(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT coalesce(?, 5)", (None,))
        assert cur.fetchone() == (5,)

    def test_executemany(self, conn):
        cur = conn.cursor()
        cur.executemany("INSERT INTO t VALUES (?, ?)",
                        [(10, "a"), (11, "b")])
        cur.execute("SELECT count(*) FROM t")
        assert cur.fetchone() == (5,)

    def test_executescript(self, conn):
        cur = conn.cursor()
        cur.executescript("CREATE TABLE u (x INT); "
                          "INSERT INTO u VALUES (1)")
        cur.execute("SELECT x FROM u")
        assert cur.fetchall() == [(1,)]

    def test_engine_errors_wrapped(self, conn):
        cur = conn.cursor()
        with pytest.raises(dbapi.ProgrammingError):
            cur.execute("SELECT nope FROM t")

    def test_closed_cursor_raises(self, conn):
        cur = conn.cursor()
        cur.close()
        with pytest.raises(dbapi.InterfaceError):
            cur.execute("SELECT 1")


class TestConnection:
    def test_shared_database(self):
        database = Database()
        first = dbapi.connect(database)
        second = dbapi.connect(database)
        first.cursor().execute("CREATE TABLE shared (a INT)")
        cur = second.cursor()
        cur.execute("SELECT count(*) FROM shared")
        assert cur.fetchone() == (0,)

    def test_context_manager_closes(self):
        with dbapi.connect() as connection:
            connection.cursor().execute("SELECT 1")
        with pytest.raises(dbapi.InterfaceError):
            connection.cursor().execute("SELECT 1")

    def test_commit_is_noop(self, conn):
        conn.commit()

    def test_rollback_unsupported(self, conn):
        with pytest.raises(dbapi.OperationalError):
            conn.rollback()


class TestThreadAffinity:
    def test_default_allows_cross_thread_use(self):
        import threading
        connection = dbapi.connect()
        outcomes = []

        def use():
            cur = connection.cursor()
            cur.execute("SELECT 1")
            outcomes.append(cur.fetchone())

        worker = threading.Thread(target=use)
        worker.start()
        worker.join()
        assert outcomes == [(1,)]

    def test_check_same_thread_rejects_other_threads(self):
        import threading
        from repro.errors import CrossThreadError
        connection = dbapi.connect(check_same_thread=True)
        caught = []

        def use():
            try:
                connection.cursor()
            except CrossThreadError as exc:
                caught.append(exc)

        worker = threading.Thread(target=use)
        worker.start()
        worker.join()
        assert len(caught) == 1
        assert "thread" in str(caught[0])

    def test_check_same_thread_allows_owner(self):
        connection = dbapi.connect(check_same_thread=True)
        cur = connection.cursor()
        cur.execute("SELECT 1")
        assert cur.fetchone() == (1,)

    def test_cross_thread_error_hierarchy(self):
        from repro.errors import (CrossThreadError, ReproError,
                                  ServiceError)
        assert issubclass(CrossThreadError, ServiceError)
        assert issubclass(CrossThreadError, ReproError)

    def test_close_is_exempt(self):
        import threading
        connection = dbapi.connect(check_same_thread=True)
        errors = []

        def shut():
            try:
                connection.close()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        worker = threading.Thread(target=shut)
        worker.start()
        worker.join()
        assert errors == []
