"""End-to-end tests for GROUP BY CUBE/ROLLUP/GROUPING SETS through the
shared-scan operator: lattice expansion, NULL placeholders, GROUPING()
bitmasks, percentage hierarchies, fold-vs-recompute, error paths, and
bit-identity across every backend x storage combination."""

import pytest

from repro import Database, GroupingSetError
from repro.errors import (PlanningError, QueryCancelledError,
                          ReproError)

ROWS = ("('east','a',1,1.5), ('east','b',2,2.5), "
        "('west','a',3,0.5), ('west',NULL,4,4.0)")


def make_db(**kwargs):
    db = Database(**kwargs)
    db.execute("CREATE TABLE sales (region VARCHAR, product VARCHAR, "
               "qty INT, price REAL)")
    db.execute(f"INSERT INTO sales VALUES {ROWS}")
    return db


@pytest.fixture
def db():
    return make_db()


class TestLattice:
    def test_cube_emits_every_subset_in_request_order(self, db):
        rows = db.query(
            "SELECT region, product, sum(qty), count(*) FROM sales "
            "GROUP BY CUBE(region, product)")
        assert rows == [
            ("east", "a", 1, 1),
            ("east", "b", 2, 1),
            ("west", None, 4, 1),   # a real NULL product group
            ("west", "a", 3, 1),
            ("east", None, 3, 2),   # (region) level
            ("west", None, 7, 2),
            (None, None, 4, 1),     # (product) level, NULL group
            (None, "a", 4, 2),
            (None, "b", 2, 1),
            (None, None, 10, 4),    # grand total
        ]

    def test_rollup_emits_prefixes_only(self, db):
        rows = db.query(
            "SELECT region, product, sum(qty), "
            "grouping(region, product) FROM sales "
            "GROUP BY ROLLUP(region, product)")
        assert rows == [
            ("east", "a", 1, 0),
            ("east", "b", 2, 0),
            ("west", None, 4, 0),
            ("west", "a", 3, 0),
            ("east", None, 3, 1),
            ("west", None, 7, 1),
            (None, None, 10, 3),
        ]

    def test_grouping_sets_explicit_list(self, db):
        rows = db.query(
            "SELECT region, product, count(*) FROM sales "
            "GROUP BY GROUPING SETS ((region), (product), ())")
        assert rows == [
            ("east", None, 2),
            ("west", None, 2),
            (None, None, 1),
            (None, "a", 2),
            (None, "b", 1),
            (None, None, 4),
        ]

    def test_plain_element_cross_products_into_every_set(self, db):
        rows = db.query(
            "SELECT region, product, count(*) FROM sales "
            "GROUP BY region, CUBE(product)")
        assert rows == [
            ("east", "a", 1),
            ("east", "b", 1),
            ("west", None, 1),
            ("west", "a", 1),
            ("east", None, 2),
            ("west", None, 2),
        ]

    def test_empty_set_over_empty_table_yields_global_row(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT, m INT)")
        assert db.query(
            "SELECT a, count(*), sum(m) FROM t "
            "GROUP BY GROUPING SETS ((a), ())") == [(None, 0, None)]

    def test_real_and_exact_aggregates_agree_with_plain_group_by(
            self, db):
        """Fold-eligible (count/sum INT/min/max) and recompute-only
        (avg/sum REAL) aggregates both match standalone group-bys at
        every lattice level."""
        cube = db.query(
            "SELECT region, sum(qty), min(qty), max(price), "
            "avg(price), count(price) FROM sales "
            "GROUP BY GROUPING SETS ((region), ())")
        per_region = db.query(
            "SELECT region, sum(qty), min(qty), max(price), "
            "avg(price), count(price) FROM sales GROUP BY region")
        total = db.query(
            "SELECT sum(qty), min(qty), max(price), avg(price), "
            "count(price) FROM sales")
        assert cube == per_region + [(None,) + total[0]]

    def test_duplicate_expanded_sets_keep_union_all_semantics(self, db):
        """A plain element cross-producted into GROUPING SETS can
        collapse two requested sets onto the same dims; both are still
        emitted (SQL's UNION ALL rule)."""
        rows = db.query(
            "SELECT region, count(*) FROM sales "
            "GROUP BY region, GROUPING SETS ((region), ())")
        assert rows == [
            ("east", 2), ("west", 2),
            ("east", 2), ("west", 2),
        ]


class TestGroupingFunc:
    def test_mask_orders_args_msb_first(self, db):
        rows = db.query(
            "SELECT grouping(region, product), grouping(product), "
            "count(*) FROM sales GROUP BY GROUPING SETS "
            "((region, product), (region), (product), ())")
        masks = [(r[0], r[1]) for r in rows]
        assert set(masks[:4]) == {(0, 0)}
        assert set(masks[4:6]) == {(1, 1)}
        assert set(masks[6:9]) == {(2, 0)}
        assert masks[9:] == [(3, 1)]

    def test_grouping_distinguishes_null_group_from_placeholder(
            self, db):
        rows = db.query(
            "SELECT product, count(*), grouping(product) FROM sales "
            "GROUP BY GROUPING SETS ((product), ())")
        real_null = [r for r in rows if r[2] == 0 and r[0] is None]
        placeholder = [r for r in rows if r[2] == 1]
        assert real_null == [(None, 1, 0)]
        assert placeholder == [(None, 4, 1)]

    def test_grouping_usable_in_having(self, db):
        rows = db.query(
            "SELECT region, sum(qty) FROM sales "
            "GROUP BY CUBE(region, product) "
            "HAVING grouping(region, product) = 3")
        assert rows == [(None, 10)]


class TestPercentages:
    def test_pct_divides_by_parent_lattice_level(self, db):
        rows = db.query(
            "SELECT region, product, sum(qty), pct(qty), "
            "grouping(region, product) FROM sales "
            "GROUP BY ROLLUP(region, product)")
        fine = [r for r in rows if r[4] == 0]
        mid = [r for r in rows if r[4] == 1]
        top = [r for r in rows if r[4] == 3]
        # grand total is its own parent
        assert top == [(None, None, 10, 1.0, 3)]
        # (region) rows divide by the grand total
        assert [(r[0], r[3]) for r in mid] == [
            ("east", 0.3), ("west", 0.7)]
        # (region, product) rows divide by their (region) subtotal
        assert fine[0][3] == pytest.approx(1 / 3)   # east/a of 3
        assert fine[1][3] == pytest.approx(2 / 3)   # east/b of 3
        assert fine[2][3] == pytest.approx(4 / 7)   # west/NULL of 7
        assert fine[3][3] == pytest.approx(3 / 7)   # west/a of 7

    def test_pct_parent_is_largest_proper_subset(self, db):
        """In a full CUBE the (region, product) level's parent is a
        one-dim level, not the grand total."""
        rows = db.query(
            "SELECT region, product, pct(qty), "
            "grouping(region, product) FROM sales "
            "GROUP BY CUBE(region, product)")
        fine = [r for r in rows if r[3] == 0]
        # parent = (region): east/a = 1/3, not 1/10
        assert fine[0][:2] == ("east", "a")
        assert fine[0][2] == pytest.approx(1 / 3)

    def test_pct_without_any_parent_is_one(self, db):
        rows = db.query("SELECT region, pct(qty) FROM sales "
                        "GROUP BY GROUPING SETS ((region))")
        assert rows == [("east", 1.0), ("west", 1.0)]

    def test_pct_null_and_zero_denominators_are_null(self):
        db = Database()
        db.execute("CREATE TABLE t (a VARCHAR, m INT)")
        db.execute("INSERT INTO t VALUES ('x', 2), ('x', -2), "
                   "('y', NULL)")
        rows = db.query("SELECT a, pct(m), grouping(a) FROM t "
                        "GROUP BY ROLLUP(a)")
        # total = 0 -> every child pct NULL; NULL numerator -> NULL
        assert rows == [("x", None, 0), ("y", None, 0),
                        (None, None, 1)]


class TestPostProcessing:
    def test_having_applies_per_set(self, db):
        rows = db.query(
            "SELECT region, sum(qty) FROM sales "
            "GROUP BY CUBE(region, product) HAVING count(*) > 1")
        assert rows == [("east", 3), ("west", 7), (None, 4),
                        (None, 10)]

    def test_order_by_and_limit_apply_to_the_union(self, db):
        rows = db.query(
            "SELECT region, product, sum(qty) FROM sales "
            "GROUP BY CUBE(region, product) ORDER BY 3 DESC LIMIT 3")
        assert rows == [(None, None, 10), ("west", None, 7),
                        ("west", None, 4)]

    def test_explain_reports_set_count_and_shared_scan(self, db):
        lines = [r[0] for r in db.query(
            "EXPLAIN SELECT region, count(*) FROM sales "
            "GROUP BY CUBE(region, product)")]
        assert any("grouping-sets: 4 sets, shared-scan" in line
                   for line in lines)

    def test_explain_counts_cross_product(self, db):
        lines = [r[0] for r in db.query(
            "EXPLAIN SELECT region, count(*) FROM sales "
            "GROUP BY region, ROLLUP(product)")]
        assert any("grouping-sets: 2 sets, shared-scan" in line
                   for line in lines)


class TestBackendsAndStorage:
    QUERY = ("SELECT region, product, sum(qty), count(*), min(price), "
             "avg(price), pct(qty), grouping(region, product) "
             "FROM sales GROUP BY CUBE(region, product)")

    def reference(self):
        db = make_db()
        return db.query(self.QUERY)

    @pytest.mark.parametrize("kwargs", [
        {"parallel_workers": 2, "parallel_row_threshold": 0},
        {"parallel_workers": 2, "parallel_row_threshold": 0,
         "parallel_backend": "process", "morsel_rows": 2},
    ], ids=["thread", "process"])
    def test_parallel_backends_bit_identical(self, kwargs):
        assert make_db(**kwargs).query(self.QUERY) == self.reference()

    def test_disk_storage_bit_identical(self, tmp_path):
        db = make_db(storage="disk", storage_path=str(tmp_path),
                     pool_pages=8)
        try:
            assert db.query(self.QUERY) == self.reference()
        finally:
            db.close()


class TestErrors:
    def test_grouping_outside_grouping_sets(self, db):
        with pytest.raises(GroupingSetError, match="require GROUP BY"):
            db.query("SELECT region, grouping(region) FROM sales "
                     "GROUP BY region")

    def test_pct_outside_grouping_sets(self, db):
        with pytest.raises(GroupingSetError, match="require GROUP BY"):
            db.query("SELECT region, pct(qty) FROM sales "
                     "GROUP BY region")

    def test_grouping_arg_must_be_a_dim(self, db):
        with pytest.raises(GroupingSetError,
                           match="grouping columns"):
            db.query("SELECT grouping(qty) FROM sales "
                     "GROUP BY CUBE(region)")

    def test_pct_takes_one_plain_argument(self, db):
        with pytest.raises(GroupingSetError, match="one plain"):
            db.query("SELECT pct(qty, price) FROM sales "
                     "GROUP BY CUBE(region)")

    def test_bare_column_outside_sets_rejected(self, db):
        with pytest.raises(PlanningError, match="GROUP BY"):
            db.query("SELECT price FROM sales GROUP BY CUBE(region)")

    def test_window_functions_rejected(self, db):
        with pytest.raises(PlanningError, match="window"):
            db.query("SELECT sum(qty) OVER (PARTITION BY region) "
                     "FROM sales GROUP BY CUBE(region)")

    def test_too_many_grouping_sets(self, db):
        cols = ", ".join(f"c{i} INT" for i in range(8))
        db.execute(f"CREATE TABLE wide ({cols})")
        dims = ", ".join(f"c{i}" for i in range(8))
        with pytest.raises(GroupingSetError, match="too many"):
            db.query(f"SELECT count(*) FROM wide "
                     f"GROUP BY CUBE({dims})")  # 256 > 128 sets

    def test_typed_errors_are_repro_errors(self, db):
        with pytest.raises(ReproError):
            db.query("SELECT grouping(region) FROM sales")


class TestCancellation:
    def test_group_by_safepoint_unwinds_cleanly(self, db):
        from repro.engine import cancel as cancel_mod

        token = cancel_mod.CancelToken()
        token.cancel_at = ("group-by", 0)
        with cancel_mod.activate(token):
            with pytest.raises(QueryCancelledError):
                db.query("SELECT region, count(*) FROM sales "
                         "GROUP BY CUBE(region, product)")
        # the engine stays usable and re-runs bit-identically
        rows = db.query("SELECT region, count(*) FROM sales "
                        "GROUP BY CUBE(region, product)")
        assert ("east", 2) in rows and (None, 4) in rows
