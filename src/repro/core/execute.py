"""End-to-end percentage query evaluation.

``run_percentage_query(db, sql)`` is the one-call entry point: it
parses the extended syntax, validates the paper's usage rules, picks
(or accepts) an evaluation strategy, generates the standard-SQL plan,
executes it, and returns the result table -- dropping the temporary
tables afterwards unless asked to keep them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Union

from repro.api.database import Database
from repro.core import model, plan as plan_mod, validate as validate_mod
from repro.core.hagg import HorizontalAggStrategy, generate_spj
from repro.core.horizontal import HorizontalStrategy, generate_horizontal
from repro.core.model import PercentageQuery, parse_percentage_query
from repro.core.optimizer import (choose_horizontal_strategy,
                                  choose_vertical_strategy)
from repro.core.plan import GeneratedPlan
from repro.core.vertical import VerticalStrategy, generate_vertical
from repro.engine.table import Table
from repro.errors import PercentageQueryError

Strategy = Union[VerticalStrategy, HorizontalStrategy,
                 HorizontalAggStrategy]

#: Step purposes the runner never re-executes: they already ran during
#: generation (schema/combination feedback).
_GENERATION_TIME = frozenset({plan_mod.DISCOVER, plan_mod.MATERIALIZE})


def generate_plan(db: Database, query: Union[str, PercentageQuery],
                  strategy: Optional[Strategy] = None) -> GeneratedPlan:
    """Parse/validate a percentage query and generate its plan.

    With no explicit strategy the optimizer's recommendation is used.
    The strategy type selects the generator: a
    :class:`HorizontalAggStrategy` forces the SPJ form.
    """
    if isinstance(query, str):
        query = parse_percentage_query(query)
    validate_mod.validate(query)

    if isinstance(strategy, HorizontalAggStrategy):
        return generate_spj(db, query, strategy)
    if query.has_vertical_pct:
        if strategy is None:
            strategy = choose_vertical_strategy(db, query)
        if not isinstance(strategy, VerticalStrategy):
            raise PercentageQueryError(
                "a Vpct query needs a VerticalStrategy")
        return generate_vertical(db, query, strategy)
    if query.has_horizontal:
        if strategy is None:
            strategy = choose_horizontal_strategy(db, query)
        if not isinstance(strategy, HorizontalStrategy):
            raise PercentageQueryError(
                "a horizontal query needs a HorizontalStrategy (or a "
                "HorizontalAggStrategy for the SPJ form)")
        return generate_horizontal(db, query, strategy)
    raise PercentageQueryError(
        "the query has neither Vpct/Hpct nor BY-extended aggregates; "
        "run it directly with db.execute()")


@dataclass
class ExecutionReport:
    """What executing a plan cost."""

    result: Table
    plan: GeneratedPlan
    elapsed_seconds: float
    statements_run: int


def execute_plan(db: Database, plan: GeneratedPlan,
                 keep_temps: bool = False) -> ExecutionReport:
    """Run a generated plan and fetch its result."""
    started = time.perf_counter()
    statements = 0
    try:
        for step in plan.steps:
            if step.purpose in _GENERATION_TIME:
                continue
            db.execute(step.sql)
            statements += 1
        result = db.execute(plan.result_select)
        statements += 1
    finally:
        if not keep_temps:
            cleanup_plan(db, plan)
    if not isinstance(result, Table):
        raise PercentageQueryError(
            "the plan's result statement did not return rows")
    elapsed = time.perf_counter() - started
    return ExecutionReport(result=result, plan=plan,
                           elapsed_seconds=elapsed,
                           statements_run=statements)


def cleanup_plan(db: Database, plan: GeneratedPlan) -> None:
    """Drop every temp table the plan created (idempotent)."""
    for table in reversed(plan.temp_tables):
        db.drop_table(table, if_exists=True)


def run_percentage_query(db: Database,
                         query: Union[str, PercentageQuery],
                         strategy: Optional[Strategy] = None,
                         keep_temps: bool = False) -> Table:
    """Parse, plan, execute; return the result table."""
    plan = generate_plan(db, query, strategy)
    report = execute_plan(db, plan, keep_temps=keep_temps)
    return report.result
