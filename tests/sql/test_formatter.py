"""Unit tests for the SQL formatter, including parse/format round
trips on the statement shapes the code generator emits."""

import pytest

from repro.sql import ast
from repro.sql.formatter import (format_expr, format_script,
                                 format_statement, quote_ident)
from repro.sql.parser import parse_expression, parse_statement


ROUNDTRIP_STATEMENTS = [
    "SELECT a, b FROM t",
    "SELECT DISTINCT a FROM t WHERE a > 1 ORDER BY a DESC LIMIT 3",
    "SELECT state, city, sum(salesAmt) FROM sales "
    "GROUP BY state, city",
    "SELECT a, CASE WHEN b <> 0 THEN a / b ELSE NULL END FROM t",
    "SELECT f.a FROM f, g WHERE f.k = g.k AND f.a > 0",
    "SELECT a FROM f LEFT OUTER JOIN g ON f.k = g.k",
    "SELECT q.a FROM (SELECT a FROM t) q",
    "INSERT INTO t VALUES (1, 'x''y', NULL, TRUE)",
    "INSERT INTO t (a, b) SELECT a, sum(b) FROM u GROUP BY a",
    "CREATE TABLE t (a INT, b REAL, PRIMARY KEY (a))",
    "CREATE TABLE t AS SELECT a FROM u",
    "DROP TABLE IF EXISTS t",
    "CREATE INDEX ix ON t (a, b)",
    "UPDATE fk SET a = fk.a / fj.t FROM fj WHERE fk.d = fj.d",
    "DELETE FROM t WHERE a IS NULL",
    "SELECT sum(a) OVER (PARTITION BY b) FROM t",
    "SELECT a, Vpct(m BY c) FROM t GROUP BY a, c",
    "SELECT sum(m BY c DEFAULT 0) FROM t",
    "CREATE VIEW v AS SELECT a, sum(b) FROM t GROUP BY a",
    "DROP VIEW IF EXISTS v",
    "EXPLAIN SELECT a FROM t WHERE a > 1",
]


class TestRoundTrip:
    @pytest.mark.parametrize("sql", ROUNDTRIP_STATEMENTS)
    def test_parse_format_parse_is_stable(self, sql):
        first = parse_statement(sql)
        rendered = format_statement(first)
        second = parse_statement(rendered)
        assert format_statement(second) == rendered


class TestExpressions:
    def test_parenthesization_preserves_structure(self):
        expr = parse_expression("(1 + 2) * 3")
        rendered = format_expr(expr)
        assert parse_expression(rendered) == expr

    def test_string_escaping(self):
        assert format_expr(ast.Literal("o'clock")) == "'o''clock'"

    def test_null_and_bool(self):
        assert format_expr(ast.Literal(None)) == "NULL"
        assert format_expr(ast.Literal(True)) == "TRUE"

    def test_float_repr(self):
        rendered = format_expr(ast.Literal(0.1))
        assert parse_expression(rendered) == ast.Literal(0.1)


class TestQuoteIdent:
    def test_plain_names_unquoted(self):
        assert quote_ident("salesAmt") == "salesAmt"
        assert quote_ident("_tmp1") == "_tmp1"

    def test_reserved_words_quoted(self):
        assert quote_ident("select") == '"select"'

    def test_spaces_and_specials_quoted(self):
        assert quote_ident("a b") == '"a b"'
        assert quote_ident('a"b') == '"a""b"'

    def test_leading_digit_quoted(self):
        assert quote_ident("1abc") == '"1abc"'

    def test_quoted_name_roundtrips(self):
        stmt = parse_statement(f"SELECT {quote_ident('a b')} FROM t")
        assert stmt.items[0].expr == ast.ColumnRef("a b")


class TestScript:
    def test_script_joins_with_semicolons(self):
        script = format_script([
            parse_statement("SELECT 1"),
            parse_statement("SELECT 2"),
        ])
        assert script.count(";") == 2
