"""Cooperative cancellation: tokens, deadlines, safepoints."""

import pytest

from repro.api.database import Database
from repro.engine import cancel
from repro.engine.cancel import REASONS, SAFEPOINTS, CancelToken
from repro.errors import ExecutionError, QueryCancelledError
from repro.obs.clock import ManualClock
from repro.obs.metrics import MetricsRegistry


class TestToken:
    def test_live_token_passes_checkpoints(self):
        token = CancelToken()
        for site in SAFEPOINTS:
            token.check(site)
        assert not token.cancelled
        assert token.hits == {site: 1 for site in SAFEPOINTS}

    def test_cancel_fires_at_next_checkpoint(self):
        token = CancelToken()
        token.check("statement")
        token.cancel()
        with pytest.raises(QueryCancelledError) as info:
            token.check("scan")
        assert info.value.reason == "client"
        assert "scan" in str(info.value)

    def test_first_cancel_reason_wins(self):
        token = CancelToken()
        token.cancel("client")
        token.cancel("shed")
        assert token.reason() == "client"

    def test_raises_once_then_unwinds_quietly(self):
        """After the first raise, safepoints on the rollback/cleanup
        path must pass so the unwind itself cannot leak."""
        token = CancelToken()
        token.cancel()
        with pytest.raises(QueryCancelledError):
            token.check("statement")
        token.check("dml")       # cleanup DROP crosses a safepoint
        token.poll("governor")   # and a governor checkpoint

    def test_deadline_fires_with_manual_clock(self):
        clock = ManualClock(step=0.5)
        token = CancelToken.with_timeout(1.0, clock=clock)
        token.check("statement")  # t=0.5: inside the deadline
        with pytest.raises(QueryCancelledError) as info:
            token.check("scan")   # t=1.0: expired
        assert info.value.reason == "deadline"

    def test_with_timeout_rejects_non_positive(self):
        with pytest.raises(ValueError):
            CancelToken.with_timeout(0.0)

    def test_parent_cancellation_propagates(self):
        parent = CancelToken()
        child = CancelToken(parent=parent)
        parent.cancel("client")
        assert child.cancelled
        with pytest.raises(QueryCancelledError):
            child.check("statement")

    def test_remaining_reports_tightest_deadline(self):
        clock = ManualClock(step=0.0)
        script = CancelToken.with_timeout(10.0, clock=clock)
        statement = CancelToken.with_timeout(60.0, clock=clock,
                                             parent=script)
        assert statement.remaining() == pytest.approx(10.0)
        clock.advance(4.0)
        assert statement.remaining() == pytest.approx(6.0)
        assert CancelToken().remaining() is None

    def test_armed_cancel_at_fires_on_exact_hit(self):
        token = CancelToken()
        token.cancel_at = ("scan", 1)
        token.check("scan")  # index 0: passes
        with pytest.raises(QueryCancelledError):
            token.check("scan")  # index 1: fires
        assert token.hits["scan"] == 2

    def test_fired_token_charges_reason_metric(self):
        registry = MetricsRegistry()
        token = CancelToken(registry=registry)
        token.cancel("shed")
        with pytest.raises(QueryCancelledError):
            token.poll()
        assert registry.value("query_cancelled_total",
                              reason="shed") == 1

    def test_reasons_cover_error_contract(self):
        for reason in REASONS:
            error = QueryCancelledError("x", reason=reason)
            assert isinstance(error, ExecutionError)
            assert not error.retryable
            assert not error.fallback_eligible


class TestAmbient:
    def test_checkpoint_is_noop_without_token(self):
        assert cancel.active_token() is None
        cancel.checkpoint("statement")
        cancel.poll()

    def test_activate_installs_and_restores(self):
        token = CancelToken()
        with cancel.activate(token):
            assert cancel.active_token() is token
            inner = CancelToken()
            with cancel.activate(inner):
                assert cancel.active_token() is inner
            assert cancel.active_token() is token
        assert cancel.active_token() is None

    def test_activate_none_shields_cleanup(self):
        token = CancelToken()
        token.cancel()
        with cancel.activate(token):
            with cancel.activate(None):
                cancel.checkpoint("statement")  # shielded: no raise


class TestDatabaseDeadlines:
    def _db(self, **kwargs):
        db = Database(clock=ManualClock(step=0.001), **kwargs)
        db.execute("CREATE TABLE t (a INT, b INT)")
        db.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
        return db

    def test_expired_deadline_cancels_statement(self):
        db = self._db()
        with pytest.raises(QueryCancelledError) as info:
            db.execute("SELECT a FROM t", deadline_seconds=1e-9)
        assert info.value.reason == "deadline"

    def test_generous_deadline_does_not_interfere(self):
        db = self._db()
        result = db.execute("SELECT a FROM t ORDER BY a",
                            deadline_seconds=1e9)
        assert result.to_rows() == [(1,), (2,)]

    def test_default_deadline_applies_to_every_statement(self):
        db = self._db()
        db.default_deadline_seconds = 1e-9
        with pytest.raises(QueryCancelledError):
            db.execute("SELECT a FROM t")
        # an explicit per-statement deadline overrides the default
        assert db.execute("SELECT count(*) FROM t",
                          deadline_seconds=1e9).to_rows() == [(2,)]

    def test_explicit_cancel_token_wins(self):
        db = self._db()
        token = CancelToken(clock=db.clock)
        token.cancel()
        with pytest.raises(QueryCancelledError) as info:
            db.execute("SELECT a FROM t", cancel_token=token)
        assert info.value.reason == "client"

    def test_cancelled_dml_rolls_back(self):
        db = self._db()
        token = CancelToken(clock=db.clock)
        token.cancel_at = ("dml", 0)
        with pytest.raises(QueryCancelledError):
            db.execute("INSERT INTO t VALUES (3, 30)",
                       cancel_token=token)
        assert db.query("SELECT count(*) FROM t") == [(2,)]

    def test_script_shares_one_deadline(self):
        """The script token is created once, so later statements run
        on the *remaining* budget and an expired budget stops the
        script midway (with rollback-per-statement semantics)."""
        db = self._db()
        clock = db.clock
        token = CancelToken.with_timeout(1e9, clock=clock)
        db.execute_script(
            "INSERT INTO t VALUES (3, 30); INSERT INTO t VALUES (4, 40)",
            cancel_token=token)
        assert db.query("SELECT count(*) FROM t") == [(4,)]
        assert token.hits["statement"] == 2

    def test_governor_checkpoints_enforce_ambient_deadline(self):
        """check_time folds the cancel poll in, so a deadline fires at
        governor checkpoints even between named safepoints."""
        db = self._db()
        token = CancelToken(clock=db.clock)
        token.cancel("deadline")
        with cancel.activate(token):
            with pytest.raises(QueryCancelledError):
                db.governor.check_time("mid-operator")

    def test_explain_shows_deadline_line_only_when_active(self):
        db = self._db()
        plain = [r[0] for r in db.execute("EXPLAIN SELECT a FROM t")
                 .to_rows()]
        assert not any(r.startswith("deadline:") for r in plain)
        lines = [r[0] for r in
                 db.execute("EXPLAIN SELECT a FROM t",
                            deadline_seconds=100.0).to_rows()]
        deadline = [r for r in lines if r.startswith("deadline:")]
        assert len(deadline) == 1
        assert "remaining" in deadline[0]
        # the cache line stays last, governor before deadline
        assert lines[-1].startswith("encoding cache:")

    def test_cancelled_metric_reason_deadline(self):
        db = self._db()
        with pytest.raises(QueryCancelledError):
            db.execute("SELECT a FROM t", deadline_seconds=1e-9)
        assert db.metrics.value("query_cancelled_total",
                                reason="deadline") == 1


class TestDbapiDeadline:
    def test_set_deadline_maps_overrun_to_operational_error(self):
        from repro.api import dbapi

        conn = dbapi.connect(database=Database(
            clock=ManualClock(step=0.001)))
        cur = conn.cursor()
        cur.execute("CREATE TABLE t (a INT)")
        cur.execute("INSERT INTO t VALUES (1)")
        conn.set_deadline(1e-9)
        with pytest.raises(dbapi.OperationalError) as info:
            cur.execute("SELECT a FROM t")
        assert "cancelled" in str(info.value)
        conn.set_deadline(None)
        cur.execute("SELECT a FROM t")
        assert cur.fetchall() == [(1,)]

    def test_set_deadline_rejects_non_positive(self):
        from repro.api import dbapi

        conn = dbapi.connect()
        with pytest.raises(dbapi.InterfaceError):
            conn.set_deadline(0)
