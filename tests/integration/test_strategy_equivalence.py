"""Cross-strategy equivalence on generated data: every evaluation
strategy must return the same result table for the same query."""

import pytest

from repro import Database
from repro.core import (HorizontalAggStrategy, HorizontalStrategy,
                        VerticalStrategy, run_percentage_query)
from repro.datagen import load_transaction_line

VERTICAL_STRATEGIES = [
    VerticalStrategy(),
    VerticalStrategy(fj_from_fk=False),
    VerticalStrategy(use_update=True),
    VerticalStrategy(create_indexes=False),
    VerticalStrategy(matching_indexes=False),
    VerticalStrategy(single_statement=True),
]

HORIZONTAL_STRATEGIES = [
    HorizontalStrategy(source="F"),
    HorizontalStrategy(source="FV"),
    HorizontalAggStrategy(source="F"),
    HorizontalAggStrategy(source="FV"),
]


@pytest.fixture(scope="module")
def tdb():
    database = Database()
    load_transaction_line(database, 3_000, seed=99)
    return database


def rows_match(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a == pytest.approx(b, nan_ok=True)


class TestVerticalEquivalence:
    @pytest.mark.parametrize("sql", [
        "SELECT regionid, Vpct(salesamt) FROM transactionline "
        "GROUP BY regionid",
        "SELECT regionid, dayofweekno, "
        "Vpct(salesamt BY dayofweekno) FROM transactionline "
        "GROUP BY regionid, dayofweekno",
        "SELECT deptid, monthno, Vpct(itemqty BY monthno), "
        "sum(salesamt), count(*) FROM transactionline "
        "GROUP BY deptid, monthno",
    ], ids=["global", "one-level", "with-plain-terms"])
    def test_all_strategies_agree(self, tdb, sql):
        baseline = run_percentage_query(
            tdb, sql, VERTICAL_STRATEGIES[0]).to_rows()
        for strategy in VERTICAL_STRATEGIES[1:]:
            rows_match(baseline,
                       run_percentage_query(tdb, sql,
                                            strategy).to_rows())

    def test_percentages_sum_to_one_per_group(self, tdb):
        result = run_percentage_query(
            tdb, "SELECT regionid, dayofweekno, "
                 "Vpct(salesamt BY dayofweekno) FROM transactionline "
                 "GROUP BY regionid, dayofweekno")
        totals = {}
        for region, _, pct in result.to_rows():
            totals[region] = totals.get(region, 0.0) + pct
        for total in totals.values():
            assert total == pytest.approx(1.0)


class TestHorizontalEquivalence:
    @pytest.mark.parametrize("sql", [
        "SELECT regionid, sum(salesamt BY dayofweekno) "
        "FROM transactionline GROUP BY regionid",
        "SELECT regionid, avg(salesamt BY yearno), "
        "min(itemqty BY yearno), count(*) FROM transactionline "
        "GROUP BY regionid",
        "SELECT sum(salesamt BY regionid, yearno DEFAULT 0) "
        "FROM transactionline",
    ], ids=["sum", "multi-func", "global-two-col"])
    def test_all_strategies_agree(self, tdb, sql):
        baseline = None
        for strategy in HORIZONTAL_STRATEGIES:
            result = run_percentage_query(tdb, sql, strategy)
            if baseline is None:
                baseline = (result.column_names(), result.to_rows())
            else:
                assert result.column_names() == baseline[0]
                rows_match(baseline[1], result.to_rows())

    def test_hpct_case_strategies_agree(self, tdb):
        sql = ("SELECT regionid, Hpct(salesamt BY dayofweekno) "
               "FROM transactionline GROUP BY regionid")
        direct = run_percentage_query(tdb, sql,
                                      HorizontalStrategy(source="F"))
        indirect = run_percentage_query(tdb, sql,
                                        HorizontalStrategy(source="FV"))
        rows_match(direct.to_rows(), indirect.to_rows())


class TestHorizontalVsVerticalConsistency:
    def test_hpct_cells_equal_vpct_rows(self, tdb):
        """The horizontal form is a transposition of the vertical one:
        cell (g, d) of Hpct must equal the Vpct row (g, d)."""
        vertical = run_percentage_query(
            tdb, "SELECT regionid, dayofweekno, "
                 "Vpct(salesamt BY dayofweekno) FROM transactionline "
                 "GROUP BY regionid, dayofweekno")
        horizontal = run_percentage_query(
            tdb, "SELECT regionid, Hpct(salesamt BY dayofweekno) "
                 "FROM transactionline GROUP BY regionid")
        names = horizontal.column_names()
        cells = {}
        for row in horizontal.to_rows():
            record = dict(zip(names, row))
            for name in names[1:]:
                cells[(record["regionid"], name)] = record[name]
        for region, day, pct in vertical.to_rows():
            key = (region, f"c{day}")
            assert cells[key] == pytest.approx(pct)


class TestHashDispatchEquivalence:
    def test_hash_engine_matches_linear(self):
        linear_db, hash_db = Database(), Database(case_dispatch="hash")
        load_transaction_line(linear_db, 2_000, seed=5)
        load_transaction_line(hash_db, 2_000, seed=5)
        sql = ("SELECT deptid, sum(salesamt BY dayofweekno), "
               "Hpct(itemqty BY yearno) FROM transactionline "
               "GROUP BY deptid")
        left = run_percentage_query(linear_db, sql)
        right = run_percentage_query(hash_db, sql)
        assert left.column_names() == right.column_names()
        rows_match(left.to_rows(), right.to_rows())
