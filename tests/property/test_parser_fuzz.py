"""Fuzzing the SQL front end: arbitrary text must either parse or
raise a clean SQLSyntaxError -- never crash with anything else."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SQLSyntaxError
from repro.sql.formatter import format_statement
from repro.sql.parser import parse_statement
from repro.sql.tokens import tokenize


@given(st.text(max_size=120))
@settings(max_examples=300, deadline=None)
def test_tokenizer_total(text):
    try:
        tokens = tokenize(text)
    except SQLSyntaxError:
        return
    assert tokens[-1].value is None  # END token


@given(st.text(max_size=120))
@settings(max_examples=300, deadline=None)
def test_parser_total(text):
    try:
        statement = parse_statement(text)
    except SQLSyntaxError:
        return
    # Whatever parsed must be formattable, and the formatted text must
    # parse again (weak round-trip on arbitrary accepted inputs).
    rendered = format_statement(statement)
    reparsed = parse_statement(rendered)
    assert format_statement(reparsed) == rendered


#: SQL-looking fragments make the fuzzer reach deeper grammar paths
#: than uniform unicode text does.
_SQLISH = st.lists(st.sampled_from([
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "t", "a", "b",
    "sum", "(", ")", ",", "*", "=", "1", "'x'", "CASE", "WHEN",
    "THEN", "END", "JOIN", "ON", "NULL", "Vpct", "OVER", "PARTITION",
    "DISTINCT", "AS", ";", "INSERT", "INTO", "VALUES", "UPDATE",
    "SET", "-", "/", "AND", "OR", "NOT", "IN", "IS"]),
    min_size=1, max_size=25).map(" ".join)


@given(_SQLISH)
@settings(max_examples=400, deadline=None)
def test_parser_total_on_sql_shaped_soup(text):
    try:
        statement = parse_statement(text)
    except SQLSyntaxError:
        return
    rendered = format_statement(statement)
    assert format_statement(parse_statement(rendered)) == rendered
