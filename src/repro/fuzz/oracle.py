"""The external oracle: Python's stdlib ``sqlite3``.

Each verdict uses a fresh in-memory connection, loads the case's fact
table, replays (dialect-adapted) plan statements, and fetches the
result rows.  sqlite was built by people who never saw this codebase,
so agreement here rules out a bug shared by every engine strategy.

Version gates: ``UPDATE ... FROM`` (the paper's join-update strategy)
needs sqlite >= 3.33 and window functions need >= 3.25; callers check
:func:`supports_update_from` / :func:`supports_windows` and simply
skip those oracle variants on museum-grade interpreters.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Iterable, Sequence

from repro.fuzz.dialect import to_sqlite

#: engine type name -> sqlite column type (affinity does the rest).
_TYPE_MAP = {"varchar": "TEXT", "int": "INTEGER", "real": "REAL",
             "boolean": "INTEGER"}


def supports_update_from() -> bool:
    return sqlite3.sqlite_version_info >= (3, 33, 0)


def supports_windows() -> bool:
    return sqlite3.sqlite_version_info >= (3, 25, 0)


class SqliteOracle:
    """One disposable sqlite database pre-loaded with the fact table."""

    def __init__(self, table: str,
                 columns: Sequence[tuple[str, str]],
                 rows: Iterable[Sequence[Any]]):
        self.conn = sqlite3.connect(":memory:")
        specs = ", ".join(
            f'"{name}" {_TYPE_MAP[type_name.lower()]}'
            for name, type_name in columns)
        self.conn.execute(f'CREATE TABLE "{table}" ({specs})')
        placeholders = ", ".join("?" for _ in columns)
        self.conn.executemany(
            f'INSERT INTO "{table}" VALUES ({placeholders})',
            [tuple(row) for row in rows])

    def close(self) -> None:
        self.conn.close()

    def run_select(self, sql: str) -> list[tuple[Any, ...]]:
        """Adapt one SELECT to the sqlite dialect and fetch its rows."""
        return [tuple(r) for r in self.conn.execute(to_sqlite(sql))]

    def run_raw(self, sql: str) -> list[tuple[Any, ...]]:
        """Fetch rows for SQL that is **already** in sqlite dialect.

        Used for compound queries the engine's parser cannot re-parse,
        e.g. the ``UNION ALL`` expansion that
        :func:`repro.fuzz.dialect.cube_to_union_sql` produces (each
        piece was individually rewritten before joining).
        """
        return [tuple(r) for r in self.conn.execute(sql)]

    def replay_plan(self, statements: Sequence[str],
                    result_select: str) -> list[tuple[Any, ...]]:
        """Replay a generated plan's statements, then its result query."""
        for sql in statements:
            self.conn.execute(to_sqlite(sql))
        return self.run_select(result_select)
