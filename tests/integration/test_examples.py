"""Smoke tests: every example script runs end to end (small scales)."""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argv: list[str]) -> str:
    buffer = io.StringIO()
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        with redirect_stdout(buffer):
            runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return buffer.getvalue()


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py", [])
        assert "Vertical percentage query" in output
        assert "CREATE TABLE" in output         # the generated plan
        assert "0.78" in output                 # San Francisco share

    def test_sales_analysis(self):
        output = run_example("sales_analysis.py", ["20000"])
        assert "best (Fj<-Fk, INSERT, indexes)" in output
        assert "OLAP-extensions baseline" in output
        assert "share=" in output

    def test_data_mining_prep(self):
        output = run_example("data_mining_prep.py", [])
        assert "Tabular data set: 30 observations" in output
        assert "cluster 0" in output
        assert "Binary coding" in output

    def test_olap_comparison(self):
        output = run_example("olap_comparison.py", ["20000"])
        assert "Same answer set (the paper's ground rule): True" \
            in output
        assert "logical I/O" in output

    def test_dbapi_demo(self):
        output = run_example("dbapi_demo.py", [])
        assert "Replaying the plan through the DB-API cursor" in output
        assert "north" in output

    def test_every_example_is_covered(self):
        scripts = {p.name for p in EXAMPLES.glob("*.py")}
        covered = {"quickstart.py", "sales_analysis.py",
                   "data_mining_prep.py", "olap_comparison.py",
                   "dbapi_demo.py"}
        assert scripts == covered
