"""Shared summaries for sets of percentage queries (paper Section 6,
future work: "A set of percentage queries on the same table may be
efficiently evaluated using shared summaries").

:func:`run_percentage_batch` takes several percentage queries over the
same fact table, builds **one** shared summary -- an aggregation of
``F`` at the union of every query's grouping and BY columns, holding
one distributive base aggregate per distinct argument -- and rewrites
each query to read the summary instead of ``F``.  The fact table is
scanned once for the whole batch instead of once (or more) per query.

Only distributive terms can share (sum-based ``Vpct``/``Hpct``,
``sum``/``min``/``max``, and ``count`` rewritten to a sum of partial
counts); queries containing ``avg`` or ``count(DISTINCT ...)`` fall
back to individual evaluation, as does any query whose union grouping
would not actually reduce the data.
"""

from __future__ import annotations

import itertools
import weakref
from dataclasses import dataclass, field
from typing import Optional

from repro.api.database import Database
from repro.core import common, model
from repro.core.execute import run_percentage_query
from repro.core.model import PercentageQuery, parse_percentage_query
from repro.core.validate import validate
from repro.engine.table import Table
from repro.sql import ast
from repro.sql.formatter import format_expr, quote_ident

_counter = itertools.count(1)

#: Per-database registry of kept summaries: signature -> summary table
#: name.  The signature embeds the fact table's *version* (see
#: :mod:`repro.engine.table`), so any DML on the fact table silently
#: invalidates its summaries -- the same mechanism that keys the
#: dictionary-encoding cache.
_kept_summaries: "weakref.WeakKeyDictionary[Database, dict]" = \
    weakref.WeakKeyDictionary()


@dataclass
class BatchReport:
    """What evaluating a batch did."""

    results: list[Table]
    shared_groups: int = 0          # query groups that shared a summary
    fallback_queries: int = 0       # queries evaluated individually
    reused_summaries: int = 0       # kept summaries served from registry
    summary_rows: dict[str, int] = field(default_factory=dict)


def run_percentage_batch(db: Database, queries: list[str],
                         keep_summaries: bool = False) -> BatchReport:
    """Evaluate several percentage queries, sharing summaries where
    the queries allow it.  Results come back in input order."""
    parsed: list[PercentageQuery] = []
    for sql in queries:
        query = parse_percentage_query(sql)
        validate(query)
        parsed.append(query)

    groups: dict[tuple, list[int]] = {}
    for position, query in enumerate(parsed):
        key = _share_key(query)
        if key is not None:
            groups.setdefault(key, []).append(position)

    report = BatchReport(results=[None] * len(parsed))  # type: ignore
    shared_positions: set[int] = set()
    for key, positions in groups.items():
        if len(positions) < 2:
            continue
        summary = _SharedSummary.build(db, [parsed[p] for p in
                                            positions],
                                       allow_reuse=keep_summaries)
        if summary is None:
            continue
        report.shared_groups += 1
        if summary.reused:
            report.reused_summaries += 1
        report.summary_rows[summary.table] = summary.n_rows
        try:
            for position in positions:
                rewritten = summary.rewrite(parsed[position])
                report.results[position] = run_percentage_query(
                    db, rewritten)
                shared_positions.add(position)
        finally:
            if not keep_summaries:
                db.drop_table(summary.table, if_exists=True)
            elif summary.signature is not None:
                _kept_summaries.setdefault(db, {})[summary.signature] = \
                    summary.table

    for position, query in enumerate(parsed):
        if position not in shared_positions:
            report.fallback_queries += 1
            report.results[position] = run_percentage_query(db, query)
    return report


# ----------------------------------------------------------------------
def _share_key(query: PercentageQuery) -> Optional[tuple]:
    """Queries sharing a summary must read the same base table with the
    same filter and use only distributive terms."""
    if query.source_select is not None:
        return None
    for term in query.terms:
        if term.distinct or term.func in ("avg", "var", "stdev"):
            return None
    where = format_expr(query.where) if query.where is not None else ""
    return (query.table.lower(), where)


@dataclass
class _Base:
    """One base aggregate stored in the shared summary."""

    column: str
    func: str                    # aggregate applied on F
    refold: str                  # aggregate applied on the summary
    argument: Optional[ast.Expr]


class _SharedSummary:
    """The shared summary table plus the term-rewriting rules."""

    def __init__(self, table: str, n_rows: int,
                 bases: dict[tuple, _Base],
                 signature: Optional[tuple] = None,
                 reused: bool = False):
        self.table = table
        self.n_rows = n_rows
        self.signature = signature
        self.reused = reused
        self._bases = bases

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, db: Database, queries: list[PercentageQuery],
              allow_reuse: bool = False) -> Optional["_SharedSummary"]:
        union: list[str] = []
        for query in queries:
            for column in query.group_by:
                if column not in union:
                    union.append(column)
            for term in query.terms:
                for column in term.by_columns:
                    if column not in union:
                        union.append(column)
        if not union:
            return None

        bases: dict[tuple, _Base] = {}
        for query in queries:
            for term in query.terms:
                key = _base_key(term)
                if key not in bases:
                    bases[key] = _make_base(term, len(bases))

        first = queries[0]
        signature = None
        if db.has_table(first.table):
            # The fact table's version uniquely identifies its contents
            # (versions are never reused), so a kept summary built at
            # this version is valid exactly until the next DML.
            signature = (first.table.lower(),
                         db.table(first.table).version,
                         tuple(union), tuple(sorted(bases)),
                         format_expr(first.where)
                         if first.where is not None else "")
        if allow_reuse and signature is not None:
            registry = _kept_summaries.get(db, {})
            kept = registry.get(signature)
            if kept is not None and db.has_table(kept):
                return cls(kept, db.table(kept).n_rows, bases,
                           signature, reused=True)

        table = f"_shared{next(_counter)}"
        selects = [common.column_list(union)]
        for base in bases.values():
            if base.argument is None:
                selects.append(f"count(*) AS {base.column}")
            else:
                arg = format_expr(base.argument)
                selects.append(f"{base.func}({arg}) AS {base.column}")
        sql = (f"CREATE TABLE {table} AS SELECT "
               + ", ".join(selects)
               + f" FROM {first.table}"
               + common.where_suffix(first.where)
               + f" GROUP BY {common.column_list(union)}")
        db.execute(sql)
        n_rows = db.table(table).n_rows
        return cls(table, n_rows, bases, signature)

    # ------------------------------------------------------------------
    def rewrite(self, query: PercentageQuery) -> PercentageQuery:
        """The query re-based onto the summary table."""
        terms = []
        for term in query.terms:
            base = self._bases[_base_key(term)]
            # Preserve the column names the un-rewritten query would
            # produce: the label is what the generators use.
            alias = term.alias or term.label()
            terms.append(model.AggregateTerm(
                kind=term.kind,
                func=base.refold if term.kind == model.VERTICAL
                or term.kind == model.HAGG else term.func,
                argument=ast.ColumnRef(base.column),
                by_columns=term.by_columns,
                default=term.default,
                alias=alias,
                position=term.position))
        return PercentageQuery(
            table=self.table, group_by=query.group_by,
            dimensions=query.dimensions, terms=terms, where=None,
            sql=f"(shared-summary rewrite of: {query.sql})")


def _base_key(term: model.AggregateTerm) -> tuple:
    func = "sum" if term.kind in (model.VPCT, model.HPCT) \
        else term.func
    argument = format_expr(term.argument) if term.argument is not None \
        else "*"
    return (func, argument)


def _make_base(term: model.AggregateTerm, index: int) -> _Base:
    func = "sum" if term.kind in (model.VPCT, model.HPCT) \
        else term.func
    refold = {"sum": "sum", "count": "sum", "min": "min",
              "max": "max"}[func]
    return _Base(column=f"b{index}", func=func, refold=refold,
                 argument=term.argument)
