"""Unit tests for the hash-dispatch CASE optimization (the paper's
proposed O(1)-per-row evaluation of disjoint pivot aggregations)."""

import pytest

from repro import Database

PIVOT_SQL = """
SELECT g,
  sum(CASE WHEN d = 1 THEN a ELSE null END) AS c1,
  sum(CASE WHEN d = 2 THEN a ELSE null END) AS c2,
  sum(CASE WHEN d = 3 THEN a ELSE null END) AS c3
FROM t GROUP BY g ORDER BY g
"""

PIVOT_ZERO_SQL = PIVOT_SQL.replace("ELSE null", "ELSE 0")


@pytest.fixture
def pair():
    """Two identical databases, one linear and one hash dispatch."""
    databases = (Database(case_dispatch="linear"),
                 Database(case_dispatch="hash"))
    for db in databases:
        db.execute("CREATE TABLE t (g INT, d INT, a REAL)")
        db.execute(
            "INSERT INTO t VALUES (1, 1, 10.0), (1, 1, 5.0), "
            "(1, 2, 2.0), (2, 2, 7.0), (2, 3, NULL), (3, 1, 1.0)")
    return databases


class TestEquivalence:
    def test_else_null(self, pair):
        linear, hashed = pair
        assert linear.query(PIVOT_SQL) == hashed.query(PIVOT_SQL)

    def test_else_zero(self, pair):
        linear, hashed = pair
        assert linear.query(PIVOT_ZERO_SQL) == \
            hashed.query(PIVOT_ZERO_SQL)

    def test_expected_values(self, pair):
        _, hashed = pair
        rows = hashed.query(PIVOT_SQL)
        assert rows == [(1, 15.0, 2.0, None),
                        (2, None, 7.0, None),
                        (3, 1.0, None, None)]

    def test_all_null_cell_with_else_zero(self, pair):
        # Group 2 / d=3 has only a NULL measure: linear CASE sums the
        # zeros of non-matching rows, so the result is 0 -- the hash
        # path must agree.
        linear, hashed = pair
        rows_linear = linear.query(PIVOT_ZERO_SQL)
        rows_hashed = hashed.query(PIVOT_ZERO_SQL)
        assert rows_linear[1][3] == 0.0
        assert rows_linear == rows_hashed

    def test_multi_column_conjunction(self, pair):
        linear, hashed = pair
        sql = """
        SELECT sum(CASE WHEN g = 1 AND d = 1 THEN a ELSE null END),
               sum(CASE WHEN g = 1 AND d = 2 THEN a ELSE null END)
        FROM t
        """
        assert linear.query(sql) == hashed.query(sql) == [(15.0, 2.0)]

    def test_count_min_max_families(self, pair):
        linear, hashed = pair
        sql = """
        SELECT g,
          count(CASE WHEN d = 1 THEN a ELSE null END),
          count(CASE WHEN d = 2 THEN a ELSE null END)
        FROM t GROUP BY g ORDER BY g
        """
        assert linear.query(sql) == hashed.query(sql)


class TestCostAccounting:
    def test_hash_dispatch_charges_one_probe_per_row(self, pair):
        linear, hashed = pair
        linear.query(PIVOT_SQL)
        hashed.query(PIVOT_SQL)
        n = 6
        # Linear: 3 CASE terms x 1 WHEN x n rows; hash: n probes.
        assert linear.stats.case_evaluations >= 3 * n
        assert hashed.stats.case_evaluations < linear. \
            stats.case_evaluations

    def test_single_term_stays_linear(self):
        db = Database(case_dispatch="hash", keep_history=True)
        db.execute("CREATE TABLE t (g INT, d INT, a REAL)")
        db.execute("INSERT INTO t VALUES (1, 1, 1.0)")
        rows = db.query("SELECT g, sum(CASE WHEN d = 1 THEN a "
                        "ELSE null END) FROM t GROUP BY g")
        assert rows == [(1, 1.0)]


class TestNonPivotShapesFallThrough:
    """Shapes outside the disjoint-pivot pattern must still be correct
    under hash dispatch (they take the linear path)."""

    @pytest.mark.parametrize("sql", [
        # two WHENs in one CASE
        "SELECT sum(CASE WHEN d = 1 THEN a WHEN d = 2 THEN a END) "
        "FROM t",
        # non-equality condition
        "SELECT sum(CASE WHEN d > 1 THEN a END), "
        "sum(CASE WHEN d > 2 THEN a END) FROM t",
        # non-zero ELSE
        "SELECT sum(CASE WHEN d = 1 THEN a ELSE 1 END), "
        "sum(CASE WHEN d = 2 THEN a ELSE 1 END) FROM t",
        # avg with ELSE 0 must not take the pivot path
        "SELECT avg(CASE WHEN d = 1 THEN a ELSE 0 END), "
        "avg(CASE WHEN d = 2 THEN a ELSE 0 END) FROM t",
    ])
    def test_matches_linear(self, pair, sql):
        linear, hashed = pair
        assert linear.query(sql) == hashed.query(sql)


class TestMixedFunctionFamilies:
    """Terms sharing (pivot column, argument) form one dispatch family
    and share a single factorization pass -- but each distinct
    function still needs its own aggregate pass.  A shared family must
    never reuse the first term's aggregate for the others."""

    MIXED_SQL = """
    SELECT g,
      avg(CASE WHEN d = 1 THEN a ELSE null END) AS a1,
      sum(CASE WHEN d = 1 THEN a ELSE null END) AS s1,
      sum(CASE WHEN d = 2 THEN a ELSE null END) AS s2
    FROM t GROUP BY g ORDER BY g
    """

    def test_avg_and_sum_differ_per_cell(self, pair):
        linear, hashed = pair
        expected = linear.query(self.MIXED_SQL)
        assert hashed.query(self.MIXED_SQL) == expected
        # g=1, d=1 holds 10.0 and 5.0: avg 7.5, sum 15.0.
        assert expected[0] == (1, 7.5, 15.0, 2.0)

    def test_count_zero_does_not_leak_into_min(self, pair):
        # count() backfills 0 for untouched cells; min() of the same
        # family must stay NULL.
        sql = """
        SELECT
          count(CASE WHEN d = 3 THEN a ELSE null END) AS c3,
          min(CASE WHEN d = 3 THEN a ELSE null END) AS m3
        FROM t
        """
        linear, hashed = pair
        for db in (linear, hashed):
            assert db.query(sql) == [(0, None)]
