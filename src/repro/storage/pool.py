"""An LRU buffer pool over the disk manager.

All page reads go through :meth:`BufferPool.fetch_many`; a hit serves
the cached payload and refreshes recency, a miss reads (and verifies)
the page from disk and may evict the least-recently-used resident
page.  Writes are write-through: the page goes to disk immediately and
the fresh payload is cached, so the pool never holds dirty pages and
eviction is always a plain drop -- crash recovery therefore depends
only on the write-ahead log, never on pool state.

Traffic is accounted twice, deliberately:

* the pool's own counters feed the metrics registry under the
  storage-level names (``storage_pool_hits_total``,
  ``storage_pool_misses_total``, ``storage_pool_evictions_total``,
  ``storage_bytes_read``, ``storage_bytes_written``);
* the per-statement stats ledger is charged by the
  :class:`~repro.storage.engine.StorageEngine` fetch hook, which
  attributes fetches to the statement that caused them (see
  ``storage_page_fetches`` / ``storage_pool_hits`` /
  ``storage_page_reads`` in :mod:`repro.engine.stats`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.storage.disk import DiskManager

#: Default pool capacity in pages (4 MiB at the default page size).
DEFAULT_POOL_PAGES = 1024

_METRIC_HELP = {
    "storage_pool_hits_total": "buffer-pool page fetches served from "
                               "memory",
    "storage_pool_misses_total": "buffer-pool page fetches that read "
                                 "from disk",
    "storage_pool_evictions_total": "pages evicted from the buffer "
                                    "pool (LRU)",
    "storage_bytes_read": "bytes read from the page file on pool "
                          "misses",
    "storage_bytes_written": "bytes written through the pool to the "
                             "page file",
}


class BufferPool:
    """Fixed-capacity LRU cache of page payloads."""

    def __init__(self, disk: DiskManager, capacity_pages: int,
                 registry: Optional[MetricsRegistry] = None):
        if capacity_pages < 1:
            raise ValueError("capacity_pages must be >= 1")
        self.disk = disk
        self.capacity = capacity_pages
        self._pages: OrderedDict[int, bytes] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.pages_written = 0
        self._registry = registry
        if registry is not None:
            for name, help_text in _METRIC_HELP.items():
                registry.counter(name, help=help_text)

    # ------------------------------------------------------------------
    def fetch_many(self, page_ids: Sequence[int]
                   ) -> tuple[list[bytes], int, int]:
        """Fetch payloads for ``page_ids`` in order.

        Returns ``(payloads, hits, misses)`` for the caller to charge
        to the stats ledger; the pool-level registry counters are
        updated here in one batch.
        """
        payloads: list[bytes] = []
        hits = misses = evicted = 0
        with self._lock:
            for page_id in page_ids:
                cached = self._pages.get(page_id)
                if cached is not None:
                    self._pages.move_to_end(page_id)
                    hits += 1
                else:
                    cached = self.disk.read_page(page_id)
                    misses += 1
                    self._pages[page_id] = cached
                    evicted += self._evict_over_capacity()
                payloads.append(cached)
            self.hits += hits
            self.misses += misses
            self.evictions += evicted
        self._record(hits=hits, misses=misses, evictions=evicted)
        return payloads, hits, misses

    def fetch(self, page_id: int) -> bytes:
        return self.fetch_many([page_id])[0][0]

    def write(self, page_id: int, payload: bytes) -> None:
        """Write-through: the page hits disk now and the payload is
        cached (not counted as pool traffic -- fetch counters measure
        read behavior only)."""
        self.disk.write_page(page_id, payload)
        with self._lock:
            self._pages[page_id] = payload
            self._pages.move_to_end(page_id)
            evicted = self._evict_over_capacity()
            self.evictions += evicted
            self.pages_written += 1
        self._record(evictions=evicted, written=1)

    def _evict_over_capacity(self) -> int:
        evicted = 0
        while len(self._pages) > self.capacity:
            self._pages.popitem(last=False)
            evicted += 1
        return evicted

    # ------------------------------------------------------------------
    def invalidate(self, page_ids: Sequence[int]) -> None:
        """Drop cached payloads (freed pages must not be served)."""
        with self._lock:
            for page_id in page_ids:
                self._pages.pop(page_id, None)

    def clear(self) -> None:
        with self._lock:
            self._pages.clear()

    def resident_pages(self) -> int:
        with self._lock:
            return len(self._pages)

    def info(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {
                "pages": len(self._pages),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "pages_written": self.pages_written,
                "hit_rate": self.hits / total if total else 0.0,
            }

    # ------------------------------------------------------------------
    def _record(self, hits: int = 0, misses: int = 0,
                evictions: int = 0, written: int = 0) -> None:
        if self._registry is None:
            return
        counts = {}
        if hits:
            counts["storage_pool_hits_total"] = hits
        if misses:
            counts["storage_pool_misses_total"] = misses
            counts["storage_bytes_read"] = misses * self.disk.page_size
        if evictions:
            counts["storage_pool_evictions_total"] = evictions
        if written:
            counts["storage_bytes_written"] = \
                written * self.disk.page_size
        if counts:
            self._registry.increment(counts)
