"""Page allocation and raw page I/O over one data file.

The :class:`DiskManager` owns the single ``data.pages`` file of a
store: page ``i`` lives at byte offset ``i * page_size``.  It hands out
page ids (lowest free id first, so allocation is deterministic),
writes and reads whole verified pages, and exposes the fsync barrier
the write-ahead log's commit protocol builds on.

Writes deliberately pass through the ``storage-page-write`` fault
site *between the two halves of the page image*: an injected crash
there leaves a genuinely torn page on disk -- exactly what a power cut
mid-write produces -- which recovery must tolerate for uncommitted
pages and detect (via the checksum) for committed ones.
"""

from __future__ import annotations

import heapq
import os
import threading
from typing import Iterable, Sequence

from repro.engine import faults
from repro.errors import PageCorruptError, StorageError
from repro.storage.pages import (DEFAULT_PAGE_SIZE, decode_page,
                                 encode_page, payload_capacity)


class DiskManager:
    """Allocates page ids and performs verified page I/O."""

    def __init__(self, path: str,
                 page_size: int = DEFAULT_PAGE_SIZE):
        if page_size < 64:
            raise StorageError("page_size must be at least 64 bytes")
        self.path = path
        self.page_size = page_size
        self._fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        self._lock = threading.Lock()
        #: One past the highest page id ever allocated.
        self.next_page_id = max(
            0, (os.fstat(self._fd).st_size + page_size - 1) // page_size)
        self._free: list[int] = []   # min-heap of reusable ids
        self._closed = False

    @property
    def payload_capacity(self) -> int:
        return payload_capacity(self.page_size)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, count: int = 1) -> list[int]:
        """``count`` fresh page ids, lowest reusable ids first."""
        with self._lock:
            ids = []
            for _ in range(count):
                if self._free:
                    ids.append(heapq.heappop(self._free))
                else:
                    ids.append(self.next_page_id)
                    self.next_page_id += 1
            return ids

    def free(self, page_ids: Iterable[int]) -> None:
        """Return pages to the free list for reuse."""
        with self._lock:
            known = set(self._free)
            for page_id in page_ids:
                if 0 <= page_id < self.next_page_id \
                        and page_id not in known:
                    heapq.heappush(self._free, page_id)
                    known.add(page_id)

    def set_allocation(self, next_page_id: int,
                       free: Sequence[int]) -> None:
        """Install recovered allocation state (recovery only)."""
        with self._lock:
            self.next_page_id = max(int(next_page_id), 0)
            self._free = [p for p in set(free)
                          if 0 <= p < self.next_page_id]
            heapq.heapify(self._free)

    def free_page_ids(self) -> set[int]:
        with self._lock:
            return set(self._free)

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def write_page(self, page_id: int, payload: bytes) -> None:
        """Write one page image; passes the ``storage-page-write``
        fault site mid-image so an injected crash tears the page."""
        self._check_open()
        raw = encode_page(page_id, payload, self.page_size)
        offset = page_id * self.page_size
        half = len(raw) // 2
        os.pwrite(self._fd, raw[:half], offset)
        faults.fire("storage-page-write")
        os.pwrite(self._fd, raw[half:], offset + half)

    def read_page(self, page_id: int) -> bytes:
        """Read and verify one page, returning its payload."""
        self._check_open()
        raw = os.pread(self._fd, self.page_size,
                       page_id * self.page_size)
        if len(raw) < self.page_size:
            raise PageCorruptError(
                f"page {page_id} is torn: read {len(raw)} of "
                f"{self.page_size} bytes")
        return decode_page(page_id, raw, self.page_size)

    def sync(self) -> None:
        """fsync barrier: all prior page writes are durable after this
        returns."""
        self._check_open()
        os.fsync(self._fd)

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(
                f"disk manager for {self.path!r} is closed")

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            os.close(self._fd)
