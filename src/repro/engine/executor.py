"""Statement execution: the interpreter that runs parsed SQL against a
catalog.

The executor is deliberately an *interpreting* engine (no compiled
plans): each SELECT is evaluated as

    FROM/WHERE join planning  ->  Dataset (aligned tables)
    -> residual filter
    -> aggregation (factorize + vectorized aggregates) or projection
    -> window functions
    -> DISTINCT -> HAVING -> ORDER BY -> LIMIT

DML statements (CREATE/INSERT/UPDATE/DELETE) mutate the catalog and
charge the statistics counters that the paper's cost arguments rely on
(rows scanned/written/updated, CASE term evaluations, index lookups).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.engine import aggregates as agg_mod
from repro.engine import cancel
from repro.engine import pivot as pivot_mod
from repro.engine.catalog import Catalog
from repro.engine.column import ColumnData
from repro.engine.expressions import Frame, evaluate, untyped_null
from repro.engine.governor import ResourceGovernor
from repro.engine import groupingsets as gs_mod
from repro.engine.groupby import (PartitionedGrouping, distinct_indices,
                                  encode_column, factorize,
                                  factorize_partitioned)
from repro.engine.join import join_indices, prepare_side
from repro.engine.planner import (FromPlan, PlannedJoin,
                                  null_safe_equality, plan_from)
from repro.engine.schema import ColumnDef, TableSchema
from repro.engine.stats import StatsCollector
from repro.engine.table import Table
from repro.engine.types import SQLType, coerce_scalar, type_from_name
from repro.engine.window import evaluate_window
from repro.errors import (ExecutionError, GroupingSetError,
                          PlanningError, TypeMismatchError)
from repro.obs.tracer import Tracer
from repro.sql import ast


@dataclass
class ExecutorOptions:
    """Tunable evaluation behavior.

    ``case_dispatch``:
        ``"linear"`` (default) evaluates every CASE term for every row,
        which is what the paper says real optimizers do; ``"hash"``
        enables the O(1)-per-row dispatch the paper proposes for
        disjoint pivot-style CASE aggregations (Section 3.2 /
        DMKD Section 3.5) -- the ablation benchmark toggles this.
    ``use_indexes``:
        when True, joins reuse a covering index's pre-built hash side.
    ``use_encoding_cache``:
        when True (default), base-table dictionary encodings are served
        from the catalog's table-versioned cache instead of being
        recomputed per plan step.  Disabling it (the
        ``--no-encoding-cache`` ablation) changes wall-clock time only;
        results and logical-I/O counters are identical either way.
    ``parallel_degree`` / ``parallel_row_threshold``:
        intra-query parallelism: aggregations over at least
        ``parallel_row_threshold`` input rows fan out over up to
        ``parallel_degree`` workers.  Results are bit-identical to
        serial execution on every backend, so this is a wall-clock
        knob only.
    ``parallel_backend``:
        which substrate runs the fan-out: ``"thread"`` (default)
        hash-partitions over the shared operator thread pool;
        ``"process"`` dispatches group-aligned morsels to the worker
        *process* pool over shared-memory column blocks (GIL-free --
        see docs/parallelism.md); ``"serial"`` disables parallel
        aggregation regardless of ``parallel_degree``.
    ``morsel_rows``:
        target rows per process-backend morsel.  Smaller morsels
        improve load balancing on skewed groups; larger morsels
        amortize per-task dispatch overhead.
    ``storage``:
        which table substrate the owning Database runs on --
        ``"memory"`` (heap tables) or ``"disk"`` (page-backed tables
        behind a buffer pool).  Informational at the executor level
        (tables arrive already bound to their backend); EXPLAIN
        reports it.
    ``matview_rewrite``:
        when True (default), a SELECT that matches a registered
        materialized view's canonical definition is answered from the
        view (refreshing it first when stale), and percentage queries
        short-circuit through :func:`repro.core.execute.generate_plan`
        the same way.  ``Database.execute(..., use_views=False)``
        disables it per statement for recompute baselines.
    """

    case_dispatch: str = "linear"
    use_indexes: bool = True
    use_encoding_cache: bool = True
    parallel_degree: int = 1
    parallel_row_threshold: int = 20_000
    parallel_backend: str = "thread"
    morsel_rows: int = 8192
    storage: str = "memory"
    matview_rewrite: bool = True


#: Default row count below which parallel aggregation is not worth the
#: fan-out overhead (mirrors ``ExecutorOptions.parallel_row_threshold``).
DEFAULT_PARALLEL_ROW_THRESHOLD = 20_000

#: Parallel execution substrates (``ExecutorOptions.parallel_backend``).
PARALLEL_BACKENDS = ("serial", "thread", "process")

#: Default target rows per process-backend morsel (mirrors
#: ``ExecutorOptions.morsel_rows``).
DEFAULT_MORSEL_ROWS = 8192


@dataclass
class Dataset:
    """Aligned tables produced by FROM/JOIN evaluation.

    Every table has the same row count; ``pristine`` maps a binding to
    its base-table name while the binding is still an unfiltered scan
    of that table (which is when an index on it is usable).
    """

    bindings: list[str] = field(default_factory=list)
    tables: dict[str, Table] = field(default_factory=dict)
    pristine: dict[str, Optional[str]] = field(default_factory=dict)

    @property
    def n_rows(self) -> int:
        if not self.bindings:
            return 1  # the FROM-less dummy row
        return self.tables[self.bindings[0]].n_rows

    def add(self, binding: str, table: Table,
            base_name: Optional[str]) -> None:
        key = binding.lower()
        if key in self.tables:
            raise PlanningError(f"duplicate table binding {binding!r}")
        self.bindings.append(key)
        self.tables[key] = table
        self.pristine[key] = base_name

    def frame(self) -> Frame:
        frame = Frame(self.n_rows)
        for binding in self.bindings:
            frame.add_table(binding, self.tables[binding])
        return frame

    def gather(self, indices: np.ndarray,
               which: Optional[list[str]] = None) -> None:
        """Gather rows (with -1 meaning an all-NULL row) in place for
        the chosen bindings (default: all)."""
        mask = indices < 0
        safe = np.where(mask, 0, indices)
        for binding in (which if which is not None else self.bindings):
            table = self.tables[binding]
            if table.n_rows == 0 and mask.any():
                gathered = _all_null_like(table, len(indices))
            else:
                gathered = table.take(safe) if table.n_rows else \
                    _all_null_like(table, len(indices))
                if mask.any():
                    gathered = _null_out(gathered, mask)
            self.tables[binding] = gathered
            self.pristine[binding] = None


def _all_null_like(table: Table, length: int) -> Table:
    columns = {c.name: ColumnData.all_null(c.sql_type, length)
               for c in table.schema.columns}
    return Table(table.schema, columns)


def _null_out(table: Table, mask: np.ndarray) -> Table:
    columns = {}
    for col_def in table.schema.columns:
        data = table.column(col_def.name)
        columns[col_def.name] = ColumnData(
            data.sql_type, data.values, data.nulls | mask)
    return Table(table.schema, columns)


class Executor:
    """Executes statements against a catalog, charging ``stats``."""

    def __init__(self, catalog: Catalog, stats: StatsCollector,
                 options: Optional[ExecutorOptions] = None,
                 governor: Optional[ResourceGovernor] = None,
                 tracer: Optional[Tracer] = None):
        self.catalog = catalog
        self.stats = stats
        self.options = options or ExecutorOptions()
        # Budget checks are no-ops outside an open governor window, so
        # a standalone Executor (unit tests) runs ungoverned.
        self.governor = governor or ResourceGovernor()
        # A standalone Executor traces nothing; the Database hands in
        # its (possibly enabled) tracer.
        self.tracer = tracer if tracer is not None \
            else Tracer(enabled=False)
        self.catalog.encoding_cache.bind_stats(stats)
        # Per-thread parallel-degree observation: one executor serves
        # every scheduler worker, so the record of "what degree did my
        # statements run at" must not leak across concurrent queries.
        self._parallel_local = threading.local()

    @property
    def encoding_cache(self):
        """The catalog's dictionary-encoding cache, or None when the
        ablation toggle disables it."""
        if not self.options.use_encoding_cache:
            return None
        return self.catalog.encoding_cache

    # ------------------------------------------------------------------
    # Parallel-degree observation (per thread, i.e. per in-flight query)
    # ------------------------------------------------------------------
    def reset_parallel_observation(self) -> None:
        """Start a fresh observation window on this thread (the plan
        runner calls this before a plan's first statement)."""
        self._parallel_local.observed = 1

    def note_parallel_degree(self, degree: int) -> None:
        current = getattr(self._parallel_local, "observed", 1)
        self._parallel_local.observed = max(current, int(degree))

    def _note_thread_parallel(self, degree: int) -> None:
        """Observation plus the per-backend task counter for thread
        fan-outs (the process backend counts its own dispatches)."""
        self.note_parallel_degree(degree)
        self.stats.registry.counter(
            "engine_parallel_tasks_total",
            help="parallel tasks dispatched, by backend",
            backend="thread").inc(int(degree))

    def parallel_degree_observed(self) -> int:
        """The widest fan-out any operator on this thread used since
        the last :meth:`reset_parallel_observation` (1 = all serial)."""
        return getattr(self._parallel_local, "observed", 1)

    def _parallel_degree_for(self, n_rows: int) -> int:
        from repro.core.partitioning import choose_parallel_degree
        return choose_parallel_degree(
            n_rows, self.options.parallel_degree,
            self.options.parallel_row_threshold)

    # ------------------------------------------------------------------
    # Instrumented stats charging
    # ------------------------------------------------------------------
    def _charge(self, op: str, **counts: int) -> None:
        """Charge stats counters and mirror them as a ``charge`` trace
        event, so the span tree accounts for exactly what the ledger
        recorded (:func:`repro.obs.tracer.audit_statement_span`)."""
        self.stats.add(**counts)
        tracer = self.tracer
        if tracer.enabled:
            tracer.event(op, kind="charge", **counts)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def execute(self, statement: ast.Statement) -> Table | int:
        """Run one statement; SELECT returns a Table, DML a row count."""
        cancel.checkpoint("statement")
        self.governor.check_time("statement start")
        if isinstance(statement, ast.Select):
            return self.run_select(statement)
        if isinstance(statement, ast.CreateTable):
            return self._create_table(statement)
        if isinstance(statement, ast.CreateTableAs):
            return self._create_table_as(statement)
        if isinstance(statement, ast.DropTable):
            self.catalog.drop_table(statement.name, statement.if_exists)
            return 0
        if isinstance(statement, ast.CreateIndex):
            self.catalog.create_index(statement.name, statement.table,
                                      statement.columns)
            return 0
        if isinstance(statement, ast.DropIndex):
            self.catalog.drop_index(statement.name, statement.if_exists)
            return 0
        if isinstance(statement, ast.InsertValues):
            return self._insert_values(statement)
        if isinstance(statement, ast.InsertSelect):
            return self._insert_select(statement)
        if isinstance(statement, ast.Update):
            return self._update(statement)
        if isinstance(statement, ast.Delete):
            return self._delete(statement)
        if isinstance(statement, ast.CreateView):
            self.catalog.create_view(statement.name, statement.select)
            return 0
        if isinstance(statement, ast.DropView):
            self.catalog.drop_view(statement.name, statement.if_exists)
            return 0
        if isinstance(statement, ast.CreateMaterializedView):
            return self._create_matview(statement)
        if isinstance(statement, ast.DropMaterializedView):
            self.catalog.drop_matview(statement.name,
                                      statement.if_exists)
            return 0
        if isinstance(statement, ast.RefreshMaterializedView):
            return self._refresh_matview(statement)
        if isinstance(statement, ast.Explain):
            from repro.engine.explain import (explain_analyze_statement,
                                              explain_statement)
            if statement.analyze:
                return explain_analyze_statement(self,
                                                 statement.statement)
            return explain_statement(self, statement.statement)
        raise PlanningError(f"cannot execute statement {statement!r}")

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------
    def run_select(self, select: ast.Select,
                   result_name: str = "result") -> Table:
        mv = self.matview_for_select(select)
        if mv is not None:
            return self._serve_matview(mv).renamed(result_name)
        self._reject_extended(select)
        dataset = self._build_dataset(select)
        frame = dataset.frame()

        order_fallback: Optional[Frame] = None
        if ast.has_grouping_sets(select):
            result = self._run_grouping_sets(select, frame, result_name)
        elif _is_aggregate_query(select):
            self._reject_grouping_funcs(select)
            result = self._run_aggregate(select, frame, result_name)
        else:
            self._reject_grouping_funcs(select)
            if select.having is not None:
                raise PlanningError("HAVING requires GROUP BY or "
                                    "aggregates")
            result = self._run_projection(select, dataset, frame,
                                          result_name)
            if not select.distinct:
                # Rows are still aligned 1:1 with the source frame, so
                # ORDER BY may reference non-projected source columns.
                order_fallback = frame

        if select.distinct:
            columns = [result.column(c) for c in result.column_names()]
            keep = distinct_indices(columns, result.n_rows,
                                    self.encoding_cache)
            result = result.take(keep)
        if select.order_by:
            result = self._apply_order(select, result, order_fallback)
        if select.limit is not None:
            result = result.take(
                np.arange(min(select.limit, result.n_rows)))
        cancel.checkpoint("projection")
        self.governor.check_width(result.schema.width(), "projection")
        self.governor.charge_rows(result.n_rows, "projection")
        return result

    def _reject_extended(self, select: ast.Select) -> None:
        for item in select.items:
            if not isinstance(item.expr, ast.Star) \
                    and ast.contains_extended(item.expr):
                raise PlanningError(
                    "Vpct()/Hpct()/BY-extended aggregates are not "
                    "executable directly; rewrite the query with "
                    "repro.core first (this engine plays the role of "
                    "the standard-SQL DBMS in the paper's architecture)")

    # -- FROM -------------------------------------------------------------
    def _build_dataset(self, select: ast.Select) -> Dataset:
        dataset = Dataset()
        if select.from_ is None:
            return dataset

        schemas: dict[str, TableSchema] = {}
        materialized: dict[str, tuple[Table, Optional[str]]] = {}
        for source in select.from_.sources():
            binding = source.binding.lower()
            table, base = self._materialize_source(source)
            if binding in materialized:
                raise PlanningError(f"duplicate table binding "
                                    f"{source.binding!r}")
            materialized[binding] = (table, base)
            schemas[binding] = table.schema

        def resolve_binding(ref: ast.ColumnRef,
                            candidates: list[str]) -> Optional[str]:
            if ref.table:
                key = ref.table.lower()
                if key in candidates and key in schemas \
                        and schemas[key].has_column(ref.name):
                    return key
                return None
            owners = [b for b in candidates
                      if b in schemas and schemas[b].has_column(ref.name)]
            if len(owners) == 1:
                return owners[0]
            return None

        plan = plan_from(select.from_, select.where, resolve_binding)

        first_table, first_base = materialized[plan.first.binding.lower()]
        cancel.checkpoint("scan")
        self._charge("scan", rows_scanned=first_table.n_rows)
        self.governor.charge_rows(first_table.n_rows, "scan")
        dataset.add(plan.first.binding, first_table, first_base)

        for join in plan.joins:
            right_table, right_base = \
                materialized[join.source.binding.lower()]
            cancel.checkpoint("scan")
            self._charge("scan", rows_scanned=right_table.n_rows)
            self.governor.charge_rows(right_table.n_rows, "scan")
            self._apply_join(dataset, join, right_table, right_base)

        if plan.residual_where is not None:
            frame = dataset.frame()
            mask_col = evaluate(plan.residual_where, frame, self.stats)
            mask = np.asarray(mask_col.values, dtype=bool) & \
                ~mask_col.nulls
            indices = np.nonzero(mask)[0]
            dataset.gather(indices)
        return dataset

    def _materialize_source(self, source: ast.FromSource
                            ) -> tuple[Table, Optional[str]]:
        if isinstance(source, ast.TableRef):
            if self.catalog.has_matview(source.name):
                mv = self.catalog.matview(source.name)
                served = self._serve_matview(mv)
                return served.renamed(source.binding), None
            if self.catalog.has_view(source.name):
                view = self.run_select(self.catalog.view(source.name),
                                       result_name=source.binding)
                return view.renamed(source.binding), None
            table = self.catalog.table(source.name)
            return table.renamed(source.binding), source.name
        result = self.run_select(source.select, result_name=source.alias)
        return result.renamed(source.alias), None

    def _apply_join(self, dataset: Dataset, join: PlannedJoin,
                    right_table: Table,
                    right_base: Optional[str]) -> None:
        with self.tracer.span("join", kind="operator",
                              table=join.source.binding,
                              join_kind=join.kind) as span:
            self._apply_join_inner(dataset, join, right_table,
                                   right_base, span)

    def _apply_join_inner(self, dataset: Dataset, join: PlannedJoin,
                          right_table: Table,
                          right_base: Optional[str], span) -> None:
        binding = join.source.binding
        if not join.left_keys:
            self._cartesian(dataset, binding, right_table, span)
        else:
            frame = dataset.frame()
            left_cols = [evaluate(k, frame, self.stats)
                         for k in join.left_keys]
            right_frame = Frame(right_table.n_rows)
            right_frame.add_table(binding, right_table)
            right_cols = [evaluate(k, right_frame, self.stats)
                          for k in join.right_keys]

            outer = join.kind == "left"
            swap = (not outer) and dataset.n_rows < right_table.n_rows
            if swap:
                build_cols, probe_cols = left_cols, right_cols
                build_binding, build_base = None, None
            else:
                build_cols, probe_cols = right_cols, left_cols
                build_binding, build_base = binding, right_base

            null_safe = list(join.null_safe) \
                or [False] * len(join.left_keys)
            prepared = None
            if self.options.use_indexes and build_base is not None \
                    and not any(null_safe) \
                    and dataset_pristine(dataset, build_binding,
                                         right_base, right_table):
                key_names = _plain_key_names(join.right_keys)
                if key_names is not None:
                    index = self.catalog.find_index(build_base, key_names)
                    if index is not None and index.prepared is not None:
                        order = [key_names.index(c)
                                 for c in index.column_names]
                        build_cols = [build_cols[i] for i in order]
                        probe_cols = [probe_cols[i] for i in order]
                        prepared = index.prepared
                        self._charge("index-probe", index_lookups=(
                            len(probe_cols[0]) if probe_cols else 0))

            probe_idx, build_idx, _ = join_indices(
                probe_cols, build_cols, outer, prepared_right=prepared,
                cache=self.encoding_cache, null_safe=null_safe)

            if swap:
                left_indices, right_indices = build_idx, probe_idx
            else:
                left_indices, right_indices = probe_idx, build_idx
            self._charge("join-output", rows_joined=len(left_indices))
            self.governor.charge_rows(len(left_indices), "join")
            if span is not None:
                span.attrs["rows"] = len(left_indices)
                span.attrs["indexed"] = prepared is not None

            dataset.gather(left_indices)
            dataset.add(binding, right_table, None)
            dataset.gather(right_indices, which=[binding.lower()])

        if join.residual is not None:
            frame = dataset.frame()
            mask_col = evaluate(join.residual, frame, self.stats)
            mask = np.asarray(mask_col.values, dtype=bool) & \
                ~mask_col.nulls
            dataset.gather(np.nonzero(mask)[0])

    def _cartesian(self, dataset: Dataset, binding: str,
                   right_table: Table, span=None) -> None:
        n_left, n_right = dataset.n_rows, right_table.n_rows
        left_indices = np.repeat(np.arange(n_left, dtype=np.int64),
                                 n_right)
        right_indices = np.tile(np.arange(n_right, dtype=np.int64),
                                n_left)
        self._charge("join-output", rows_joined=n_left * n_right)
        self.governor.charge_rows(n_left * n_right, "cartesian join")
        if span is not None:
            span.attrs["rows"] = n_left * n_right
            span.attrs["cartesian"] = True
        dataset.gather(left_indices)
        dataset.add(binding, right_table, None)
        dataset.gather(right_indices, which=[binding.lower()])

    # -- projection (no aggregation) ---------------------------------------
    def _run_projection(self, select: ast.Select, dataset: Dataset,
                        frame: Frame, result_name: str) -> Table:
        named: list[tuple[str, ColumnData]] = []
        for i, item in enumerate(select.items):
            if isinstance(item.expr, ast.Star):
                named.extend(self._expand_star(item.expr, dataset))
                continue
            expr = self._bind_windows(item.expr, frame)
            data = evaluate(expr, frame, self.stats)
            named.append((_output_name(item, i), _concrete(data)))
        return Table.from_columns(result_name, _dedupe_names(named))

    def _expand_star(self, star: ast.Star, dataset: Dataset
                     ) -> list[tuple[str, ColumnData]]:
        if not dataset.bindings:
            raise PlanningError("'*' requires a FROM clause")
        bindings = dataset.bindings
        if star.table:
            key = star.table.lower()
            if key not in dataset.tables:
                raise PlanningError(f"unknown table {star.table!r} in "
                                    f"'{star.table}.*'")
            bindings = [key]
        named = []
        for binding in bindings:
            table = dataset.tables[binding]
            for col in table.schema.columns:
                named.append((col.name, table.column(col.name)))
        return named

    def _bind_windows(self, expr: ast.Expr, frame: Frame) -> ast.Expr:
        """Evaluate window function calls and splice their results into
        the frame, returning an expression free of OVER clauses."""
        counter = [0]

        def rewrite(node: ast.Expr) -> ast.Expr:
            if isinstance(node, ast.FuncCall) and node.over is not None:
                partition = [evaluate(p, frame, self.stats)
                             for p in node.over.partition_by]
                if node.args and isinstance(node.args[0], ast.Star):
                    arg = None
                elif node.args:
                    arg = evaluate(node.args[0], frame, self.stats)
                else:
                    raise PlanningError(
                        f"window function {node.name}() needs an "
                        f"argument")
                result = evaluate_window(node.name, arg, partition,
                                         frame.n_rows, self.stats,
                                         self.encoding_cache)
                name = f"__win{counter[0]}"
                counter[0] += 1
                frame.add_column(name, result)
                return ast.ColumnRef(name)
            return _rebuild(node, rewrite)

        return rewrite(expr)

    # -- aggregation --------------------------------------------------------
    def _run_aggregate(self, select: ast.Select, frame: Frame,
                       result_name: str) -> Table:
        group_exprs = self._resolve_group_by(select)
        key_columns = [evaluate(e, frame, self.stats)
                       for e in group_exprs]
        with self.tracer.span("group-by-build", kind="operator",
                              input_rows=frame.n_rows) as build_span:
            backend = self.options.parallel_backend
            degree = 1 if backend == "serial" \
                else self._parallel_degree_for(frame.n_rows)
            pgrouping: Optional[PartitionedGrouping] = None
            if degree > 1 and backend == "thread":
                # The process backend factorizes serially: its fan-out
                # unit is the group-aligned morsel, planned after the
                # grouping exists (see _compute_aggregates).
                pgrouping = factorize_partitioned(
                    key_columns, frame.n_rows, self.encoding_cache,
                    degree)
            if pgrouping is not None:
                grouping = pgrouping.grouping
                self._note_thread_parallel(pgrouping.degree)
            else:
                grouping = factorize(key_columns, frame.n_rows,
                                     self.encoding_cache)
            self.governor.charge_rows(grouping.n_groups, "group-by")
            if build_span is not None:
                build_span.attrs["groups"] = grouping.n_groups
                build_span.attrs["degree"] = (
                    pgrouping.degree if pgrouping is not None else 1)
        firsts = _first_positions(grouping.group_ids, grouping.n_groups)

        group_frame = Frame(grouping.n_groups)
        group_map: dict[Any, str] = {}
        for j, (expr, column) in enumerate(zip(group_exprs, key_columns)):
            name = f"__key{j}"
            group_frame.add_column(name, column.take(firsts))
            group_map[_normalize(expr, frame)] = name

        agg_specs: list[ast.FuncCall] = []
        agg_map: dict[Any, str] = {}

        def rewrite(node: ast.Expr) -> ast.Expr:
            norm = _normalize(node, frame)
            if norm in group_map:
                return ast.ColumnRef(group_map[norm])
            if isinstance(node, ast.FuncCall) and node.over is not None:
                new_args = tuple(rewrite(a) if not isinstance(a, ast.Star)
                                 else a for a in node.args)
                new_partition = tuple(rewrite(p)
                                      for p in node.over.partition_by)
                return ast.FuncCall(node.name, new_args, node.distinct,
                                    over=ast.WindowSpec(new_partition))
            if isinstance(node, ast.FuncCall) \
                    and node.name in ast.AGGREGATE_NAMES:
                if norm in agg_map:
                    return ast.ColumnRef(agg_map[norm])
                name = f"__agg{len(agg_specs)}"
                agg_specs.append(node)
                agg_map[norm] = name
                return ast.ColumnRef(name)
            if isinstance(node, ast.ColumnRef):
                raise PlanningError(
                    f"column {node.name!r} must appear in GROUP BY or "
                    f"inside an aggregate")
            return _rebuild(node, rewrite)

        rewritten_items: list[tuple[ast.SelectItem, ast.Expr]] = []
        for item in select.items:
            if isinstance(item.expr, ast.Star):
                raise PlanningError("'*' cannot appear in an aggregate "
                                    "select list")
            rewritten_items.append((item, rewrite(item.expr)))
        rewritten_having = rewrite(select.having) \
            if select.having is not None else None

        with self.tracer.span("group-by-aggregate", kind="operator",
                              groups=grouping.n_groups,
                              aggregates=len(agg_specs)):
            self._compute_aggregates(agg_specs, frame, grouping,
                                     group_frame, pgrouping=pgrouping,
                                     parallel_degree=degree)

        named: list[tuple[str, ColumnData]] = []
        for i, (item, expr) in enumerate(rewritten_items):
            expr = self._bind_windows(expr, group_frame)
            data = evaluate(expr, group_frame, self.stats)
            named.append((_output_name(item, i), _concrete(data)))
        result = Table.from_columns(result_name, _dedupe_names(named))

        if rewritten_having is not None:
            having = self._bind_windows(rewritten_having, group_frame)
            mask_col = evaluate(having, group_frame, self.stats)
            mask = np.asarray(mask_col.values, dtype=bool) & \
                ~mask_col.nulls
            result = result.take(np.nonzero(mask)[0])
        return result

    def _reject_grouping_funcs(self, select: ast.Select) -> None:
        """grouping()/pct() only mean something against a grouping-sets
        lattice; anywhere else they get a typed error, not an unknown-
        function failure."""
        exprs = [item.expr for item in select.items
                 if not isinstance(item.expr, ast.Star)]
        if select.having is not None:
            exprs.append(select.having)
        for expr in exprs:
            if ast.contains_grouping_func(expr):
                raise GroupingSetError(
                    "grouping() and pct() require GROUP BY "
                    "CUBE/ROLLUP/GROUPING SETS")

    def _run_grouping_sets(self, select: ast.Select, frame: Frame,
                           result_name: str) -> Table:
        """Shared-scan evaluation of a CUBE/ROLLUP/GROUPING SETS query.

        One factorize over the union of all grouping dims; every set's
        grouping is derived from it at group level (bit-identical to a
        standalone GROUP BY of that set, see repro.engine.groupingsets).
        Exact aggregates fold from the fold source's partials along
        lattice edges; order-sensitive ones recompute from base rows.
        Output rows carry NULL placeholders for absent dims and are
        emitted set by set in request order.
        """
        for item in select.items:
            if isinstance(item.expr, ast.Star):
                raise PlanningError("'*' cannot appear in an aggregate "
                                    "select list")
            if ast.contains_window(item.expr):
                raise PlanningError(
                    "window functions are not supported with "
                    "CUBE/ROLLUP/GROUPING SETS")
        raw_sets = gs_mod.expand_group_by(
            select.group_by,
            lambda e: self._resolve_group_expr(e, select))
        plan = gs_mod.build_plan(raw_sets,
                                 key_of=lambda e: _normalize(e, frame))
        key_columns = [evaluate(e, frame, self.stats)
                       for e in plan.dims]
        dim_map = {_normalize(e, frame): i
                   for i, e in enumerate(plan.dims)}

        with self.tracer.span("grouping-sets-build", kind="operator",
                              input_rows=frame.n_rows, sets=plan.n_sets,
                              dims=len(plan.dims)) as build_span:
            union = factorize(key_columns, frame.n_rows,
                              self.encoding_cache)
            if build_span is not None:
                build_span.attrs["union_groups"] = union.n_groups

        # -- per-set item rewriting (masks differ per set; aggregate
        # and pct specs are shared across sets via the maps) ----------
        agg_specs: list[ast.FuncCall] = []
        agg_map: dict[Any, str] = {}
        pct_specs: list[ast.FuncCall] = []
        pct_map: dict[Any, str] = {}

        def make_rewrite(set_dims: tuple[int, ...]):
            def rewrite(node: ast.Expr) -> ast.Expr:
                norm = _normalize(node, frame)
                if norm in dim_map:
                    return ast.ColumnRef(f"__dim{dim_map[norm]}")
                if isinstance(node, ast.FuncCall) \
                        and node.name == "grouping":
                    if not node.args:
                        raise GroupingSetError(
                            "grouping() requires at least one argument")
                    arg_dims = []
                    for arg in node.args:
                        key = _normalize(arg, frame)
                        if key not in dim_map:
                            raise GroupingSetError(
                                "grouping() arguments must be grouping "
                                "columns of the query",
                                gs_mod.render_set(node.args))
                        arg_dims.append(dim_map[key])
                    return ast.Literal(
                        gs_mod.grouping_mask(arg_dims, set_dims))
                if isinstance(node, ast.FuncCall) and node.name == "pct":
                    if (len(node.args) != 1 or node.distinct
                            or node.by_columns or node.default is not None
                            or node.over is not None):
                        raise GroupingSetError(
                            "pct() takes exactly one plain argument")
                    if norm in pct_map:
                        return ast.ColumnRef(pct_map[norm])
                    name = f"__pct{len(pct_specs)}"
                    pct_specs.append(node)
                    pct_map[norm] = name
                    return ast.ColumnRef(name)
                if isinstance(node, ast.FuncCall) \
                        and node.name in ast.AGGREGATE_NAMES \
                        and node.over is None:
                    if norm in agg_map:
                        return ast.ColumnRef(agg_map[norm])
                    name = f"__agg{len(agg_specs)}"
                    agg_specs.append(node)
                    agg_map[norm] = name
                    return ast.ColumnRef(name)
                if isinstance(node, ast.ColumnRef):
                    raise PlanningError(
                        f"column {node.name!r} must appear in GROUP BY "
                        f"or inside an aggregate")
                return _rebuild(node, rewrite)
            return rewrite

        per_set_items: list[list[tuple[ast.SelectItem, ast.Expr]]] = []
        per_set_having: list[Optional[ast.Expr]] = []
        for spec in plan.sets:
            rewrite = make_rewrite(spec.dims)
            per_set_items.append([(item, rewrite(item.expr))
                                  for item in select.items])
            per_set_having.append(rewrite(select.having)
                                  if select.having is not None else None)

        # -- evaluate aggregate arguments once (the shared scan) -------
        arg_cols: list[Optional[ColumnData]] = []
        for spec in agg_specs:
            if spec.args and isinstance(spec.args[0], ast.Star):
                if spec.name != "count":
                    raise PlanningError(
                        f"{spec.name}(*) is not valid; only count(*)")
                arg_cols.append(None)
            else:
                if len(spec.args) != 1:
                    raise PlanningError(
                        f"{spec.name}() takes exactly one argument")
                arg_cols.append(_concrete(
                    evaluate(spec.args[0], frame, self.stats)))
        pct_args = [_concrete(evaluate(spec.args[0], frame, self.stats))
                    for spec in pct_specs]

        # The internal compute list: aggregate specs first, then one
        # sum per pct measure (the shared partials percentages read).
        compute: list[tuple[str, str, Optional[ColumnData], bool]] = []
        for i, spec in enumerate(agg_specs):
            compute.append((f"__agg{i}", spec.name, arg_cols[i],
                            spec.distinct))
        for j in range(len(pct_specs)):
            compute.append((f"__pctsum{j}", "sum", pct_args[j], False))

        backend = self.options.parallel_backend
        degree = 1 if backend == "serial" \
            else self._parallel_degree_for(frame.n_rows)

        # -- compute each distinct set once, finest first, so fold
        # sources exist before their dependants ------------------------
        by_dims: dict[tuple[int, ...], gs_mod.SetGrouping] = {}
        partials: dict[tuple[int, ...], dict[str, ColumnData]] = {}
        fold_source_of: dict[tuple[int, ...], Optional[tuple[int, ...]]] \
            = {}
        for spec in plan.sets:
            if spec.dims not in fold_source_of:
                fold_source_of[spec.dims] = (
                    plan.sets[spec.fold_source].dims
                    if spec.fold_source is not None else None)
        order = sorted(fold_source_of, key=lambda d: (-len(d), d))
        for dims in order:
            cancel.checkpoint("group-by")
            label = gs_mod.render_set(
                tuple(plan.dims[i] for i in dims))
            with self.tracer.span("grouping-set", kind="operator",
                                  set=label) as set_span:
                sg = gs_mod.derive_set_grouping(union, dims,
                                                frame.n_rows)
                self.governor.charge_rows(sg.grouping.n_groups,
                                          "group-by")
                by_dims[dims] = sg
                source = fold_source_of[dims]
                folded = 0
                local: dict[str, ColumnData] = {}
                recompute: list[tuple[str, str, Optional[ColumnData],
                                      bool]] = []
                for name, func, arg, distinct in compute:
                    can_fold = (
                        source is not None
                        and by_dims[source].grouping.n_groups > 0
                        and gs_mod.fold_eligible(func, arg, distinct))
                    if can_fold:
                        mapping = gs_mod.fine_to_coarse(by_dims[source],
                                                        sg)
                        local[name] = gs_mod.fold_aggregate(
                            func, partials[source][name], mapping,
                            sg.grouping.n_groups)
                        folded += 1
                    else:
                        recompute.append((name, func, arg, distinct))
                self._compute_set_aggregates(recompute, sg.grouping,
                                             local, degree)
                partials[dims] = local
                if set_span is not None:
                    set_span.attrs["groups"] = sg.grouping.n_groups
                    set_span.attrs["folded"] = folded
                    set_span.attrs["recomputed"] = len(recompute)

        # -- emit per requested set, in request order ------------------
        result: Optional[Table] = None
        for spec in plan.sets:
            sg = by_dims[spec.dims]
            n_groups = sg.grouping.n_groups
            group_frame = Frame(n_groups)
            dim_positions = {dim: pos
                             for pos, dim in enumerate(spec.dims)}
            for i, key_col in enumerate(key_columns):
                if i in dim_positions:
                    data = sg.grouping.key_column(dim_positions[i])
                else:
                    data = ColumnData.all_null(key_col.sql_type,
                                               n_groups)
                group_frame.add_column(f"__dim{i}", data)
            for name, data in partials[spec.dims].items():
                if not name.startswith("__pctsum"):
                    group_frame.add_column(name, data)
            for j in range(len(pct_specs)):
                own = partials[spec.dims][f"__pctsum{j}"]
                if spec.pct_parent is None:
                    parent_sums = own
                    parent_ids = np.arange(n_groups, dtype=np.int64)
                else:
                    parent_dims = plan.sets[spec.pct_parent].dims
                    parent_sums = partials[parent_dims][f"__pctsum{j}"]
                    parent_ids = gs_mod.fine_to_coarse(
                        sg, by_dims[parent_dims])
                group_frame.add_column(
                    f"__pct{j}", gs_mod.percentage_column(
                        own, parent_sums, parent_ids))

            named: list[tuple[str, ColumnData]] = []
            for i, (item, expr) in enumerate(per_set_items[spec.position]):
                data = evaluate(expr, group_frame, self.stats)
                named.append((_output_name(item, i), _concrete(data)))
            piece = Table.from_columns(result_name, _dedupe_names(named))
            having = per_set_having[spec.position]
            if having is not None:
                mask_col = evaluate(having, group_frame, self.stats)
                mask = np.asarray(mask_col.values, dtype=bool) & \
                    ~mask_col.nulls
                piece = piece.take(np.nonzero(mask)[0])
            result = piece if result is None else result.append(piece)
        assert result is not None  # expansion yields >= 1 set
        return result

    def _compute_set_aggregates(self, items: list[tuple[str, str,
                                                        Optional[ColumnData],
                                                        bool]],
                                grouping, out: dict[str, ColumnData],
                                degree: int) -> None:
        """Aggregate pre-evaluated argument columns under one derived
        set grouping.  With the process backend the whole batch ships
        as one shared-memory dispatch (morsel partials merge per set);
        the thread backend's partition fan-out needs the raw key
        columns, so derived groupings aggregate serially there."""
        if not items:
            return
        use_process = (degree > 1
                       and self.options.parallel_backend == "process")
        if use_process:
            from repro.engine import process_backend
            results = process_backend.run_grouped_aggregates(
                [(i, func, arg, distinct)
                 for i, (_, func, arg, distinct) in enumerate(items)],
                grouping.group_ids, grouping.n_groups,
                self.encoding_cache,
                morsel_rows=self.options.morsel_rows,
                metrics=self.stats.registry, tracer=self.tracer,
                on_parallel=self.note_parallel_degree)
            for i, data in results.items():
                out[items[i][0]] = data
            return
        for name, func, arg, distinct in items:
            if arg is None:
                out[name] = agg_mod.count_star(grouping.group_ids,
                                               grouping.n_groups)
            else:
                out[name] = agg_mod.compute_aggregate(
                    func, arg, distinct, grouping.group_ids,
                    grouping.n_groups, self.encoding_cache)

    def _compute_aggregates(self, agg_specs: list[ast.FuncCall],
                            frame: Frame, grouping, group_frame,
                            pgrouping: Optional[PartitionedGrouping]
                            = None,
                            parallel_degree: int = 1) -> None:
        """Evaluate each distinct aggregate over the base frame, binding
        ``__aggI`` columns into the group frame.  When hash dispatch is
        enabled, disjoint pivot-style CASE aggregations are computed in
        one factorize pass instead of N masked passes.  With a
        partitioned grouping, per-spec aggregation fans out over the
        operator pool (bit-identical merge by scatter); with the
        process backend, all eligible aggregates ship to worker
        processes in one shared-memory dispatch."""
        handled: set[int] = set()
        use_process = (parallel_degree > 1
                       and self.options.parallel_backend == "process")
        process_agg = self._process_agg_hook() if use_process else None
        if self.options.case_dispatch == "hash":
            with self.tracer.span("pivot", kind="operator") as span:
                handled = pivot_mod.compute_pivot_aggregates(
                    agg_specs, frame, grouping, group_frame, self.stats,
                    self.encoding_cache,
                    parallel_degree=1 if use_process
                    else parallel_degree,
                    on_parallel=self._note_thread_parallel,
                    process_agg=process_agg)
                if span is not None:
                    span.attrs["aggregates"] = len(handled)
                    span.attrs["groups"] = grouping.n_groups
        if use_process:
            self._compute_aggregates_process(agg_specs, frame, grouping,
                                             group_frame, handled)
            return
        for i, spec in enumerate(agg_specs):
            if i in handled:
                continue
            if spec.args and isinstance(spec.args[0], ast.Star):
                if spec.name != "count":
                    raise PlanningError(
                        f"{spec.name}(*) is not valid; only count(*)")
                if pgrouping is not None:
                    data = agg_mod.count_star_partitioned(pgrouping)
                else:
                    data = agg_mod.count_star(grouping.group_ids,
                                              grouping.n_groups)
            else:
                if len(spec.args) != 1:
                    raise PlanningError(
                        f"{spec.name}() takes exactly one argument")
                arg = evaluate(spec.args[0], frame, self.stats)
                if pgrouping is not None:
                    data = agg_mod.compute_aggregate_partitioned(
                        spec.name, _concrete(arg), spec.distinct,
                        pgrouping)
                else:
                    data = agg_mod.compute_aggregate(
                        spec.name, _concrete(arg), spec.distinct,
                        grouping.group_ids, grouping.n_groups,
                        self.encoding_cache)
            group_frame.add_column(f"__agg{i}", data)

    def _process_agg_hook(self):
        """The batch-aggregation closure handed to operators that run
        on the multiprocess backend (currently the pivot family)."""
        from repro.engine import process_backend

        def process_agg(items, group_ids, n_groups):
            return process_backend.run_grouped_aggregates(
                items, group_ids, n_groups, None,
                morsel_rows=self.options.morsel_rows,
                metrics=self.stats.registry, tracer=self.tracer,
                on_parallel=self.note_parallel_degree)

        return process_agg

    def _compute_aggregates_process(self, agg_specs: list[ast.FuncCall],
                                    frame: Frame, grouping, group_frame,
                                    handled: set[int]) -> None:
        """Process-backend aggregation: evaluate every argument
        expression here (exactly once, charging stats as serial does),
        then ship the whole batch in one shared-memory dispatch.
        Ineligible aggregates are computed locally inside the backend,
        so results and errors match the serial path."""
        from repro.engine import process_backend

        items: list[tuple] = []
        for i, spec in enumerate(agg_specs):
            if i in handled:
                continue
            if spec.args and isinstance(spec.args[0], ast.Star):
                if spec.name != "count":
                    raise PlanningError(
                        f"{spec.name}(*) is not valid; only count(*)")
                items.append((i, "count", None, False))
            else:
                if len(spec.args) != 1:
                    raise PlanningError(
                        f"{spec.name}() takes exactly one argument")
                arg = evaluate(spec.args[0], frame, self.stats)
                items.append((i, spec.name, _concrete(arg),
                              spec.distinct))
        results = process_backend.run_grouped_aggregates(
            items, grouping.group_ids, grouping.n_groups,
            self.encoding_cache,
            morsel_rows=self.options.morsel_rows,
            metrics=self.stats.registry, tracer=self.tracer,
            on_parallel=self.note_parallel_degree)
        for i, data in results.items():
            group_frame.add_column(f"__agg{i}", data)

    def _resolve_group_by(self, select: ast.Select) -> list[ast.Expr]:
        return [self._resolve_group_expr(e, select)
                for e in select.group_by]

    @staticmethod
    def _resolve_group_expr(expr: ast.Expr,
                            select: ast.Select) -> ast.Expr:
        """Positional GROUP BY resolution for one expression (also
        applied inside CUBE/ROLLUP/GROUPING SETS elements)."""
        if isinstance(expr, ast.Literal) \
                and isinstance(expr.value, int):
            position = expr.value
            if not 1 <= position <= len(select.items):
                raise PlanningError(
                    f"GROUP BY position {position} is out of range")
            target = select.items[position - 1].expr
            if ast.contains_aggregate(target):
                raise PlanningError(
                    f"GROUP BY position {position} refers to an "
                    f"aggregate expression")
            return target
        return expr

    # -- ORDER BY -----------------------------------------------------------
    def _apply_order(self, select: ast.Select, result: Table,
                     fallback: Optional[Frame] = None) -> Table:
        """Sort the result.  Keys resolve against the output columns
        first; for plain (non-DISTINCT) projections they may also
        reference source columns via ``fallback``."""
        frame = Frame(result.n_rows)
        frame.add_table(result.name, result)
        keys = []
        directions = []
        for item in select.order_by:
            expr = item.expr
            if isinstance(expr, ast.Literal) and isinstance(expr.value,
                                                            int):
                position = expr.value
                if not 1 <= position <= result.schema.width():
                    raise PlanningError(
                        f"ORDER BY position {position} is out of range")
                column = result.column(result.column_names()[position - 1])
            else:
                try:
                    column = evaluate(expr, frame, self.stats)
                except PlanningError:
                    if fallback is None:
                        raise
                    column = evaluate(expr, fallback, self.stats)
            keys.append(encode_column(_concrete(column),
                                      self.encoding_cache).codes)
            directions.append(item.ascending)
        sort_keys = []
        for codes, ascending in zip(keys, directions):
            sort_keys.append(codes if ascending else -codes)
        order = np.lexsort(tuple(reversed(sort_keys)))
        return result.take(order)

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    # ------------------------------------------------------------------
    # Materialized views (repro.views)
    # ------------------------------------------------------------------
    def matview_for_select(self, select: ast.Select):
        """The materialized view answering ``select`` whole, if any.

        Matching is by canonical statement text (the whole-SELECT
        structural rewrite); gated by ``options.matview_rewrite`` so
        recompute baselines can bypass views.  No side effects --
        EXPLAIN uses this too."""
        if not self.options.matview_rewrite \
                or not self.catalog.matviews():
            return None
        from repro.views.rewrite import match_view
        return match_view(self.catalog, select)

    def _serve_matview(self, mv) -> Table:
        """The view's result, refreshed first when stale.

        A fresh hit costs O(1); a stale view (its base was replaced
        without maintenance, e.g. by CREATE TABLE ... REPLACE or a raw
        catalog swap) is fully rebuilt and the replacement published
        before serving, so no reader ever sees stale rows."""
        base = self.catalog.table(mv.definition.base_table)
        registry = self.stats.registry
        lag = base.version - mv.base_version
        registry.gauge(
            "view_staleness_lag",
            help="base-table versions ahead of the served view",
            view=mv.name).set(max(0, lag))
        if mv.fresh(base):
            registry.counter(
                "view_hits_total",
                help="reads answered from a materialized view",
                view=mv.name).inc()
            return mv.result
        refreshed, elapsed = self._timed_refresh(mv.definition, base)
        self.catalog.publish_matviews({refreshed.key: refreshed})
        self._observe_refresh(mv.name, "full", elapsed)
        registry.gauge("view_staleness_lag",
                       help="base-table versions ahead of the served "
                            "view",
                       view=mv.name).set(0)
        return refreshed.result

    def _timed_refresh(self, definition, table):
        import time

        from repro.views import maintenance
        start = time.perf_counter()
        refreshed = maintenance.refresh(definition, table, self.stats)
        return refreshed, time.perf_counter() - start

    def _observe_refresh(self, view_name: str, mode: str,
                         elapsed: float) -> None:
        registry = self.stats.registry
        registry.counter(
            "view_refreshes_total",
            help="materialized-view refreshes by maintenance mode",
            view=view_name, mode=mode).inc()
        registry.gauge(
            "view_maintenance_seconds",
            help="seconds spent in the last refresh of this view",
            view=view_name, mode=mode).set(elapsed)

    def _maintain_matviews(self, old_table: Table, new_table: Table,
                           change) -> Optional[dict]:
        """Delta-maintain every view on ``old_table`` for one DML.

        Returns replacement view objects for
        :meth:`Catalog.replace_table` to publish atomically with the
        new table, or None when the table has no dependent views."""
        dependents = self.catalog.matviews_on(old_table.name)
        if not dependents:
            return None
        import time

        from repro.views import maintenance
        replacements: dict[str, object] = {}
        for mv in dependents:
            start = time.perf_counter()
            refreshed, mode = maintenance.maintain(
                mv, old_table, new_table, change, self.stats)
            elapsed = time.perf_counter() - start
            replacements[refreshed.key] = refreshed
            self._observe_refresh(mv.name, mode, elapsed)
        return replacements

    def _create_matview(self, statement: ast.CreateMaterializedView
                        ) -> int:
        from repro.views.maintenance import build_matview
        if self.catalog.has_matview(statement.name):
            from repro.errors import CatalogError
            raise CatalogError(f"materialized view {statement.name!r} "
                               f"already exists")
        mv = build_matview(self.catalog, statement.name,
                           statement.select, self.stats)
        self.catalog.create_matview(mv)
        self._charge("write", rows_written=mv.result.n_rows)
        return mv.result.n_rows

    def _refresh_matview(self, statement: ast.RefreshMaterializedView
                         ) -> int:
        mv = self.catalog.matview(statement.name)
        base = self.catalog.table(mv.definition.base_table)
        refreshed, elapsed = self._timed_refresh(mv.definition, base)
        self.catalog.publish_matviews({refreshed.key: refreshed})
        self._observe_refresh(mv.name, "full", elapsed)
        return refreshed.result.n_rows

    def _create_table(self, statement: ast.CreateTable) -> int:
        if statement.if_not_exists \
                and self.catalog.has_table(statement.name):
            return 0
        columns = [ColumnDef(c.name, type_from_name(c.type_name))
                   for c in statement.columns]
        schema = TableSchema(statement.name, columns,
                             tuple(statement.primary_key))
        self.governor.check_width(schema.width(), "create table")
        self.catalog.create_table(Table(schema))
        return 0

    def _create_table_as(self, statement: ast.CreateTableAs) -> int:
        result = self.run_select(statement.select,
                                 result_name=statement.name)
        self.catalog.create_table(result)
        self._charge("write", rows_written=result.n_rows)
        return result.n_rows

    def _insert_values(self, statement: ast.InsertValues) -> int:
        cancel.checkpoint("dml")
        table = self.catalog.table(statement.table)
        schema = table.schema
        column_order = list(statement.columns) or schema.column_names()
        if len(column_order) != schema.width() and statement.columns:
            raise PlanningError(
                "INSERT with a column list must cover every column "
                "(partial inserts are not supported)")
        rows = []
        for row in statement.rows:
            if len(row) != len(column_order):
                raise PlanningError(
                    f"INSERT row has {len(row)} values, expected "
                    f"{len(column_order)}")
            values = {}
            for name, expr in zip(column_order, row):
                target = schema.column_type(name)
                raw = _constant_value(expr)
                values[name.lower()] = coerce_scalar(raw, target) \
                    if raw is not None else None
            rows.append(tuple(values[c.name.lower()]
                              for c in schema.columns))
        appended = table.append(Table.from_rows(schema, rows))
        self.catalog.replace_table(
            appended,
            matviews=self._maintain_matviews(
                table, appended, ("insert", table.n_rows)))
        self._charge("write", rows_written=len(rows))
        self.governor.charge_rows(len(rows), "insert")
        return len(rows)

    def _insert_select(self, statement: ast.InsertSelect) -> int:
        cancel.checkpoint("dml")
        table = self.catalog.table(statement.table)
        schema = table.schema
        result = self.run_select(statement.select)
        column_order = list(statement.columns) or schema.column_names()
        if len(column_order) != result.schema.width():
            raise PlanningError(
                f"INSERT ... SELECT produces {result.schema.width()} "
                f"columns; target list has {len(column_order)}")
        named = []
        for target_name, source_name in zip(column_order,
                                            result.column_names()):
            target_type = schema.column_type(target_name)
            data = result.column(source_name)
            named.append((schema.column(target_name).name,
                          _coerce_column(data, target_type)))
        block = Table(TableSchema(schema.name,
                                  [schema.column(c) for c in column_order]),
                      dict(named))
        # Reorder block columns into schema order before appending.
        ordered = {c.name: block.column(c.name) for c in schema.columns}
        appended = table.append(Table(schema, ordered))
        self.catalog.replace_table(
            appended,
            matviews=self._maintain_matviews(
                table, appended, ("insert", table.n_rows)))
        self._charge("write", rows_written=result.n_rows)
        self.governor.charge_rows(result.n_rows, "insert-select")
        return result.n_rows

    def _update(self, statement: ast.Update) -> int:
        cancel.checkpoint("dml")
        table = self.catalog.table(statement.table.name)
        binding = statement.table.binding
        n = table.n_rows

        if statement.from_tables:
            frame, matched, where_mask = self._update_join_frame(
                statement, table, binding)
        else:
            frame = Frame(n)
            frame.add_table(binding, table)
            if statement.table.alias:
                pass  # alias already covers qualified references
            matched = np.ones(n, dtype=bool)
            where_mask = np.ones(n, dtype=bool)
            if statement.where is not None:
                mask_col = evaluate(statement.where, frame, self.stats)
                where_mask = np.asarray(mask_col.values, dtype=bool) & \
                    ~mask_col.nulls
            self._charge("scan", rows_scanned=n)

        to_update = matched & where_mask
        updated = table
        for assignment in statement.assignments:
            target_type = table.schema.column_type(assignment.column)
            new_col = evaluate(assignment.value, frame, self.stats)
            new_col = _coerce_column(_concrete(new_col), target_type)
            old = updated.column(assignment.column)
            values = np.where(to_update, new_col.values, old.values)
            if target_type == SQLType.VARCHAR:
                values = values.astype(object)
            nulls = np.where(to_update, new_col.nulls, old.nulls)
            updated = updated.replace_column(
                assignment.column,
                ColumnData(target_type, values, nulls))
        # Row-store semantics (the substrate stands in for Teradata):
        # an UPDATE rewrites whole rows, not just the assigned column.
        assigned = {a.column.lower() for a in statement.assignments}
        for col_def in table.schema.columns:
            if col_def.name.lower() not in assigned:
                updated = updated.replace_column(
                    col_def.name, updated.column(col_def.name).copy())
        self.catalog.replace_table(
            updated,
            matviews=self._maintain_matviews(
                table, updated, ("update", to_update)))
        count = int(to_update.sum())
        self._charge("update", rows_updated=count)
        self.governor.charge_rows(n, "update")
        return count

    def _update_join_frame(self, statement: ast.Update, table: Table,
                           binding: str):
        """Frame for a join update: target columns plus the (at most
        one) matching row of the FROM table per target row."""
        if len(statement.from_tables) != 1:
            raise PlanningError(
                "UPDATE ... FROM supports exactly one joined table")
        from_ref = statement.from_tables[0]
        from_table = self.catalog.table(from_ref.name) \
            .renamed(from_ref.binding)
        self._charge("scan",
                     rows_scanned=table.n_rows + from_table.n_rows)

        target_frame = Frame(table.n_rows)
        target_frame.add_table(binding, table)
        from_frame = Frame(from_table.n_rows)
        from_frame.add_table(from_ref.binding, from_table)

        join_left: list[ColumnData] = []
        join_right: list[ColumnData] = []
        right_key_names: list[str] = []
        null_safe: list[bool] = []
        residual: list[ast.Expr] = []
        for conjunct in _split_and(statement.where):
            pair = _update_key_pair(conjunct, target_frame, from_frame)
            if pair is not None:
                left_col, right_col, right_name, ns = pair
                join_left.append(left_col)
                join_right.append(right_col)
                right_key_names.append(right_name)
                null_safe.append(ns)
            else:
                residual.append(conjunct)
        if not join_left:
            raise PlanningError(
                "UPDATE ... FROM requires equality predicates joining "
                "the target and the FROM table")

        prepared = None
        if self.options.use_indexes and not any(null_safe):
            index = self.catalog.find_index(from_ref.name,
                                            right_key_names)
            if index is not None and index.prepared is not None:
                order = [right_key_names.index(c)
                         for c in index.column_names]
                join_left = [join_left[i] for i in order]
                join_right = [join_right[i] for i in order]
                prepared = index.prepared
                self._charge("index-probe", index_lookups=table.n_rows)

        probe_idx, build_idx, _ = join_indices(join_left, join_right,
                                               outer=True,
                                               prepared_right=prepared,
                                               cache=self.encoding_cache,
                                               null_safe=null_safe)
        if len(probe_idx) != table.n_rows:
            raise ExecutionError(
                "UPDATE ... FROM matched a target row against more "
                "than one source row")
        order = np.argsort(probe_idx, kind="stable")
        build_for_target = build_idx[order]
        matched = build_for_target >= 0
        self._charge("join-output", rows_joined=int(matched.sum()))

        frame = Frame(table.n_rows)
        frame.add_table(binding, table)
        safe = np.where(matched, build_for_target, 0)
        for col_def in from_table.schema.columns:
            data = from_table.column(col_def.name)
            gathered = ColumnData(data.sql_type, data.values[safe],
                                  data.nulls[safe] | ~matched)
            frame.add_column(col_def.name, gathered,
                             binding=from_ref.binding)

        where_mask = np.ones(table.n_rows, dtype=bool)
        for conjunct in residual:
            mask_col = evaluate(conjunct, frame, self.stats)
            where_mask &= np.asarray(mask_col.values, dtype=bool) & \
                ~mask_col.nulls
        return frame, matched, where_mask

    def _delete(self, statement: ast.Delete) -> int:
        cancel.checkpoint("dml")
        table = self.catalog.table(statement.table.name)
        n = table.n_rows
        self._charge("scan", rows_scanned=n)
        if statement.where is None:
            keep = np.zeros(n, dtype=bool)
        else:
            frame = Frame(n)
            frame.add_table(statement.table.binding, table)
            mask_col = evaluate(statement.where, frame, self.stats)
            hit = np.asarray(mask_col.values, dtype=bool) & ~mask_col.nulls
            keep = ~hit
        deleted = n - int(keep.sum())
        kept = table.filter(keep)
        self.catalog.replace_table(
            kept,
            matviews=self._maintain_matviews(
                table, kept, ("delete", keep)))
        self._charge("update", rows_updated=deleted)
        self.governor.charge_rows(n, "delete")
        return deleted


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _is_aggregate_query(select: ast.Select) -> bool:
    if select.group_by or select.having is not None:
        return True
    return any(not isinstance(item.expr, ast.Star)
               and ast.contains_aggregate(item.expr)
               for item in select.items)


def _first_positions(group_ids: np.ndarray, n_groups: int) -> np.ndarray:
    """Index of the first row of each group, ordered by group id."""
    if n_groups == 0:
        return np.empty(0, dtype=np.int64)
    if len(group_ids) == 0:
        # The single global group over an empty input: no representative
        # row exists; callers only use firsts with key columns, which
        # are absent in this case.
        return np.zeros(n_groups, dtype=np.int64)
    order = np.argsort(group_ids, kind="stable")
    sorted_ids = group_ids[order]
    starts = np.ones(len(order), dtype=bool)
    starts[1:] = sorted_ids[1:] != sorted_ids[:-1]
    return order[starts]


def _output_name(item: ast.SelectItem, position: int) -> str:
    if item.alias:
        return item.alias
    if isinstance(item.expr, ast.ColumnRef):
        return item.expr.name
    return f"col{position + 1}"


def _dedupe_names(named: list[tuple[str, ColumnData]]
                  ) -> list[tuple[str, ColumnData]]:
    seen: dict[str, int] = {}
    out = []
    for name, data in named:
        key = name.lower()
        if key in seen:
            seen[key] += 1
            name = f"{name}_{seen[key]}"
        else:
            seen[key] = 0
        out.append((name, data))
    return out


def _concrete(data: ColumnData) -> ColumnData:
    """Commit untyped NULL columns to REAL for output."""
    if data.sql_type is None:
        return ColumnData.all_null(SQLType.REAL, len(data))
    return data


def _coerce_column(data: ColumnData, target: SQLType) -> ColumnData:
    if data.sql_type is None or (data.sql_type != target
                                 and bool(data.nulls.all())):
        return ColumnData.all_null(target, len(data))
    if data.sql_type == target:
        return data
    if data.sql_type == SQLType.INTEGER and target == SQLType.REAL:
        return data.cast(SQLType.REAL)
    if data.sql_type == SQLType.BOOLEAN and target in (SQLType.INTEGER,
                                                       SQLType.REAL):
        return data.cast(target)
    raise TypeMismatchError(
        f"cannot store {data.sql_type} values into a {target} column")


def _constant_value(expr: ast.Expr) -> Any:
    from repro.engine.expressions import evaluate_scalar
    return evaluate_scalar(expr)


def _split_and(expr: Optional[ast.Expr]) -> list[ast.Expr]:
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _split_and(expr.left) + _split_and(expr.right)
    return [expr]


def _update_key_pair(conjunct: ast.Expr, target_frame: Frame,
                     from_frame: Frame):
    """Resolve ``a.x = b.y`` (or its null-safe OR form) into (target
    key column, from key column, from-side column name, null_safe), in
    either order."""
    null_safe = False
    if isinstance(conjunct, ast.BinaryOp) and conjunct.op == "=":
        left, right = conjunct.left, conjunct.right
        if not (isinstance(left, ast.ColumnRef)
                and isinstance(right, ast.ColumnRef)):
            return None
    else:
        pair = null_safe_equality(conjunct)
        if pair is None:
            return None
        left, right = pair
        null_safe = True
    left_in_target = target_frame.has(left)
    right_in_target = target_frame.has(right)
    left_in_from = from_frame.has(left)
    right_in_from = from_frame.has(right)
    if left_in_target and right_in_from and not right_in_target:
        return (target_frame.resolve(left), from_frame.resolve(right),
                right.name.lower(), null_safe)
    if right_in_target and left_in_from and not left_in_target:
        return (target_frame.resolve(right), from_frame.resolve(left),
                left.name.lower(), null_safe)
    return None


def _rebuild(expr: ast.Expr, rewrite: Callable[[ast.Expr], ast.Expr]
             ) -> ast.Expr:
    """Rebuild a node with rewritten children (leaves returned as-is)."""
    if isinstance(expr, (ast.Literal, ast.ColumnRef, ast.Star)):
        return expr
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, rewrite(expr.operand))
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(expr.op, rewrite(expr.left),
                            rewrite(expr.right))
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(rewrite(expr.operand), expr.negated)
    if isinstance(expr, ast.InList):
        return ast.InList(rewrite(expr.operand),
                          tuple(rewrite(i) for i in expr.items),
                          expr.negated)
    if isinstance(expr, ast.CaseWhen):
        whens = tuple((rewrite(c), rewrite(r)) for c, r in expr.whens)
        else_ = rewrite(expr.else_) if expr.else_ is not None else None
        return ast.CaseWhen(whens, else_)
    if isinstance(expr, ast.Cast):
        return ast.Cast(rewrite(expr.operand), expr.type_name)
    if isinstance(expr, ast.FuncCall):
        args = tuple(a if isinstance(a, ast.Star) else rewrite(a)
                     for a in expr.args)
        over = expr.over
        if over is not None:
            over = ast.WindowSpec(tuple(rewrite(p)
                                        for p in over.partition_by))
        default = rewrite(expr.default) if expr.default is not None \
            else None
        return ast.FuncCall(expr.name, args, expr.distinct,
                            expr.by_columns, default, over)
    raise PlanningError(f"cannot rewrite expression node {expr!r}")


def _normalize(expr: ast.Expr, frame: Frame):
    """A hashable structural key for an expression, with column
    references resolved to the identity of their backing arrays so that
    ``D1``, ``F.D1`` and an aliased spelling all normalize equally."""
    if isinstance(expr, ast.Literal):
        return ("lit", expr.value)
    if isinstance(expr, ast.ColumnRef):
        return ("col", id(frame.resolve(expr)))
    if isinstance(expr, ast.Star):
        return ("star", expr.table and expr.table.lower())
    if isinstance(expr, ast.UnaryOp):
        return ("un", expr.op, _normalize(expr.operand, frame))
    if isinstance(expr, ast.BinaryOp):
        return ("bin", expr.op, _normalize(expr.left, frame),
                _normalize(expr.right, frame))
    if isinstance(expr, ast.IsNull):
        return ("isnull", expr.negated, _normalize(expr.operand, frame))
    if isinstance(expr, ast.InList):
        return ("in", expr.negated, _normalize(expr.operand, frame),
                tuple(_normalize(i, frame) for i in expr.items))
    if isinstance(expr, ast.CaseWhen):
        whens = tuple((_normalize(c, frame), _normalize(r, frame))
                      for c, r in expr.whens)
        else_ = _normalize(expr.else_, frame) \
            if expr.else_ is not None else None
        return ("case", whens, else_)
    if isinstance(expr, ast.Cast):
        return ("cast", expr.type_name.upper(),
                _normalize(expr.operand, frame))
    if isinstance(expr, ast.FuncCall):
        over = None
        if expr.over is not None:
            over = tuple(_normalize(p, frame)
                         for p in expr.over.partition_by)
        return ("func", expr.name, expr.distinct,
                tuple(_normalize(a, frame) for a in expr.args), over)
    raise PlanningError(f"cannot normalize expression {expr!r}")


def dataset_pristine(dataset: Dataset, build_binding: Optional[str],
                     right_base: Optional[str],
                     right_table: Table) -> bool:
    """True when the chosen build side is still an untouched base-table
    scan (its index digests are valid)."""
    return build_binding is not None and right_base is not None


def _plain_key_names(keys: list[ast.ColumnRef]) -> Optional[list[str]]:
    """Lower-case column names of the build keys (they are always plain
    column references by planner construction)."""
    return [ref.name.lower() for ref in keys]
