"""Unit tests for the vectorized expression evaluator, with emphasis on
three-valued NULL logic."""

import pytest

from repro.engine.column import ColumnData
from repro.engine.expressions import Frame, evaluate, evaluate_scalar
from repro.engine.types import SQLType
from repro.errors import PlanningError, TypeMismatchError
from repro.sql.parser import parse_expression


def make_frame(**columns) -> Frame:
    length = len(next(iter(columns.values())))
    frame = Frame(length)
    for name, values in columns.items():
        if all(isinstance(v, (int, type(None))) for v in values):
            sql_type = SQLType.INTEGER
        elif any(isinstance(v, str) for v in values):
            sql_type = SQLType.VARCHAR
        else:
            sql_type = SQLType.REAL
        frame.add_column(name, ColumnData.from_values(sql_type, values))
    return frame


def run(text, **columns):
    frame = make_frame(**columns)
    return evaluate(parse_expression(text), frame).to_pylist()


class TestArithmetic:
    def test_add(self):
        assert run("a + b", a=[1, 2], b=[10, 20]) == [11, 22]

    def test_null_propagates(self):
        assert run("a + 1", a=[1, None]) == [2, None]

    def test_division_yields_real(self):
        assert run("a / 2", a=[5]) == [2.5]

    def test_division_by_zero_is_null(self):
        assert run("a / b", a=[1, 1], b=[0, 2]) == [None, 0.5]

    def test_unary_minus(self):
        assert run("-a", a=[3, None]) == [-3, None]

    def test_string_arithmetic_raises(self):
        with pytest.raises(TypeMismatchError):
            run("a + 1", a=["x"])


class TestComparisons:
    def test_literal_fast_path(self):
        assert run("a = 2", a=[1, 2, None]) == [False, True, None]
        assert run("2 = a", a=[1, 2]) == [False, True]
        assert run("a < 2", a=[1, 3]) == [True, False]
        assert run("2 < a", a=[1, 3]) == [False, True]

    def test_column_comparison(self):
        assert run("a <> b", a=[1, 2], b=[1, 3]) == [False, True]

    def test_string_comparison(self):
        assert run("a = 'x'", a=["x", "y", None]) == [True, False, None]

    def test_mixed_numeric(self):
        frame = Frame(1)
        frame.add_column("a", ColumnData.from_values(SQLType.INTEGER,
                                                     [2]))
        frame.add_column("b", ColumnData.from_values(SQLType.REAL,
                                                     [2.0]))
        result = evaluate(parse_expression("a = b"), frame)
        assert result.to_pylist() == [True]

    def test_between(self):
        assert run("a BETWEEN 2 AND 4", a=[1, 3, 5]) == \
            [False, True, False]


class TestKleeneLogic:
    def test_and(self):
        assert run("a = 1 AND b = 1", a=[1, 1, 0, None],
                   b=[1, 0, None, None]) == [True, False, False, None]

    def test_or(self):
        assert run("a = 1 OR b = 1", a=[1, 0, 0, None],
                   b=[0, 0, None, 1]) == [True, False, None, True]

    def test_not(self):
        assert run("NOT a = 1", a=[1, 0, None]) == [False, True, None]

    def test_null_and_false_is_false(self):
        # The asymmetric Kleene case: NULL AND FALSE = FALSE.
        assert run("a = 1 AND b = 1", a=[None], b=[0]) == [False]

    def test_null_or_true_is_true(self):
        assert run("a = 1 OR b = 1", a=[None], b=[1]) == [True]


class TestNullPredicates:
    def test_is_null(self):
        assert run("a IS NULL", a=[1, None]) == [False, True]

    def test_is_not_null(self):
        assert run("a IS NOT NULL", a=[1, None]) == [True, False]

    def test_in_list(self):
        assert run("a IN (1, 3)", a=[1, 2, None]) == [True, False, None]

    def test_not_in(self):
        assert run("a NOT IN (1, 3)", a=[2, 1]) == [True, False]


class TestCase:
    def test_first_match_wins(self):
        text = "CASE WHEN a < 2 THEN 'low' WHEN a < 4 THEN 'mid' " \
               "ELSE 'high' END"
        assert run(text, a=[1, 3, 9]) == ["low", "mid", "high"]

    def test_no_match_no_else_is_null(self):
        assert run("CASE WHEN a = 1 THEN 10 END", a=[1, 2]) == [10, None]

    def test_else_null_literal(self):
        assert run("CASE WHEN a = 1 THEN 10 ELSE NULL END",
                   a=[1, 2]) == [10, None]

    def test_numeric_branch_promotion(self):
        assert run("CASE WHEN a = 1 THEN 1 ELSE 0.5 END",
                   a=[1, 2]) == [1.0, 0.5]

    def test_mixed_branch_types_raise(self):
        with pytest.raises(TypeMismatchError):
            run("CASE WHEN a = 1 THEN 'x' ELSE 1 END", a=[1])

    def test_null_condition_does_not_fire(self):
        assert run("CASE WHEN a = 1 THEN 'y' ELSE 'n' END",
                   a=[None]) == ["n"]

    def test_case_charges_stats(self):
        from repro.engine.stats import StatsCollector
        frame = make_frame(a=[1, 2, 3])
        stats = StatsCollector()
        expr = parse_expression(
            "CASE WHEN a = 1 THEN 1 WHEN a = 2 THEN 2 END")
        evaluate(expr, frame, stats)
        assert stats.case_evaluations == 6  # 2 WHENs x 3 rows


class TestScalarFunctions:
    def test_abs(self):
        assert run("abs(a)", a=[-1, 2, None]) == [1, 2, None]

    def test_round_floor_ceil(self):
        assert run("round(a)", a=[1.4]) == [1.0]
        assert run("floor(a)", a=[1.9]) == [1.0]
        assert run("ceil(a)", a=[1.1]) == [2.0]

    def test_coalesce(self):
        assert run("coalesce(a, 0)", a=[1, None]) == [1, 0]

    def test_coalesce_strings(self):
        assert run("coalesce(a, 'x')", a=["y", None]) == ["y", "x"]

    def test_nullif(self):
        assert run("nullif(a, 1)", a=[1, 2]) == [None, 2]

    def test_unknown_function_raises(self):
        with pytest.raises(PlanningError):
            run("frobnicate(a)", a=[1])

    def test_aggregate_outside_query_raises(self):
        with pytest.raises(PlanningError):
            run("sum(a)", a=[1])

    def test_extended_syntax_rejected(self):
        with pytest.raises(PlanningError):
            run("vpct(a)", a=[1])


class TestCast:
    def test_int_to_real(self):
        assert run("CAST(a AS real)", a=[1]) == [1.0]

    def test_real_to_int_truncates(self):
        assert run("CAST(a AS int)", a=[2.7]) == [2]

    def test_numeric_to_varchar(self):
        assert run("CAST(a AS varchar)", a=[3]) == ["3"]


class TestFrame:
    def test_ambiguous_bare_reference(self):
        from repro.sql import ast
        frame = Frame(1)
        frame.add_column("x", ColumnData.from_values(SQLType.INTEGER,
                                                     [1]), binding="t1")
        frame.add_column("x", ColumnData.from_values(SQLType.INTEGER,
                                                     [2]), binding="t2")
        with pytest.raises(PlanningError):
            frame.resolve(ast.ColumnRef("x"))
        assert frame.resolve(ast.ColumnRef("x", table="t2"))[0] == 2

    def test_unknown_column_raises(self):
        from repro.sql import ast
        with pytest.raises(PlanningError):
            Frame(1).resolve(ast.ColumnRef("ghost"))

    def test_length_mismatch_raises(self):
        with pytest.raises(PlanningError):
            Frame(2).add_column(
                "a", ColumnData.from_values(SQLType.INTEGER, [1]))


class TestEvaluateScalar:
    def test_constant_expression(self):
        assert evaluate_scalar(parse_expression("1 + 2 * 3")) == 7

    def test_null_literal(self):
        assert evaluate_scalar(parse_expression("NULL")) is None
