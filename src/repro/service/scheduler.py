"""Admission control and scheduling for the concurrent query service.

The scheduler is a bounded :class:`~concurrent.futures.
ThreadPoolExecutor` (thread prefix ``repro-query``; deliberately
distinct from the shared *operator* pool in
:mod:`repro.core.partitioning`, so one query fanning its aggregation
out across partitions never competes for the slots that admit whole
queries) with three admission gates layered on the resource governor:

* a global queue-depth bound -- submissions beyond
  ``workers + max_queue_depth`` raise
  :class:`~repro.errors.AdmissionRejected` instead of piling up;
* a per-session in-flight cap -- one client cannot monopolize the pool;
* the per-query budgets the governor already enforces (time, rows,
  width) apply inside each query window, with the measured queue wait
  reported separately via
  :meth:`~repro.engine.governor.ResourceGovernor.note_queue_wait` (the
  clock starts when execution does).

Scripts are classified on the submitting thread (syntax errors surface
immediately, not through the future):

* **read** -- every statement is a SELECT or EXPLAIN.  Runs against a
  private :class:`~repro.service.snapshots.SnapshotDatabase`; extended
  Vpct/Hpct selects go through the resilient percentage-query runner
  (savepoints, retry, strategy fallback) entirely inside the overlay.
* **write** -- anything else.  Runs on the base database under the
  service's single writer lock, wrapped in a catalog savepoint so a
  mid-script failure rolls the whole script back: readers (who only
  snapshot between scripts) never see a torn plan, and neither does a
  writer that dies halfway.
"""

from __future__ import annotations

import dataclasses
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.execute import run_resilient
from repro.core.model import build_percentage_query
from repro.engine import cancel as cancel_mod
from repro.engine.cancel import CancelToken
from repro.engine.table import Table
from repro.errors import AdmissionRejected, OverloadError, ServiceError
from repro.obs import tracer as tracer_mod
from repro.obs.tracer import Span, render_tree
from repro.service.session import Session
from repro.sql import ast
from repro.sql.parser import parse_script


@dataclass
class ServiceReport:
    """What one scheduled script did and what it cost."""

    #: ``"read"`` (snapshot-isolated) or ``"write"`` (writer lock).
    kind: str
    sql: str
    session_id: int
    #: One entry per statement: a Table for SELECT/EXPLAIN, a row count
    #: for DML/DDL.
    results: list[Any] = field(default_factory=list)
    #: Catalog version the script saw: the snapshot's version for
    #: reads, the post-commit version for writes.
    snapshot_version: int = 0
    #: Seconds between submission and the start of execution (pool
    #: queue plus, for writes, contention on the writer lock).
    queue_wait_seconds: float = 0.0
    elapsed_seconds: float = 0.0
    #: Widest partition fan-out any aggregation used (1 = serial).
    parallel_degree: int = 1
    statements_run: int = 0
    #: True when the scheduler forced cheaper evaluation options
    #: (brownout) because the service was near capacity.
    brownout: bool = False
    #: The deadline (seconds from submission) this script ran under,
    #: or None when unbounded.
    deadline_seconds: Optional[float] = None
    #: Resource-governor snapshot of the script's query window.
    governor_usage: dict[str, Any] = field(default_factory=dict)
    #: Root span of the script's trace (script -> statement ->
    #: plan/operator), or None when the service's tracer is disabled.
    trace: Optional[Span] = None

    @property
    def result(self) -> Any:
        """The last statement's result (the script's "answer")."""
        return self.results[-1] if self.results else None

    def rows(self) -> list[tuple]:
        """The last statement's rows (requires it to be a SELECT)."""
        if not isinstance(self.result, Table):
            raise TypeError("the script's last statement returned no rows")
        return self.result.to_rows()

    def explain_analyze(self, normalize=None) -> str:
        """EXPLAIN ANALYZE text for the whole script: a header plus
        the actuals span tree.  Requires the service to run with
        tracing enabled (``QueryService`` over a
        ``Database(tracing=True)``)."""
        if self.trace is None:
            raise ServiceError(
                "no trace recorded; open the service's database with "
                "tracing=True before submitting the script")
        header = [
            f"script: {self.kind}  session: {self.session_id}  "
            f"statements: {self.statements_run}  "
            f"parallel degree: {self.parallel_degree}",
        ]
        return "\n".join(header) + "\n" \
            + render_tree(self.trace, normalize=normalize)


def _is_extended_select(statement: ast.Statement) -> bool:
    return isinstance(statement, ast.Select) and any(
        ast.contains_extended(item.expr) for item in statement.items)


def _classify(statements: list[ast.Statement]) -> str:
    for statement in statements:
        if not isinstance(statement, (ast.Select, ast.Explain)):
            return "write"
    return "read"


class Scheduler:
    """Bounded worker pool with admission control.

    Args:
        service: the owning :class:`~repro.service.QueryService`.
        workers: pool size (concurrent queries; reads run truly
            concurrently, writes serialize on the writer lock).
        max_queue_depth: admitted-but-not-running queries allowed
            beyond the pool size before submissions are rejected.
        session_inflight_cap: per-session concurrent-query ceiling.
        shed_enabled: queue-wait-aware load shedding -- refuse (with a
            retryable :class:`~repro.errors.OverloadError`) a
            deadline-bearing query whose *predicted* queue wait already
            exceeds its deadline, instead of admitting it, burning a
            worker slot, and cancelling it anyway.  Prediction is
            backlog ahead of it divided by throughput (an EWMA of
            recent script runtimes per worker).
        breaker_threshold / breaker_cooldown_seconds: per-session
            circuit breaker -- after ``breaker_threshold`` consecutive
            failures the session's submissions are refused
            (:class:`~repro.errors.CircuitBreakerOpen`) for the
            cooldown, then one trial query half-opens it.
        brownout_fraction: load fraction (admitted over total capacity)
            at which read scripts are forced onto cheaper evaluation
            options (hash CASE dispatch, serial operators) *before*
            the service resorts to shedding.  1.0 disables brownout.
    """

    #: EWMA smoothing factor for the per-script runtime estimate.
    _EWMA_ALPHA = 0.2

    def __init__(self, service, workers: int = 4,
                 max_queue_depth: int = 16,
                 session_inflight_cap: int = 4,
                 shed_enabled: bool = True,
                 breaker_threshold: int = 5,
                 breaker_cooldown_seconds: float = 1.0,
                 brownout_fraction: float = 0.75):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        if session_inflight_cap < 1:
            raise ValueError("session_inflight_cap must be >= 1")
        if breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if breaker_cooldown_seconds < 0:
            raise ValueError("breaker_cooldown_seconds must be >= 0")
        if not 0.0 < brownout_fraction <= 1.0:
            raise ValueError("brownout_fraction must be in (0, 1]")
        self._service = service
        self.workers = workers
        self.max_queue_depth = max_queue_depth
        self.session_inflight_cap = session_inflight_cap
        self.shed_enabled = shed_enabled
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_seconds = breaker_cooldown_seconds
        self.brownout_fraction = brownout_fraction
        self._pool = ThreadPoolExecutor(max_workers=workers,
                                        thread_name_prefix="repro-query")
        self._lock = threading.Lock()
        self._admitted = 0
        self._shutdown = False
        #: EWMA of recent script runtimes (seconds); 0.0 until the
        #: first script completes, which disables shed prediction.
        self._ewma_run_seconds = 0.0
        self._clock = service.db.clock
        self._metrics = service.db.metrics
        self._inflight = self._metrics.gauge(
            "service_inflight_queries",
            help="scripts admitted and not yet finished "
                 "(queued + running)")

    # ------------------------------------------------------------------
    @property
    def admitted(self) -> int:
        """Queries admitted and not yet finished (queued + running)."""
        return self._admitted

    def _session_deadline(self, session: Session) -> Optional[float]:
        """The deadline (seconds from submission) scripts of this
        session run under: the session default, else the database-wide
        default, else none."""
        if session.defaults.deadline_seconds is not None:
            return session.defaults.deadline_seconds
        return self._service.db.default_deadline_seconds

    def _reject(self, reason: str) -> None:
        self._metrics.counter(
            "service_rejections_total",
            help="submissions refused at admission, by reason",
            reason=reason).inc()

    def predicted_wait_seconds(self) -> float:
        """Expected queue wait for a submission arriving now: the
        backlog ahead of it (admitted beyond the worker count) divided
        by estimated throughput.  0.0 until the first script completes
        (no runtime estimate yet)."""
        with self._lock:
            backlog = max(0, self._admitted - self.workers + 1)
            return backlog * self._ewma_run_seconds / self.workers

    def submit(self, session: Session, sql: str) -> "Future[ServiceReport]":
        """Admit ``sql`` for ``session`` and return its future.

        Parsing (and therefore syntax errors) happens here, on the
        caller's thread, as do the admission gates -- queue depth,
        session cap, circuit breaker, and (for deadline-bearing
        sessions) load shedding; execution errors come through the
        future.
        """
        statements = parse_script(sql)
        if not statements:
            raise ServiceError("cannot schedule an empty script")
        kind = _classify(statements)
        deadline = self._session_deadline(session)
        try:
            session._breaker_allow(self._clock.now())
        except AdmissionRejected:
            self._reject("breaker")
            raise
        with self._lock:
            if self._shutdown:
                raise ServiceError("the query service is shut down")
            if self._admitted >= self.workers + self.max_queue_depth:
                self._reject("queue-full")
                raise AdmissionRejected(
                    f"scheduler queue is full ({self._admitted} queries "
                    f"admitted; capacity {self.workers} workers + "
                    f"{self.max_queue_depth} queued)")
            if self.shed_enabled and deadline is not None \
                    and self._ewma_run_seconds > 0.0:
                backlog = max(0, self._admitted - self.workers + 1)
                predicted = (backlog * self._ewma_run_seconds
                             / self.workers)
                if predicted > deadline:
                    # Admitting would only burn a worker slot on an
                    # answer nobody will wait for: the query would sit
                    # past its deadline and be cancelled at its first
                    # safepoint anyway.
                    self._reject("shed")
                    self._metrics.counter(
                        "query_cancelled_total",
                        help="queries cancelled at a safepoint, "
                             "by reason",
                        reason="shed").inc()
                    raise OverloadError(
                        f"predicted queue wait {predicted:.3f}s exceeds "
                        f"the {deadline:g}s deadline; resubmit after "
                        f"the backlog drains",
                        retry_after_seconds=predicted - deadline)
            try:
                session._reserve(self.session_inflight_cap)
            except AdmissionRejected:
                self._reject("session-cap")
                raise
            self._admitted += 1
        self._inflight.inc()
        self._metrics.counter(
            "service_scripts_total",
            help="scripts admitted by the scheduler",
            kind=kind).inc()
        # The script's cancel token is built at *submission*, so its
        # deadline covers queue wait: a query stuck behind a backlog
        # cancels at its very first safepoint.
        token = None
        if deadline is not None:
            token = CancelToken.with_timeout(
                deadline, clock=self._clock, registry=self._metrics)
        enqueued = self._clock.now()
        try:
            future = self._pool.submit(self._run, session, sql,
                                       statements, kind, enqueued,
                                       token, deadline)
        except BaseException:
            self._finish(session, None)
            raise
        future.add_done_callback(
            lambda f: self._finish(session, f))
        return future

    def _finish(self, session: Session,
                future: Optional["Future[ServiceReport]"]) -> None:
        with self._lock:
            self._admitted -= 1
        self._inflight.dec()
        session._release()
        if future is None:
            return
        exc = future.exception()
        session._breaker_note(exc is None, self._clock.now(),
                              self.breaker_threshold,
                              self.breaker_cooldown_seconds)
        if exc is None:
            elapsed = future.result().elapsed_seconds
            with self._lock:
                if self._ewma_run_seconds == 0.0:
                    self._ewma_run_seconds = elapsed
                else:
                    self._ewma_run_seconds += self._EWMA_ALPHA * (
                        elapsed - self._ewma_run_seconds)

    def _observe_wait(self, session: Session, wait: float) -> None:
        self._metrics.histogram(
            "service_queue_wait_seconds",
            help="seconds between submission and execution start",
            session=str(session.id)).observe(wait)

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            self._shutdown = True
        self._pool.shutdown(wait=wait)

    # ------------------------------------------------------------------
    # Worker-side execution
    # ------------------------------------------------------------------
    def _run(self, session: Session, sql: str,
             statements: list[ast.Statement], kind: str,
             enqueued: float, token: Optional[CancelToken],
             deadline: Optional[float]) -> ServiceReport:
        if kind == "read":
            return self._run_read(session, sql, statements, enqueued,
                                  token, deadline)
        return self._run_write(session, sql, statements, enqueued,
                               token, deadline)

    def _brownout_options(self, options):
        """Cheaper evaluation options for near-capacity operation, or
        ``options`` unchanged when the service has headroom.  Brownout
        trades per-query speed for service-wide capacity: hash CASE
        dispatch (no strategy search) and serial operators (no fan-out
        competing for cores the backlog needs)."""
        if self.brownout_fraction >= 1.0:
            return options, False
        capacity = self.workers + self.max_queue_depth
        with self._lock:
            load = self._admitted
        if load < self.brownout_fraction * capacity:
            return options, False
        self._metrics.counter(
            "service_brownout_total",
            help="read scripts forced onto cheaper options near "
                 "capacity").inc()
        return dataclasses.replace(
            options, case_dispatch="hash", parallel_backend="serial",
            parallel_degree=1), True

    def _run_read(self, session: Session, sql: str,
                  statements: list[ast.Statement], enqueued: float,
                  token: Optional[CancelToken],
                  deadline: Optional[float]) -> ServiceReport:
        service = self._service
        snapshot = service.snapshots.acquire()
        options, brownout = self._brownout_options(
            session.defaults.resolve(service.db.options))
        reader = service.snapshots.reader(snapshot, options)
        wait = self._clock.now() - enqueued
        self._observe_wait(session, wait)
        report = ServiceReport(kind="read", sql=sql,
                               session_id=session.id,
                               snapshot_version=snapshot.version,
                               queue_wait_seconds=wait,
                               brownout=brownout,
                               deadline_seconds=deadline)
        started = self._clock.now()
        tracer = service.db.tracer
        cancel_ctx = (cancel_mod.activate(token) if token is not None
                      else nullcontext())
        # One window for the whole script: the script is the governed
        # unit, exactly like a generated percentage plan.  The cancel
        # token activates outside the window so every governor
        # checkpoint inside also polls the deadline.
        with cancel_ctx, reader.governor.window():
            reader.governor.note_queue_wait(wait)
            with tracer_mod.activate(tracer), \
                    tracer.span("script", kind="script",
                                script_kind="read",
                                session=session.id,
                                snapshot_version=snapshot.version
                                ) as span:
                self._run_statements(reader, statements, sql, report)
            report.trace = span
            report.governor_usage = reader.governor.usage()
        report.elapsed_seconds = self._clock.now() - started
        return report

    def _run_write(self, session: Session, sql: str,
                   statements: list[ast.Statement], enqueued: float,
                   token: Optional[CancelToken],
                   deadline: Optional[float]) -> ServiceReport:
        service = self._service
        db = service.db
        with service.write_lock:
            wait = self._clock.now() - enqueued
            self._observe_wait(session, wait)
            report = ServiceReport(kind="write", sql=sql,
                                   session_id=session.id,
                                   queue_wait_seconds=wait,
                                   deadline_seconds=deadline)
            started = self._clock.now()
            tracer = db.tracer
            savepoint = db.catalog.savepoint()
            cancel_ctx = (cancel_mod.activate(token) if token is not None
                          else nullcontext())
            with cancel_ctx, db.governor.window():
                db.governor.note_queue_wait(wait)
                try:
                    with tracer_mod.activate(tracer), \
                            tracer.span("script", kind="script",
                                        script_kind="write",
                                        session=session.id) as span:
                        self._run_statements(db, statements, sql, report)
                    report.trace = span
                except BaseException as exc:
                    # All-or-nothing scripts: a mid-script failure
                    # (including a deadline firing between statements)
                    # restores the pre-script catalog, so the torn
                    # middle never becomes the committed state.  A
                    # rollback failure chains under the original error
                    # rather than masking it.
                    try:
                        db.catalog.rollback(savepoint)
                    except Exception as rollback_exc:
                        raise exc from rollback_exc
                    raise
                report.governor_usage = db.governor.usage()
            report.snapshot_version = db.catalog.version
        report.elapsed_seconds = self._clock.now() - started
        return report

    def _run_statements(self, db, statements: list[ast.Statement],
                        sql: str, report: ServiceReport) -> None:
        """Execute ``statements`` against ``db``, accumulating results
        and the widest parallel fan-out into ``report``.

        Extended Vpct/Hpct selects route through the resilient
        percentage-query runner (savepoints, transient retry, strategy
        fallback); everything else is a plain engine statement.
        """
        for statement in statements:
            if _is_extended_select(statement):
                query = build_percentage_query(statement, sql)
                sub = run_resilient(db, query)
                report.results.append(sub.result)
                report.statements_run += sub.statements_run
                report.parallel_degree = max(report.parallel_degree,
                                             sub.parallel_degree)
            else:
                db.executor.reset_parallel_observation()
                report.results.append(db.execute_statement(statement, sql))
                report.statements_run += 1
                report.parallel_degree = max(
                    report.parallel_degree,
                    db.executor.parallel_degree_observed())
