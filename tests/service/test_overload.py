"""Overload protection: load shedding, circuit breaker, brownout, and
the typed/metered admission rejections."""

import threading

import pytest

from repro.api.database import Database
from repro.errors import (AdmissionRejected, CircuitBreakerOpen,
                          OverloadError, QueryCancelledError)
from repro.service import QueryService, SessionDefaults


def _rejections(db, reason):
    return db.metrics.value("service_rejections_total", reason=reason)


class _Gate:
    """Blocks read workers at snapshot acquisition (the first thing
    every read script does on its worker thread) so tests can hold
    worker slots and fill the queue deterministically."""

    def __init__(self, service):
        self.service = service
        self.event = threading.Event()
        #: Set when a worker reaches the gate (before blocking).
        self.entered = threading.Event()
        #: Flip to True to let later arrivals straight through.
        self.passthrough = False
        self._real = service.snapshots.acquire

    def install(self, monkeypatch):
        def gated():
            if not self.passthrough:
                self.entered.set()
                self.event.wait(timeout=10.0)
            return self._real()
        monkeypatch.setattr(self.service.snapshots, "acquire", gated)


class TestAdmissionMetrics:
    def test_queue_full_rejection_is_typed_and_metered(
            self, db, monkeypatch):
        with QueryService(db, workers=1, max_queue_depth=0,
                          session_inflight_cap=8) as service:
            gate = _Gate(service)
            gate.install(monkeypatch)
            with service.create_session() as session:
                blocked = session.submit("SELECT d1 FROM f")
                with pytest.raises(AdmissionRejected) as info:
                    session.submit("SELECT d1 FROM f")
                assert "queue is full" in str(info.value)
                assert _rejections(db, "queue-full") == 1
                gate.event.set()
                blocked.result()

    def test_session_cap_rejection_is_typed_and_metered(
            self, db, monkeypatch):
        with QueryService(db, workers=2, max_queue_depth=8,
                          session_inflight_cap=1) as service:
            gate = _Gate(service)
            gate.install(monkeypatch)
            with service.create_session() as session:
                blocked = session.submit("SELECT d1 FROM f")
                with pytest.raises(AdmissionRejected) as info:
                    session.submit("SELECT d1 FROM f")
                assert "in flight" in str(info.value)
                assert _rejections(db, "session-cap") == 1
                gate.event.set()
                blocked.result()


class TestLoadShedding:
    def test_sheds_when_predicted_wait_exceeds_deadline(
            self, db, monkeypatch):
        with QueryService(db, workers=1, max_queue_depth=8) as service:
            gate = _Gate(service)
            defaults = SessionDefaults(deadline_seconds=30.0)
            with service.create_session(defaults) as session:
                # Seed the runtime estimate with one completed script.
                session.execute("SELECT d1 FROM f")
                service.scheduler._ewma_run_seconds = 100.0
                gate.install(monkeypatch)
                blocked = session.submit("SELECT d1 FROM f")
                with pytest.raises(OverloadError) as info:
                    session.submit("SELECT d2 FROM f")
                assert info.value.retryable
                assert info.value.retry_after_seconds > 0
                assert _rejections(db, "shed") == 1
                assert db.metrics.value("query_cancelled_total",
                                        reason="shed") == 1
                gate.event.set()
                blocked.result()

    def test_no_shedding_without_deadline(self, db, monkeypatch):
        with QueryService(db, workers=1, max_queue_depth=8) as service:
            gate = _Gate(service)
            with service.create_session() as session:
                session.execute("SELECT d1 FROM f")
                service.scheduler._ewma_run_seconds = 100.0
                gate.install(monkeypatch)
                blocked = session.submit("SELECT d1 FROM f")
                queued = session.submit("SELECT d2 FROM f")
                gate.event.set()
                blocked.result()
                queued.result()

    def test_shed_disabled_admits_doomed_queries(self, db, monkeypatch):
        with QueryService(db, workers=1, max_queue_depth=8,
                          shed_enabled=False) as service:
            gate = _Gate(service)
            defaults = SessionDefaults(deadline_seconds=30.0)
            with service.create_session(defaults) as session:
                session.execute("SELECT d1 FROM f")
                service.scheduler._ewma_run_seconds = 100.0
                gate.install(monkeypatch)
                blocked = session.submit("SELECT d1 FROM f")
                queued = session.submit("SELECT d2 FROM f")
                gate.event.set()
                blocked.result()
                queued.result()
                assert _rejections(db, "shed") == 0

    def test_deadline_covers_queue_wait(self, db, monkeypatch):
        """The script token starts at submission, so a query stuck
        behind a long-running one cancels on deadline once it runs."""
        import time

        with QueryService(db, workers=1, max_queue_depth=8,
                          shed_enabled=False) as service:
            gate = _Gate(service)
            gate.install(monkeypatch)
            doomed_defaults = SessionDefaults(deadline_seconds=0.05)
            with service.create_session() as blocker, \
                    service.create_session(doomed_defaults) as victim:
                blocked = blocker.submit("SELECT d1 FROM f")
                doomed = victim.submit("SELECT d2 FROM f")
                time.sleep(0.2)  # let the deadline lapse in queue
                gate.event.set()
                blocked.result()
                with pytest.raises(QueryCancelledError) as info:
                    doomed.result()
                assert info.value.reason == "deadline"


class TestCircuitBreaker:
    def test_opens_after_threshold_and_recovers(self, db):
        with QueryService(db, workers=2, breaker_threshold=3,
                          breaker_cooldown_seconds=1e9) as service:
            with service.create_session() as session:
                for _ in range(3):
                    with pytest.raises(Exception):
                        session.execute("SELECT nope FROM f")
                assert session.breaker_state == "open"
                with pytest.raises(CircuitBreakerOpen) as info:
                    session.submit("SELECT d1 FROM f")
                assert info.value.retryable
                assert info.value.retry_after_seconds > 0
                assert _rejections(db, "breaker") == 1
                # Cooldown elapses -> half-open trial; a success closes.
                session._breaker_open_until = 0.0
                session.execute("SELECT d1 FROM f")
                assert session.breaker_state == "closed"

    def test_half_open_failure_reopens(self, db):
        with QueryService(db, workers=2, breaker_threshold=1,
                          breaker_cooldown_seconds=1e9) as service:
            with service.create_session() as session:
                with pytest.raises(Exception):
                    session.execute("SELECT nope FROM f")
                assert session.breaker_state == "open"
                session._breaker_open_until = 0.0
                with pytest.raises(Exception):
                    session.execute("SELECT nope FROM f")
                assert session.breaker_state == "open"

    def test_breaker_is_per_session(self, db):
        with QueryService(db, workers=2, breaker_threshold=1,
                          breaker_cooldown_seconds=1e9) as service:
            with service.create_session() as bad, \
                    service.create_session() as good:
                with pytest.raises(Exception):
                    bad.execute("SELECT nope FROM f")
                assert bad.breaker_state == "open"
                assert good.breaker_state == "closed"
                assert good.execute("SELECT count(*) FROM f"
                                    ).rows() == [(4,)]


class TestBrownout:
    def test_brownout_forces_cheaper_options_near_capacity(
            self, db, monkeypatch):
        with QueryService(db, workers=2, max_queue_depth=2,
                          brownout_fraction=0.5) as service:
            gate = _Gate(service)
            gate.install(monkeypatch)
            with service.create_session() as session:
                first = session.submit("SELECT d1 FROM f")
                assert gate.entered.wait(timeout=10.0)
                # One worker is pinned at the gate; the next query runs
                # on the second worker with 2/4 capacity admitted.
                gate.passthrough = True
                second = session.submit("SELECT d2 FROM f")
                report = second.result()
                assert report.brownout
                assert db.metrics.value("service_brownout_total") >= 1
                gate.event.set()
                assert not first.result().brownout

    def test_no_brownout_with_headroom(self, service):
        report = service.execute("SELECT d1 FROM f")
        assert not report.brownout

    def test_brownout_results_identical(self, db, monkeypatch):
        from repro.core.execute import run_resilient
        reference = sorted(run_resilient(
            db, "SELECT d1, Vpct(a) FROM f GROUP BY d1"
            ).result.to_rows())
        with QueryService(db, workers=2, max_queue_depth=2,
                          brownout_fraction=0.5) as service:
            gate = _Gate(service)
            gate.install(monkeypatch)
            with service.create_session() as session:
                first = session.submit("SELECT d1 FROM f")
                assert gate.entered.wait(timeout=10.0)
                gate.passthrough = True
                report = session.execute(
                    "SELECT d1, Vpct(a) FROM f GROUP BY d1")
                assert report.brownout
                assert sorted(report.rows()) == reference
                gate.event.set()
                first.result()


class TestReportFields:
    def test_report_carries_deadline(self, db):
        with QueryService(db, workers=2) as service:
            defaults = SessionDefaults(deadline_seconds=60.0)
            with service.create_session(defaults) as session:
                report = session.execute("SELECT d1 FROM f")
                assert report.deadline_seconds == 60.0

    def test_db_default_deadline_flows_through_service(self):
        db = Database(default_deadline_seconds=60.0)
        db.execute("CREATE TABLE g (x INT)")
        with QueryService(db, workers=1) as service:
            with service.create_session() as session:
                report = session.execute("SELECT x FROM g")
                assert report.deadline_seconds == 60.0

    def test_invalid_knobs_rejected(self, db):
        with pytest.raises(ValueError):
            QueryService(db, brownout_fraction=0.0)
        with pytest.raises(ValueError):
            QueryService(db, breaker_threshold=0)
        with pytest.raises(ValueError):
            QueryService(db, breaker_cooldown_seconds=-1.0)
        with pytest.raises(ValueError):
            SessionDefaults(deadline_seconds=0.0)
